#!/usr/bin/env python3
"""Asynchronous approximate agreement under adversarial scheduling.

The paper's conclusions expect its techniques to extend "to the
asynchronous setting for a lower number of corruptions t < n/5".  This
example runs that setting's classic primitive: asynchronous Approximate
Agreement over Bracha reliable broadcast, with NO synchrony assumption
-- the message scheduler is adversarial, here maximally delaying one
victim party's traffic.

Deterministic asynchronous exact agreement is impossible (FLP), which
is exactly why the asynchronous literature (and the paper's related
work, Section 1.1) works with the eps-relaxation.
"""

from __future__ import annotations

from fractions import Fraction

from repro.asynchrony import (
    AsyncApproximateAgreement,
    AsyncNetwork,
    FifoScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
)

N, T = 6, 1          # t < n/5
BOUND = 1 << 16
EPSILON = Fraction(1, 4)
READINGS = [20_000, 20_150, 19_900, 20_050, 20_100, 19_950]


def run(scheduler) -> None:
    net = AsyncNetwork(
        lambda ctx: AsyncApproximateAgreement(
            ctx, READINGS[ctx.party_id], EPSILON, BOUND
        ),
        n=N,
        t=T,
        scheduler=scheduler,
    )
    result = net.run()
    honest = [p for p in range(N) if p not in result.corrupted]
    outputs = [result.outputs[p] for p in honest]
    spread = max(outputs) - min(outputs)
    lo = min(READINGS[p] for p in honest)
    hi = max(READINGS[p] for p in honest)
    assert all(lo <= out <= hi for out in outputs)
    assert spread <= EPSILON
    print(
        f"{scheduler.describe():<38} deliveries={result.deliveries:>6,} "
        f"bits={result.stats.honest_bits:>8,} spread={str(spread):>8}"
    )


def main() -> None:
    print(f"readings: {READINGS}, eps = {EPSILON}, n = {N}, t = {T}\n")
    run(FifoScheduler())
    run(RandomScheduler(seed=42))
    run(TargetedDelayScheduler({2}, seed=42))
    print(
        "\neps-agreement and validity hold under every schedule; the "
        "targeted-delay attack only reorders work, it cannot block it."
    )


if __name__ == "__main__":
    main()
