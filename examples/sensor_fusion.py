#!/usr/bin/env python3
"""Sensor fusion: why Convex Agreement beats Byzantine Agreement.

The paper's motivating scenario (Section 1): sensors in a cooling room
read temperatures around -10.04 C with minor measurement noise, while
byzantine sensors report +100 C.  Standard BA only promises a common
output -- when honest inputs differ even slightly, *any* value may be
agreed, including the byzantine one.  CA additionally promises the
output lies in the honest inputs' range.

This example runs both primitives under the same adversary and shows BA
adopting the attacker's value while CA never leaves the honest hull.
Temperatures are fixed-point integers in milli-degrees.
"""

from __future__ import annotations

import random

from repro import Context, OutlierAdversary, convex_agreement, run_protocol
from repro.ba import nat_domain, phase_king

N = 10
T = 3
ATTACK_MILLIDEG = 100_000  # +100 C
_OFFSET = 1 << 20  # shift readings into N for the BA value domain


class KingHijacker(OutlierAdversary):
    """Outlier attack that corrupts an early phase-king.

    Plain BA's weakness only shows when a corrupted party gets to play
    king while the honest estimates still differ: the king's arbitrary
    value is then adopted by everyone and *persists*.  CA is immune to
    the same corruption pattern.
    """

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(range(t))  # the kings of the first t phases


def sensor_readings(seed: int) -> list[int]:
    """Honest readings near -10.04 C, in milli-degrees (integers)."""
    rng = random.Random(seed)
    return [-10_040 + rng.randint(-15, 15) for _ in range(N)]


def run_plain_ba(readings: list[int], adversary) -> tuple[int, frozenset]:
    """Multivalued BA on the (shifted-to-N) readings."""
    domain = nat_domain()

    def factory(ctx: Context, reading: int):
        return phase_king(ctx, reading + _OFFSET, domain)

    result = run_protocol(factory, readings, n=N, t=T, adversary=adversary)
    return result.common_output() - _OFFSET, result.corrupted


def main() -> None:
    readings = sensor_readings(seed=7)
    adversary = KingHijacker(high=ATTACK_MILLIDEG + _OFFSET)

    ba_value, corrupted = run_plain_ba(readings, adversary)
    honest = [v for i, v in enumerate(readings) if i not in corrupted]
    lo, hi = min(honest), max(honest)

    print(f"honest readings (milli-C): {sorted(honest)}")
    print(f"honest range             : [{lo}, {hi}]")
    print(f"plain BA agreed on       : {ba_value} "
          f"({'INSIDE' if lo <= ba_value <= hi else 'OUTSIDE'} the range)")

    ca = convex_agreement(
        readings, t=T, adversary=KingHijacker(high=ATTACK_MILLIDEG)
    )
    honest_ca = [
        v for i, v in enumerate(readings) if i not in ca.corrupted
    ]
    lo_ca, hi_ca = min(honest_ca), max(honest_ca)
    inside = lo_ca <= ca.value <= hi_ca
    print(f"convex agreement output  : {ca.value} "
          f"({'INSIDE' if inside else 'OUTSIDE'} the range)")
    assert inside, "CA must never leave the honest hull"

    print(
        f"\nCA cost: {ca.stats.honest_bits:,} honest bits over "
        f"{ca.stats.rounds} rounds (n={N}, t={T})"
    )


if __name__ == "__main__":
    main()
