#!/usr/bin/env python3
"""Blockchain oracle: convex agreement on high-precision price feeds.

Decentralised oracles (the paper cites Delphi [5]) aggregate asset
prices reported by n nodes, some of which may be compromised.  Price
feeds are *long* values -- high-precision fixed-point numbers, often
batched across many assets -- which is exactly the regime where the
paper's ``O(l n)`` protocol beats the ``O(l n^2)`` broadcast approach.

This example agrees on a 1024-bit batched price vector (32 assets x
32-bit fixed-point prices packed into one integer) and prints the
per-subprotocol communication breakdown, showing where the bits go
(the distributing step carries the payload; the BA machinery is
payload-independent).
"""

from __future__ import annotations

import random

from repro import SplitVoteAdversary, convex_agreement

NUM_NODES = 7
NUM_ASSETS = 32
PRICE_BITS = 32


def pack_prices(prices: list[int]) -> int:
    """Pack per-asset fixed-point prices into one long integer."""
    packed = 0
    for price in prices:
        packed = (packed << PRICE_BITS) | (price & ((1 << PRICE_BITS) - 1))
    return packed


def unpack_prices(packed: int) -> list[int]:
    prices = []
    for _ in range(NUM_ASSETS):
        prices.append(packed & ((1 << PRICE_BITS) - 1))
        packed >>= PRICE_BITS
    return list(reversed(prices))


def node_feed(seed: int) -> list[int]:
    """One node's observed prices: common market level + small jitter."""
    rng = random.Random(seed)
    base = random.Random(2026).randrange(1 << (PRICE_BITS - 2))
    return [
        max(0, base + rng.randint(-3, 3)) for _ in range(NUM_ASSETS)
    ]


def main() -> None:
    feeds = [pack_prices(node_feed(seed)) for seed in range(NUM_NODES)]

    outcome = convex_agreement(
        feeds, adversary=SplitVoteAdversary(alt_value=0)
    )
    honest = [
        v for i, v in enumerate(feeds) if i not in outcome.corrupted
    ]
    assert min(honest) <= outcome.value <= max(honest)

    agreed_prices = unpack_prices(outcome.value)
    lo_prices = unpack_prices(min(honest))
    hi_prices = unpack_prices(max(honest))
    # CA is one-dimensional: the hull guarantee is on the packed value,
    # i.e. the agreed feed sits lexicographically between two honest
    # feeds.  Assets up to the honest feeds' divergence point are pinned
    # exactly; later ones are clamped toward the chosen boundary.
    pinned = next(
        (
            i
            for i in range(NUM_ASSETS)
            if lo_prices[i] != hi_prices[i]
        ),
        NUM_ASSETS,
    )
    print(f"nodes: {NUM_NODES}, corrupted: {sorted(outcome.corrupted)}")
    print(f"batched feed length: {max(v.bit_length() for v in feeds)} bits")
    print(f"agreed price[0..4] : {agreed_prices[:5]}")
    print(f"assets pinned exactly by the honest common prefix: {pinned}")
    print(f"total honest bits  : {outcome.stats.honest_bits:,}")
    print(f"rounds             : {outcome.stats.rounds}")

    print("\ntop subprotocol channels by honest bits:")
    for channel, bits, messages in outcome.stats.channel_report()[:10]:
        print(f"  {channel:<40} {bits:>10,} bits  {messages:>6,} msgs")


if __name__ == "__main__":
    main()
