#!/usr/bin/env python3
"""Convex agreement with a full byzantine minority (t < n/2).

The paper's plain-model protocol is optimally resilient at t < n/3 --
no unauthenticated protocol can do better.  Its conclusions ask about
"the synchronous model with t < n/2 corruptions assuming cryptographic
setup".  This example runs that setting's feasibility protocol
(`repro.authenticated`): Dolev-Strong broadcast over idealized
signatures gives all honest parties an identical view, and an
*adaptive* trimmed median (every aborted broadcast identifies a
corrupted sender, freeing trim budget) keeps the output in the honest
hull even with 2 of 5 parties corrupted.

It also shows the plain-model stack correctly REFUSING the same
configuration -- resilience is a protocol property, checked at runtime.
"""

from __future__ import annotations

from repro import Context, OutlierAdversary, run_protocol
from repro.authenticated import authenticated_ca
from repro.core import protocol_z
from repro.crypto.signatures import SignatureScheme
from repro.errors import ConfigurationError

N, T = 5, 2  # a full minority: t >= n/3, t < n/2
READINGS = [41_000, 41_020, 40_990, 41_010, 41_005]


def main() -> None:
    print(f"n = {N}, t = {T}  (t >= n/3: beyond the plain model)\n")

    # 1. The plain-model protocol refuses this configuration.
    ctx = Context(party_id=0, n=N, t=T)
    try:
        next(protocol_z(ctx, 0))
    except ConfigurationError as error:
        print(f"plain-model PI_Z refuses: {error}")

    # 2. The authenticated protocol handles it.
    scheme = SignatureScheme(kappa=128, n=N)
    result = run_protocol(
        lambda ctx, v: authenticated_ca(ctx, v, scheme),
        READINGS,
        n=N,
        t=T,
        adversary=OutlierAdversary(high=10**9),
    )
    value = result.common_output()
    honest = [
        READINGS[p] for p in range(N) if p not in result.corrupted
    ]
    print(f"\nreadings         : {READINGS}")
    print(f"corrupted parties: {sorted(result.corrupted)}")
    print(f"agreed output    : {value}")
    print(f"honest range     : [{min(honest)}, {max(honest)}]")
    print(f"honest bits sent : {result.stats.honest_bits:,}")
    print(f"rounds           : {result.stats.rounds} "
          f"(= n * (t+1) Dolev-Strong rounds)")
    assert min(honest) <= value <= max(honest)
    print("\nconvex validity holds with a full byzantine minority.")


if __name__ == "__main__":
    main()
