#!/usr/bin/env python3
"""Approximate Agreement vs Convex Agreement: the trade-off CA resolves.

Approximate Agreement (AA, Dolev et al.; the paper's Section 1.1) is
the classic relaxation: honest outputs stay in the honest range but may
differ by eps.  Its cost grows with ``log(range / eps)`` full-value
exchange rounds.  Convex Agreement delivers eps = 0 (exact agreement)
at a fixed communication budget.

This example sweeps eps for AA on the same inputs and shows the curve
crossing CA's fixed cost: when you need tight agreement, the paper's
protocol is the cheaper primitive -- and it is the only one that
reaches exactness at all.
"""

from __future__ import annotations

from fractions import Fraction

from repro import ScriptedAdversary, run_protocol
from repro.aa import approximate_agreement
from repro.core import protocol_z

N, T = 7, 2
BOUND = 1 << 24
INPUTS = [1_000_000 * (i + 1) for i in range(N)]


def splitting_adversary():
    """Pull the low half of the parties down and the high half up --
    the strategy that keeps AA estimates maximally apart."""

    def handler(view, src, dst, spec):
        if dst < view.n // 2:
            return Fraction(0)
        return Fraction(BOUND)

    return ScriptedAdversary(handler)


def run_aa(epsilon) -> tuple[int, Fraction]:
    result = run_protocol(
        lambda ctx, v: approximate_agreement(ctx, v, epsilon, BOUND),
        INPUTS, n=N, t=T, adversary=splitting_adversary(),
    )
    outputs = list(result.outputs.values())
    spread = max(outputs) - min(outputs)
    assert spread <= epsilon
    return result.stats.honest_bits, spread


def run_ca() -> tuple[int, int]:
    result = run_protocol(
        lambda ctx, v: protocol_z(ctx, v), INPUTS, n=N, t=T,
        adversary=splitting_adversary(),
    )
    outputs = set(result.outputs.values())
    assert len(outputs) == 1
    return result.stats.honest_bits, 0


def main() -> None:
    ca_bits, _ = run_ca()
    print(f"inputs: {INPUTS}")
    print(f"\nConvex Agreement (exact): {ca_bits:>10,} bits, spread = 0")
    print("\nApproximate Agreement:")
    print(f"{'eps':>12} {'bits':>12} {'measured spread':>18}")
    for exp in (20, 12, 6, 0, -6, -12):
        eps = Fraction(2) ** exp
        bits, spread = run_aa(eps)
        marker = "  <- costlier than CA" if bits > ca_bits else ""
        print(f"{str(eps):>12} {bits:>12,} {str(spread):>18}{marker}")

    print(
        "\nAA's cost grows without bound as eps -> 0; CA pays a fixed "
        "price for eps = 0."
    )


if __name__ == "__main__":
    main()
