#!/usr/bin/env python3
"""Transaction ordering: a fair decentralized clock via convex agreement.

The paper cites transaction ordering in blockchains [14] as a CA
application: validators timestamp incoming transactions with their local
clocks; clocks drift, and byzantine validators may lie arbitrarily.
Agreeing on a timestamp *within the honest clocks' range* prevents a
corrupted validator from pushing a transaction unfairly early or late in
the order.

This example timestamps a small stream of transactions.  For each
transaction the validators run CA on their (microsecond) observations;
the agreed timestamps are then used as the canonical order.  Byzantine
validators try to reorder a victim transaction by announcing absurd
timestamps -- and fail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import ScriptedAdversary, convex_agreement

N_VALIDATORS = 7
T_BYZ = 2
CLOCK_SKEW_US = 400


@dataclass
class Transaction:
    tx_id: str
    true_time_us: int


def observations(tx: Transaction, seed: int) -> list[int]:
    """Each validator's local receive timestamp for the transaction."""
    rng = random.Random(f"{tx.tx_id}/{seed}")
    return [
        tx.true_time_us + rng.randint(-CLOCK_SKEW_US, CLOCK_SKEW_US)
        for _ in range(N_VALIDATORS)
    ]


def reordering_adversary(target_early: bool):
    """Byzantine validators push every integer they send to an extreme."""

    extreme = 0 if target_early else 10**15

    def handler(view, src, dst, spec):
        if isinstance(spec, int) and not isinstance(spec, bool):
            return extreme
        return spec

    return ScriptedAdversary(handler)


def main() -> None:
    stream = [
        Transaction("tx-alpha", 1_000_000),
        Transaction("tx-bravo", 1_000_900),
        Transaction("tx-victim", 1_001_800),  # the attacker wants this first
        Transaction("tx-delta", 1_002_700),
    ]

    agreed: list[tuple[str, int]] = []
    for index, tx in enumerate(stream):
        obs = observations(tx, seed=index)
        outcome = convex_agreement(
            obs,
            t=T_BYZ,
            adversary=reordering_adversary(target_early=True),
        )
        honest = [
            v for i, v in enumerate(obs) if i not in outcome.corrupted
        ]
        assert min(honest) <= outcome.value <= max(honest)
        agreed.append((tx.tx_id, outcome.value))
        print(
            f"{tx.tx_id:<10} true={tx.true_time_us:>9} "
            f"agreed={outcome.value:>9} "
            f"honest range=[{min(honest)}, {max(honest)}]"
        )

    order = [tx_id for tx_id, _ in sorted(agreed, key=lambda kv: kv[1])]
    print(f"\ncanonical order: {order}")
    assert order.index("tx-victim") == 2, "attacker failed to reorder"
    print("the byzantine validators could not move tx-victim: clock skew "
          "bounds the worst-case displacement, not the attacker.")


if __name__ == "__main__":
    main()
