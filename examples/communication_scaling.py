#!/usr/bin/env python3
"""Communication scaling: the paper's headline claim, live.

Runs the F1 comparison from DESIGN.md at a laptop-friendly scale: total
honest bits versus input length ``l`` for

* ``pi_z``               -- this paper, ``O(l n)``,
* ``broadcast_ca``       -- classic broadcast approach, ``O(l n^2)``,
* ``high_cost_ca``       -- existing king-style CA, ``O(l n^3)``,

and prints the fitted marginal slope (bits sent per extra input bit).
The paper predicts slopes of roughly ``n``, ``n^2`` and ``n^3``.
"""

from __future__ import annotations

from repro.analysis import (
    comparison_series,
    format_table,
    marginal_slope,
)

N = 7
ELLS = [256, 1024, 4096, 16384]
PROTOCOLS = ["pi_z", "broadcast_ca", "high_cost_ca"]


def main() -> None:
    series = comparison_series(PROTOCOLS, n=N, ells=ELLS, spread="spread")

    rows = []
    for ell in ELLS:
        row: list = [ell]
        for protocol in PROTOCOLS:
            m = next(m for m in series[protocol] if m.ell == ell)
            row.append(m.bits)
        rows.append(row)
    print(
        format_table(
            ["ell (bits)"] + PROTOCOLS,
            rows,
            title=f"total honest bits, n={N}, t={(N - 1) // 3}",
        )
    )

    print("\nmarginal cost (bits per extra input bit):")
    for protocol in PROTOCOLS:
        ms = series[protocol]
        slope = marginal_slope([m.ell for m in ms], [m.bits for m in ms])
        print(f"  {protocol:<14} {slope:>12.1f}")
    print(f"\npaper's prediction: ~n={N}, ~n^2={N**2}, ~n^3={N**3}")


if __name__ == "__main__":
    main()
