#!/usr/bin/env python3
"""Quickstart: run Convex Agreement in five lines.

Seven parties hold integer inputs; two of them are byzantine and shout
an extreme value (the paper's +100 degrees sensor).  Convex Agreement
guarantees the honest output lies within the *honest* inputs' range, no
matter what the corrupted parties do.
"""

from repro import OutlierAdversary, convex_agreement

INPUTS = [-1005, -1004, -1003, -1003, -1005, -1004, -1004]


def main() -> None:
    outcome = convex_agreement(
        INPUTS,
        adversary=OutlierAdversary(high=100),  # byzantine sensors say +100
    )

    honest = [
        v for party, v in enumerate(INPUTS) if party not in outcome.corrupted
    ]
    print(f"inputs           : {INPUTS}")
    print(f"corrupted parties: {sorted(outcome.corrupted)}")
    print(f"agreed output    : {outcome.value}")
    print(f"honest range     : [{min(honest)}, {max(honest)}]")
    print(f"honest bits sent : {outcome.stats.honest_bits:,}")
    print(f"rounds           : {outcome.stats.rounds}")

    assert min(honest) <= outcome.value <= max(honest)
    print("convex validity holds.")


if __name__ == "__main__":
    main()
