"""T4 -- Theorem 4: ``FixedLengthCABlocks`` costs ``O(l n + kappa n^2 log^2 n)``
for very long inputs (``l >= n^2``), with ``O(log n)`` search iterations.

Checks: bits near-linear in ``l`` over a long-input sweep; iteration
count bounded by ``O(log n)`` independent of ``l`` (visible as a flat
round count across the ``l`` sweep up to the AddLastBlock term).
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_power_law, measure

from conftest import measure_grid, run_measured

N, T = 7, 2
# long inputs: all well above n^2 = 49 bits
ELLS = [1960, 7840, 31360, 125440]  # multiples of n^2 = 49


@pytest.mark.parametrize("ell", ELLS)
def test_blocks_vs_ell(benchmark, ell):
    m = run_measured(
        benchmark,
        "T4",
        f"ell={ell}",
        lambda: measure(
            "fixed_length_ca_blocks", N, T, ell, seed=3, spread="clustered"
        ),
    )
    assert m.bits > 0


def test_blocks_linear_in_ell(benchmark):
    def sweep():
        return measure_grid([
            dict(protocol="fixed_length_ca_blocks", n=N, t=T, ell=ell,
                 seed=3, spread="clustered")
            for ell in ELLS
        ])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law(
        [m.ell for m in ms[1:]], [m.bits for m in ms[1:]]
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.25


def test_blocks_rounds_independent_of_ell(benchmark):
    """O(log n) iterations regardless of l: rounds flat across a 64x
    increase in input length."""

    def sweep():
        return measure_grid([
            dict(protocol="fixed_length_ca_blocks", n=N, t=T, ell=ell,
                 seed=3, spread="clustered")
            for ell in (1960, 125440)
        ])

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["rounds_small"] = small.rounds
    benchmark.extra_info["rounds_large"] = large.rounds
    assert large.rounds <= 1.5 * small.rounds
