"""F8 -- hostile-payload hardening: guard overhead and bomb survival.

The wire guards (:mod:`repro.sim.wire`) promise two things at once:

1. **Zero honest-path cost.**  Arming the guards must not change a
   single honest bit: the zero-fault fast path never consults them,
   and on the general path they only inspect byzantine-origin traffic.
   The overhead cells run ``PI_Z`` with guards off and on and assert
   byte-identical honest accounting.
2. **Bounded hostile cost.**  Every payload-bomb family in
   :data:`~repro.sim.bombs.BOMB_CATALOG` is quarantined with bounded
   work: honest parties still terminate with convex-valid outputs, and
   the rejected volume lands on ``rejected_bits`` -- never on the
   honest ``BITS_l`` measure the paper's bound governs.

Besides the end-of-session tables, this module writes every cell to
``benchmarks/BENCH_bombs.json`` so regression scripts can track the
quarantine accounting without scraping pytest output.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import Measurement
from repro.core.protocol_z import protocol_z
from repro.sim import PassiveAdversary, WireLimits, run_protocol
from repro.sim.bombs import BOMB_CATALOG

from conftest import record, run_measured

N, T = 4, 1
ELL = 512
KAPPA = 128

JSON_PATH = os.path.join(os.path.dirname(__file__), "BENCH_bombs.json")

#: (label, Measurement, quarantine stats) triples for BENCH_bombs.json.
_MEASURED: list[tuple[str, Measurement, dict]] = []


def _measurement_record(label: str, m: Measurement, extra: dict) -> dict:
    row = {
        "label": label,
        "protocol": m.protocol,
        "n": m.n,
        "t": m.t,
        "ell": m.ell,
        "kappa": m.kappa,
        "honest_bits": m.bits,
        "rounds": m.rounds,
        "messages": m.messages,
        "output": repr(m.output),
    }
    row.update(extra)
    return row


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Write the collected battery as machine-readable JSON on teardown."""
    yield
    if not _MEASURED:
        return
    baseline = next(
        (m for label, m, _ in _MEASURED if label == "guards off"), None
    )
    guarded = next(
        (m for label, m, _ in _MEASURED if label == "guards on"), None
    )
    document = {
        "schema": "repro.bench_bombs/v1",
        "experiment": "F8",
        "config": {"n": N, "t": T, "ell": ELL, "kappa": KAPPA},
        "measurements": [
            _measurement_record(label, m, extra)
            for label, m, extra in _MEASURED
        ],
        "guard_overhead_bits": (
            None if baseline is None or guarded is None
            else guarded.bits - baseline.bits
        ),
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def make_inputs() -> list[int]:
    base = 1 << (ELL - 1)
    return [base + 1000 * i for i in range(N)]


def run_cell(label: str, adversary, guards) -> Measurement:
    # Deliberately not routed through conftest's fan_out harness: each
    # call appends to the module-global _MEASURED that the JSON emitter
    # drains, and that side effect would be lost in a worker process.
    inputs = make_inputs()
    result = run_protocol(
        lambda ctx, v: protocol_z(ctx, v), inputs, n=N, t=T, kappa=KAPPA,
        adversary=adversary, guards=guards,
    )
    out = result.assert_convex_valid(inputs)
    measurement = Measurement(
        protocol="pi_z",
        n=N,
        t=T,
        ell=ELL,
        kappa=KAPPA,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=out,
    )
    _MEASURED.append((
        label,
        measurement,
        {
            "quarantined_messages": result.stats.quarantined_messages,
            "rejected_bits": result.stats.rejected_bits,
        },
    ))
    return measurement


def test_guard_overhead_is_zero_honest_bits(benchmark):
    """Arming the guards leaves honest executions byte-identical."""

    def battery():
        off = run_cell("guards off", PassiveAdversary(seed=17), None)
        on = run_cell(
            "guards on", PassiveAdversary(seed=17),
            WireLimits.from_envelopes(N, T, ELL, KAPPA),
        )
        return off, on

    off, on = benchmark.pedantic(battery, rounds=1, iterations=1)
    benchmark.extra_info["guard_overhead_bits"] = on.bits - off.bits
    record("F8", "guards off", off)
    record("F8", "guards on", on)
    assert on.bits == off.bits
    assert on.rounds == off.rounds
    assert on.output == off.output


@pytest.mark.parametrize("bomb", sorted(BOMB_CATALOG))
def test_pi_z_survives_bomb(benchmark, bomb):
    """Every bomb family is quarantined; honest cost stays on budget."""
    guards = WireLimits.from_envelopes(N, T, ELL, KAPPA)
    m = run_measured(
        benchmark, "F8", bomb,
        lambda: run_cell(bomb, BOMB_CATALOG[bomb](23), guards),
    )
    _, _, extra = _MEASURED[-1]
    benchmark.extra_info["quarantined_messages"] = (
        extra["quarantined_messages"]
    )
    benchmark.extra_info["rejected_bits"] = extra["rejected_bits"]
    assert m.bits > 0


def test_rejected_bits_never_count_as_honest(benchmark):
    """The blob bomb's rejected volume dwarfs -- and never taints --
    the honest ``BITS_l`` accounting."""

    def battery():
        return run_cell(
            "blob accounting", BOMB_CATALOG["bomb_blob"](29),
            WireLimits.from_envelopes(N, T, ELL, KAPPA),
        )

    m = benchmark.pedantic(battery, rounds=1, iterations=1)
    _, _, extra = _MEASURED[-1]
    benchmark.extra_info["rejected_bits"] = extra["rejected_bits"]
    record("F8", "blob accounting", m)
    assert extra["quarantined_messages"] > 0
    assert extra["rejected_bits"] > 0
