"""F7 -- the price of partial synchrony.

The paper's bounds assume lockstep synchrony.  The partial-synchrony
plane keeps executions *byte-identical* in the paper's own metric
(``honest_bits``) whenever the network stabilizes inside the escalated
budgets, and fails over (HighCostCA -> async AA) when it never does.
This module measures what the resilience costs instead: decision
latency in physical transport slots and separately-accounted overhead
bits, swept against

* the Global Stabilization Time (pre-GST loss until ``gst``), and
* the heal time of a partition isolating one party -- including the
  never-healing end point that descends the failover ladder.

Besides the end-of-session tables, every sweep point lands in
``benchmarks/BENCH_partition.json`` for dashboards and regression
scripts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import Measurement
from repro.core.fixed_length import fixed_length_ca
from repro.errors import SimulationError
from repro.sim import (
    PartialSyncTransport,
    TimeoutEscalation,
    run_protocol,
    run_with_escalation,
)

from conftest import record, run_measured

N, T = 7, 2
ELL = 64
KAPPA = 128

#: GST sweep: stabilization times in global transport slots.
GST_POINTS = (0, 64, 128, 256, 384)
PRE_GST_DROP = 0.5

#: heal-time sweep for a partition isolating party 0; -1 never heals
#: and exercises the failover ladder instead of the escalated retries.
HEAL_POINTS = (64, 128, 256, 512, -1)

JSON_PATH = os.path.join(os.path.dirname(__file__), "BENCH_partition.json")

#: JSON-ready sweep points drained by the module teardown emitter.
_POINTS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Write the collected sweeps as machine-readable JSON on teardown."""
    yield
    if not _POINTS:
        return
    document = {
        "schema": "repro.bench_partial_sync/v1",
        "experiment": "F7",
        "config": {
            "n": N, "t": T, "ell": ELL, "kappa": KAPPA,
            "pre_gst_drop": PRE_GST_DROP,
        },
        "points": _POINTS,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def make_inputs(n: int = N) -> list[int]:
    base = 1 << (ELL - 1)
    return [base + 1000 * i for i in range(n)]


def _factory():
    return lambda ctx, v: fixed_length_ca(ctx, v, ELL)


def _point(axis, value, result, transport) -> dict:
    stats = result.stats
    fallback = result.fallback
    return {
        "axis": axis,
        "value": value,
        "rung": "primary" if fallback is None else fallback.rung,
        "decision_latency_slots": transport.clock,
        "honest_bits": stats.honest_bits,
        "overhead_bits": stats.resilience_overhead_bits,
        "beacon_bits": stats.beacon_bits,
        "resyncs": stats.resync_attempts + (
            0 if fallback is None else fallback.resyncs
        ),
        "escalated_rounds": stats.escalated_rounds,
    }


def _measure(result, n: int, t: int) -> Measurement:
    outputs = [result.outputs[p] for p in result.honest_parties]
    return Measurement(
        protocol="fixed_length_ca",
        n=n, t=t, ell=ELL, kappa=KAPPA,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=min(outputs),
    )


def run_gst_point(gst: int) -> Measurement:
    inputs = make_inputs()
    transport = PartialSyncTransport(
        gst=gst, pre_gst_drop=PRE_GST_DROP, seed=13,
    )
    result = run_with_escalation(
        _factory(), inputs, n=N, t=T, kappa=KAPPA, transport=transport,
    )
    # a stabilizing network never leaves the optimal path...
    assert result.fallback is None
    # ...and the paper's metric is untouched by the slow start.
    baseline = run_protocol(_factory(), inputs, n=N, t=T, kappa=KAPPA)
    assert result.stats.honest_bits == baseline.stats.honest_bits
    _POINTS.append(_point("gst", gst, result, transport))
    return _measure(result, N, T)


def run_heal_point(heal: int) -> Measurement:
    # t=1 keeps the async rung feasible (5t < n) at the -1 end point.
    n, t = N, 1
    inputs = make_inputs(n)
    transport = PartialSyncTransport(
        partitions=((0, heal, (0,)),), seed=13,
        slot_budget=32, escalation=TimeoutEscalation(max_attempts=4),
    )
    result = run_with_escalation(
        _factory(), inputs, n=n, t=t, kappa=KAPPA, transport=transport,
        epsilon=1,
    )
    if heal == -1:
        assert result.fallback is not None
    _POINTS.append(_point("heal", heal, result, transport))
    return _measure(result, n, t)


@pytest.mark.parametrize("gst", GST_POINTS)
def test_latency_and_overhead_vs_gst(benchmark, gst):
    m = run_measured(benchmark, "F7", f"gst={gst}", lambda: run_gst_point(gst))
    assert m.bits > 0


@pytest.mark.parametrize("heal", HEAL_POINTS)
def test_latency_and_overhead_vs_heal_time(benchmark, heal):
    label = "never" if heal == -1 else str(heal)
    m = run_measured(
        benchmark, "F7", f"heal={label}", lambda: run_heal_point(heal)
    )
    assert m.bits > 0


def test_overhead_grows_with_gst(benchmark):
    """Later stabilization costs more overhead bits and slots -- but
    the same honest bits (the paper's bound is GST-invariant here)."""

    def sweep():
        return [run_gst_point(gst) for gst in (0, 256)]

    early, late = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("F7", "gst sweep endpoints", late)
    assert early.bits == late.bits
    early_point = next(
        p for p in reversed(_POINTS)
        if p["axis"] == "gst" and p["value"] == 0
    )
    late_point = next(
        p for p in reversed(_POINTS)
        if p["axis"] == "gst" and p["value"] == 256
    )
    assert late_point["overhead_bits"] > early_point["overhead_bits"]
    assert (
        late_point["decision_latency_slots"]
        > early_point["decision_latency_slots"]
    )


def test_never_healing_descends_the_ladder(benchmark):
    """The -1 end point degrades instead of hanging: the recorded rung
    is a failover, never an unhandled exception."""

    def run():
        try:
            return run_heal_point(-1)
        except SimulationError:  # pragma: no cover - ladder exhaustion
            pytest.fail("failover ladder must absorb the broken network")

    m = benchmark.pedantic(run, rounds=1, iterations=1)
    record("F7", "heal=never (failover)", m)
    point = next(
        p for p in reversed(_POINTS)
        if p["axis"] == "heal" and p["value"] == -1
    )
    assert point["rung"] in ("high_cost_ca", "async_aa")
    assert point["resyncs"] > 0
