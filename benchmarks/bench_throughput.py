"""T7 -- scheduler throughput: instances/second over small-instance fleets.

The paper's bounds are per-execution, but the repository's *workloads*
are fleets: benchmark grids, fuzz campaigns and exhaustive small-``n``
enumerations run thousands of small executions whose cost is dominated
by dispatch overhead rather than protocol work.  This benchmark pins
that axis: how many ``FixedLengthCA`` instances per second each
dispatch strategy sustains over fleets of ``n in {4, 7}`` small-``ell``
executions.

Three strategies over the same fleet:

* ``per_call``   -- one-instance-per-call dispatch: every instance pays
  a fresh cold single-worker process (``spawn`` start method:
  interpreter boot, imports, GF table build, IPC, teardown).  The cost
  profile of driving the harness once per case -- a CLI invocation per
  artifact replay, a CI job per grid point -- which ``fork``-from-a-
  warm-parent would hide behind copy-on-write.
* ``chunked``    -- one :func:`repro.sim.parallel.run_many` call for
  the whole fleet (``multiplex=1``): pool/dispatch overhead amortised,
  instances still executed one-at-a-time.
* ``multiplexed`` -- one ``run_many(..., multiplex=K)`` call: the
  cooperative scheduler (:mod:`repro.sim.multiplex`) steps ``K``
  instances round-by-round per interpreter loop.

The emitted ``BENCH_throughput.json`` has the same two-section shape as
``BENCH_hotpath.json``:

* ``deterministic`` -- per-fleet counters (including the ``sched_*``
  family) captured from an in-process serial pass and an in-process
  multiplexed pass that must agree byte for byte; gated at zero
  tolerance by ``--check`` (reusing
  :func:`repro.perf.profile.check_counters`).
* ``timing`` -- instances/sec per strategy plus the
  multiplexed-over-per-call speedup.  Machine-local; never gated.

Usage::

    python benchmarks/bench_throughput.py                      # full fleet
    python benchmarks/bench_throughput.py --quick \
        --check benchmarks/BENCH_throughput.json               # CI smoke

This module is also importable by the pytest benchmark session
(``bench_*.py`` is a collected pattern); it defines no tests and does
all work under ``__main__``.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

SCHEMA = "repro-throughput-bench-v1"

#: One fleet per party count; ``ell`` stays small so per-instance work
#: is dispatch-bound (the regime this benchmark is about).
FLEETS: tuple[dict[str, Any], ...] = (
    dict(protocol="fixed_length_ca", n=4, t=1, ell=32, spread="clustered"),
    dict(protocol="fixed_length_ca", n=7, t=2, ell=32, spread="clustered"),
)

#: Timed instances per fleet (full / --quick).  The deterministic
#: section always uses :data:`DETERMINISTIC_INSTANCES` so quick CI runs
#: check against the same committed entries as full runs.
FULL_INSTANCES = 1200
QUICK_INSTANCES = 120
DETERMINISTIC_INSTANCES = 16

#: Instances sampled for the per-call strategy: each one costs a full
#: cold process spin-up, so the rate is measured on a sample and
#: reported as a rate like the others.
PER_CALL_SAMPLE = 8


def _jobs(fleet: dict[str, Any], instances: int) -> list[dict[str, Any]]:
    """The fleet's payloads: one ``measure_case`` dict per instance."""
    return [
        dict(
            protocol=fleet["protocol"], n=fleet["n"], t=fleet["t"],
            ell=fleet["ell"], seed=seed, spread=fleet["spread"],
        )
        for seed in range(instances)
    ]


def _fleet_key(fleet: dict[str, Any]) -> str:
    return (
        f"{fleet['protocol']}/n{fleet['n']}/t{fleet['t']}"
        f"/ell{fleet['ell']}"
    )


def _deterministic_entry(fleet: dict[str, Any]) -> dict[str, Any]:
    """Serial vs multiplexed in-process passes; one gated entry.

    Mirrors the ``repro profile`` scheduler micro-battery: the entry's
    counters are the multiplexed pass', and serial/multiplexed
    divergence is folded into the output digest so the zero-tolerance
    check catches it.
    """
    from repro.analysis.experiments import measure_case
    from repro.perf import config, counters
    from repro.perf.profile import _output_digest
    from repro.sim.parallel import run_many

    jobs = _jobs(fleet, DETERMINISTIC_INSTANCES)
    config.reset_process_caches()
    counters.reset()
    serial = [o.value for o in run_many(measure_case, jobs)]
    serial_counts = counters.snapshot()
    config.reset_process_caches()
    counters.reset()
    muxed = [
        o.value
        for o in run_many(
            measure_case, jobs, multiplex=DETERMINISTIC_INSTANCES
        )
    ]
    mux_counts = counters.snapshot()
    identical = serial == muxed and serial_counts == mux_counts
    digest_material = (
        [_output_digest(m.output) for m in muxed],
        "identical" if identical else "DIVERGED",
    )
    return {
        "params": dict(fleet, instances=DETERMINISTIC_INSTANCES),
        "counters": mux_counts,
        "bits": sum(m.bits for m in muxed),
        "rounds": sum(m.rounds for m in muxed),
        "messages": sum(m.messages for m in muxed),
        "output_sha256": _output_digest(digest_material),
    }


def _time_per_call(jobs: list[dict[str, Any]], sample: int) -> dict:
    """One-instance-per-call dispatch: a fresh cold process per instance.

    ``spawn`` (not the platform default) so every call honestly pays
    interpreter boot + imports + GF table warm-up -- the cold-start
    bill of per-case harness invocations, which fork-from-a-warm-parent
    would silently amortise via copy-on-write.
    """
    import multiprocessing

    from repro.analysis.experiments import measure_case
    from repro.perf import config
    from repro.sim.parallel import warm_worker

    taken = jobs[:sample]
    started = time.perf_counter()
    for payload in taken:
        executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=warm_worker,
            initargs=(config.backend(),),
        )
        try:
            executor.submit(measure_case, payload).result()
        finally:
            executor.shutdown(wait=True)
    wall_s = time.perf_counter() - started
    return {
        "instances": len(taken),
        "wall_s": round(wall_s, 4),
        "instances_per_s": round(len(taken) / wall_s, 2),
    }


def _time_engine(jobs: list[dict[str, Any]], multiplex: int) -> dict:
    """One engine call for the whole fleet (chunked or multiplexed)."""
    from repro.analysis.experiments import measure_case
    from repro.sim.parallel import run_many

    started = time.perf_counter()
    outcomes = run_many(measure_case, jobs, multiplex=multiplex)
    wall_s = time.perf_counter() - started
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)} instance(s) failed: {failed[0].error}"
        )
    return {
        "instances": len(jobs),
        "wall_s": round(wall_s, 4),
        "instances_per_s": round(len(jobs) / wall_s, 2),
    }


def build_document(
    quick: bool, multiplex: int, per_call_sample: int
) -> dict[str, Any]:
    """Run the battery and assemble the benchmark document."""
    from repro.perf import config

    instances = QUICK_INSTANCES if quick else FULL_INSTANCES
    deterministic: dict[str, Any] = {}
    fleets: dict[str, Any] = {}
    for fleet in FLEETS:
        key = _fleet_key(fleet)
        deterministic[
            f"sched/throughput/{key}/x{DETERMINISTIC_INSTANCES}"
        ] = _deterministic_entry(fleet)
        jobs = _jobs(fleet, instances)
        per_call = _time_per_call(jobs, per_call_sample)
        chunked = _time_engine(jobs, multiplex=1)
        muxed = _time_engine(jobs, multiplex=multiplex)
        fleets[key] = {
            "instances": instances,
            "per_call": per_call,
            "chunked": chunked,
            "multiplexed": muxed,
            "speedup_multiplexed_over_per_call": round(
                muxed["instances_per_s"]
                / max(per_call["instances_per_s"], 1e-9),
                2,
            ),
            "speedup_multiplexed_over_chunked": round(
                muxed["instances_per_s"]
                / max(chunked["instances_per_s"], 1e-9),
                2,
            ),
        }
    return {
        "schema": SCHEMA,
        "quick": bool(quick),
        "deterministic": deterministic,
        "timing": {
            "backend": config.backend(),
            "multiplex": multiplex,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "fleets": fleets,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized fleets (deterministic section is "
                             "identical to the full run's)")
    parser.add_argument("--backend", choices=["python", "numpy"],
                        default=None,
                        help="pin the kernel backend for the battery")
    parser.add_argument("--multiplex", type=int, default=16,
                        help="cooperative instances per interpreter loop "
                             "in the multiplexed strategy")
    parser.add_argument("--per-call-sample", type=int,
                        default=PER_CALL_SAMPLE,
                        help="instances sampled for the per-call strategy")
    parser.add_argument("--out", default=None,
                        help="write BENCH_throughput.json to this path")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="diff the deterministic section against a "
                             "committed baseline at zero tolerance")
    args = parser.parse_args(argv)

    from repro.perf import config
    from repro.perf.profile import (
        check_counters,
        load_document,
        save_document,
    )

    if args.backend is not None:
        config.set_backend(args.backend)

    document = build_document(
        args.quick, args.multiplex, args.per_call_sample
    )
    mode = "quick" if args.quick else "full"
    print(f"throughput battery ({mode}, backend={config.backend()}):")
    for key, fleet in document["timing"]["fleets"].items():
        print(
            f"  {key:<36}"
            f" per_call {fleet['per_call']['instances_per_s']:>8.2f}/s"
            f"  chunked {fleet['chunked']['instances_per_s']:>8.2f}/s"
            f"  multiplexed {fleet['multiplexed']['instances_per_s']:>8.2f}/s"
            f"  ({fleet['speedup_multiplexed_over_per_call']:.2f}x over"
            " per-call)"
        )

    if args.out:
        path = save_document(document, args.out)
        print(f"benchmark document written to {path}")

    if args.check:
        baseline = load_document(args.check)
        errors, notes = check_counters(document, baseline)
        for note in notes:
            print(f"note  : {note}")
        for error in errors:
            print(f"error : {error}", file=sys.stderr)
        if errors:
            print(
                f"counter check FAILED against {args.check}",
                file=sys.stderr,
            )
            return 1
        print(f"counter check passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"),
    )
    raise SystemExit(main())
