"""T6 -- Theorem 6: ``PI_BA+`` costs ``O(kappa n^2) + BITS_kappa(PI_BA)``
and its extra properties hold under attack.

Checks: quadratic-ish growth in ``n`` (the phase-king ``PI_BA`` term
adds one factor ~t), kappa-linear growth, and Intrusion Tolerance /
Bounded Pre-Agreement verified inside the benchmark loop under the
standard adversary battery.
"""

from __future__ import annotations

import pytest

from repro.analysis import Measurement, fit_power_law
from repro.ba.ba_plus import ba_plus
from repro.sim import run_protocol, standard_adversary_suite

from conftest import fan_out, record, run_measured

NS = [(4, 1), (7, 2), (10, 3), (13, 4)]
KAPPAS = [64, 128, 256]


def run_ba_plus(n, t, kappa, adversary=None, pre_agree=True) -> Measurement:
    size = kappa // 8
    if pre_agree:
        inputs = [bytes([1]) * size] * (n - 2 * t) + [
            bytes([10 + i]) * size for i in range(2 * t)
        ]
    else:
        inputs = [bytes([i + 1]) * size for i in range(n)]
    result = run_protocol(
        lambda ctx, v: ba_plus(ctx, v), inputs, n=n, t=t, kappa=kappa,
        adversary=adversary,
    )
    out = result.common_output()
    honest = {inputs[p] for p in range(n) if p not in result.corrupted}
    # Intrusion Tolerance (always) + Bounded Pre-Agreement (pre_agree):
    assert out is None or out in honest
    if pre_agree:
        assert out is not None
    return Measurement(
        protocol="ba_plus",
        n=n,
        t=t,
        ell=kappa,
        kappa=kappa,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=out,
    )


@pytest.mark.parametrize("n,t", NS)
def test_ba_plus_vs_n(benchmark, n, t):
    m = run_measured(
        benchmark, "T6", f"n={n}", lambda: run_ba_plus(n, t, 128)
    )
    assert m.bits > 0


@pytest.mark.parametrize("kappa", KAPPAS)
def test_ba_plus_vs_kappa(benchmark, kappa):
    m = run_measured(
        benchmark,
        "T6",
        f"kappa={kappa}",
        lambda: run_ba_plus(7, 2, kappa),
    )
    assert m.bits > 0


def test_ba_plus_growth_in_n(benchmark):
    def sweep():
        return fan_out(run_ba_plus, [(n, t, 128) for n, t in NS])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law([m.n for m in ms], [m.bits for m in ms])
    benchmark.extra_info["exponent_n"] = round(exponent, 3)
    # O(kappa n^2) + phase-king O(kappa n^2 t): between n^2 and n^3.5
    assert 1.7 < exponent < 3.7


def test_ba_plus_properties_under_attack(benchmark):
    """Re-verify IT + BPA under the whole adversary battery, timed."""

    def battery():
        ms = []
        for adversary in standard_adversary_suite(seed=23):
            ms.append(run_ba_plus(7, 2, 128, adversary=adversary))
            ms.append(
                run_ba_plus(
                    7, 2, 128, adversary=adversary, pre_agree=False
                )
            )
        return ms

    ms = benchmark.pedantic(battery, rounds=1, iterations=1)
    record("T6", "adversary battery (last)", ms[-1])
    assert len(ms) == 2 * len(standard_adversary_suite())
