"""T1 -- Theorem 1: ``PI_lBA+`` communication is ``O(l n + kappa n^2 log n)``.

Checks: total honest bits grow *linearly* in the payload length ``l``
(fitted exponent close to 1 over the sweep tail), and the additive term
is payload-independent (the bottom-outcome run stays flat in ``l``).
"""

from __future__ import annotations

import pytest

from repro.analysis import Measurement, fit_power_law
from repro.ba.ext_ba_plus import ext_ba_plus
from repro.sim import run_protocol

from conftest import fan_out, record, run_measured

KAPPA = 128
N, T = 7, 2

ELLS = [512, 2048, 8192, 32768]  # payload lengths in bits


def run_ext_ba(ell: int, agreeing: bool) -> Measurement:
    size = ell // 8
    if agreeing:
        inputs = [bytes([7]) * size] * N
    else:
        inputs = [bytes([i + 1]) * size for i in range(N)]
    result = run_protocol(
        lambda ctx, v: ext_ba_plus(ctx, v), inputs, n=N, t=T, kappa=KAPPA
    )
    return Measurement(
        protocol="ext_ba_plus" + ("" if agreeing else "(bottom)"),
        n=N,
        t=T,
        ell=ell,
        kappa=KAPPA,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=result.common_output(),
    )


@pytest.mark.parametrize("ell", ELLS)
def test_ext_ba_bits_vs_ell(benchmark, ell):
    m = run_measured(
        benchmark, "T1", f"ell={ell}", lambda: run_ext_ba(ell, True)
    )
    assert m.output is not None


def test_ext_ba_linear_in_ell(benchmark):
    """The fitted bits-vs-ell exponent over the sweep tail is ~1."""

    def sweep():
        return fan_out(run_ext_ba, [(ell, True) for ell in ELLS])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # drop the smallest point where the kappa*n^2 additive term dominates
    exponent, _ = fit_power_law(
        [m.ell for m in ms[1:]], [m.bits for m in ms[1:]]
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    assert exponent < 1.3, f"super-linear growth in l: {exponent:.2f}"


def test_ext_ba_bottom_flat_in_ell(benchmark):
    """When PI_BA+ returns bottom no payload crosses the wire, so the
    cost must be (nearly) independent of l."""

    def sweep():
        return fan_out(run_ext_ba, [(ell, False) for ell in (512, 32768)])

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("T1", "bottom ell=512", small)
    record("T1", "bottom ell=32768", large)
    assert large.output is None
    assert large.bits < 1.2 * small.bits
