"""F4 -- companion experiment: Approximate Agreement vs Convex Agreement.

Section 1.1 frames CA against its classic relaxation, AA [16]: AA's
outputs may differ by eps, and its communication grows with
``log(range/eps)`` full-value exchange rounds (``O(l n^2)`` each), while
CA pays a fixed ``O(l n + poly(n, kappa))`` for exact agreement.

Checks: AA cost increases as eps shrinks; the AA-vs-CA cost curves
cross; CA's spread is exactly zero while AA's measured spread respects
(and tracks) eps.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.aa import approximate_agreement
from repro.analysis import Measurement
from repro.core.protocol_z import protocol_z
from repro.sim import run_protocol

from conftest import fan_out, record, run_measured

N, T = 7, 2
BOUND = 1 << 24
INPUTS = [1_000_000 * (i + 1) for i in range(N)]


def run_aa(eps_exponent: int) -> Measurement:
    epsilon = Fraction(2) ** eps_exponent
    result = run_protocol(
        lambda ctx, v: approximate_agreement(ctx, v, epsilon, BOUND),
        INPUTS, n=N, t=T,
    )
    outputs = list(result.outputs.values())
    spread = max(outputs) - min(outputs)
    assert spread <= epsilon
    return Measurement(
        protocol=f"aa(eps=2^{eps_exponent})",
        n=N,
        t=T,
        ell=BOUND.bit_length(),
        kappa=128,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=float(spread),
    )


def run_ca() -> Measurement:
    result = run_protocol(
        lambda ctx, v: protocol_z(ctx, v), INPUTS, n=N, t=T, kappa=128
    )
    assert len(set(result.outputs.values())) == 1
    return Measurement(
        protocol="pi_z",
        n=N,
        t=T,
        ell=BOUND.bit_length(),
        kappa=128,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=0,
    )


@pytest.mark.parametrize("eps_exponent", [16, 8, 0, -8, -16])
def test_aa_cost_vs_eps(benchmark, eps_exponent):
    m = run_measured(
        benchmark,
        "F4",
        f"aa eps=2^{eps_exponent}",
        lambda: run_aa(eps_exponent),
    )
    assert m.bits > 0


def test_ca_fixed_cost(benchmark):
    m = run_measured(benchmark, "F4", "pi_z (exact)", run_ca)
    assert m.output == 0


def test_aa_cost_monotone_in_precision(benchmark):
    def sweep():
        return fan_out(run_aa, [(e,) for e in (16, 0, -16)])

    coarse, mid, fine = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert coarse.bits < mid.bits < fine.bits
    # each halving of eps adds one full-exchange round:
    per_octave_coarse = (mid.bits - coarse.bits) / 16
    per_octave_fine = (fine.bits - mid.bits) / 16
    benchmark.extra_info["bits_per_eps_halving"] = round(per_octave_fine)
    assert per_octave_fine > 0.5 * per_octave_coarse


def test_curves_cross(benchmark):
    """Coarse AA is cheaper than CA; sufficiently fine AA is costlier."""

    def sweep():
        coarse, fine = fan_out(run_aa, [(16,), (-320,)])
        return run_ca(), coarse, fine

    ca, coarse, fine = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("F4", "crossover coarse", coarse)
    record("F4", "crossover fine", fine)
    assert coarse.bits < ca.bits < fine.bits
