"""T5 -- Theorem 5 / Corollaries 1-2: end-to-end ``PI_N`` / ``PI_Z``.

The paper's headline: ``BITS_l(PI_Z) = O(l n + kappa n^2 log^2 n)`` and
``ROUNDS_l(PI_Z) = O(n log n)`` (with a quadratic ``PI_BA``).

Checks: marginal bits per extra input bit ~ n; near-linear fitted
exponent in ``l``; rounds bounded by ``c * n log n`` across the n-sweep.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import fit_power_law, marginal_slope, measure
from repro.perf import config as perf_config

from conftest import attach, measure_grid, record, run_measured

N, T = 7, 2
ELLS = [256, 1024, 4096, 16384, 65536]
NS = [(4, 1), (7, 2), (10, 3), (13, 4)]
#: long-value points for the hot-path cache A/B medians.
HOTPATH_ELLS = [16384, 65536]


@pytest.mark.parametrize("ell", ELLS)
def test_pi_z_vs_ell(benchmark, ell):
    m = run_measured(
        benchmark,
        "T5",
        f"ell={ell}",
        lambda: measure("pi_z", N, T, ell, seed=4, spread="clustered"),
    )
    assert m.bits > 0


@pytest.mark.parametrize("n,t", NS)
def test_pi_z_vs_n(benchmark, n, t):
    m = run_measured(
        benchmark,
        "T5",
        f"n={n}",
        lambda: measure("pi_z", n, t, 4096, seed=4, spread="clustered"),
    )
    # Rounds O(n log n): generous constant, checked across the sweep.
    assert m.rounds <= 60 * n * math.log2(max(2, n))


def test_pi_z_marginal_slope_is_order_n(benchmark):
    """The headline number: each extra input bit costs ~n bits total."""

    def sweep():
        return measure_grid([
            dict(protocol="pi_z", n=N, t=T, ell=ell, seed=4,
                 spread="clustered")
            for ell in (16384, 65536)
        ])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = marginal_slope([m.ell for m in ms], [m.bits for m in ms])
    benchmark.extra_info["bits_per_input_bit"] = round(slope, 2)
    # Theta(n): allow [n/2, 6n] for protocol constants (the value
    # traverses the network a small constant number of times).
    assert N / 2 <= slope <= 6 * N, slope


def test_pi_z_near_linear_in_ell(benchmark):
    def sweep():
        return measure_grid([
            dict(protocol="pi_z", n=N, t=T, ell=ell, seed=4,
                 spread="clustered")
            for ell in ELLS[1:]
        ])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, r2 = fit_power_law([m.ell for m in ms], [m.bits for m in ms])
    benchmark.extra_info["exponent"] = round(exponent, 3)
    benchmark.extra_info["r_squared"] = round(r2, 4)
    assert exponent < 1.25


@pytest.mark.parametrize("caches", ["cached", "uncached"])
@pytest.mark.parametrize("ell", HOTPATH_ELLS)
def test_fixed_length_ca_hotpath_medians(benchmark, ell, caches):
    """Long-``l`` FixedLengthCA with the hot-path caches on vs off.

    pytest-benchmark's 5-round median puts a stable number on what the
    execution-scoped RS/Merkle caches buy at the paper-scale lengths;
    bits and rounds are identical either way (the caches are
    byte-for-byte correctness-neutral -- see tests/test_perf.py).
    """
    enabled = caches == "cached"

    def run():
        with perf_config.caches(enabled):
            return measure(
                "fixed_length_ca", N, T, ell, seed=4, spread="clustered"
            )

    m = benchmark.pedantic(run, rounds=5, iterations=1)
    attach(benchmark, m)
    record("T5", f"hotpath ell={ell} {caches}", m)
    assert m.bits > 0


def test_pi_n_matches_pi_z_on_naturals(benchmark):
    """PI_Z adds only one bit-BA on top of PI_N."""

    def sweep():
        return measure_grid([
            dict(protocol=name, n=N, t=T, ell=4096, seed=4,
                 spread="clustered")
            for name in ("pi_n", "pi_z")
        ])

    pi_n, pi_z = benchmark.pedantic(sweep, rounds=1, iterations=1)
    overhead = pi_z.bits - pi_n.bits
    benchmark.extra_info["sign_ba_overhead_bits"] = overhead
    assert overhead < 0.05 * pi_n.bits
