"""T3 -- Theorem 3: ``HighCostCA`` costs ``O(l n^3)`` bits, ``O(n)`` rounds.

Checks: bits are linear in ``l`` with a ~n^3 coefficient (cubic growth
across the n-sweep), rounds are exactly ``2 + 4 (t + 1)``.
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_power_law, measure

from conftest import measure_grid, run_measured

ELLS = [256, 1024, 4096]
NS = [(4, 1), (7, 2), (10, 3), (13, 4)]


@pytest.mark.parametrize("ell", ELLS)
def test_high_cost_vs_ell(benchmark, ell):
    m = run_measured(
        benchmark,
        "T3",
        f"ell={ell}",
        lambda: measure("high_cost_ca", 7, 2, ell, seed=2),
    )
    assert m.bits > 0


@pytest.mark.parametrize("n,t", NS)
def test_high_cost_vs_n(benchmark, n, t):
    ell = 1024
    m = run_measured(
        benchmark,
        "T3",
        f"n={n}",
        lambda: measure("high_cost_ca", n, t, ell, seed=2),
    )
    # Theorem 3 round complexity, exactly as implemented:
    assert m.rounds == 2 + 4 * (t + 1)


def test_high_cost_linear_in_ell(benchmark):
    def sweep():
        return measure_grid([
            dict(protocol="high_cost_ca", n=7, t=2, ell=ell, seed=2)
            for ell in ELLS
        ])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law([m.ell for m in ms], [m.bits for m in ms])
    benchmark.extra_info["exponent_ell"] = round(exponent, 3)
    assert 0.8 < exponent < 1.2


def test_high_cost_cubic_in_n(benchmark):
    def sweep():
        return measure_grid([
            dict(protocol="high_cost_ca", n=n, t=t, ell=2048, seed=2)
            for n, t in NS
        ])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law([m.n for m in ms], [m.bits for m in ms])
    benchmark.extra_info["exponent_n"] = round(exponent, 3)
    # O(l n^3) via t+1 ~ n/3 phases of n^2 value-exchanges
    assert 2.3 < exponent < 4.2
