"""F1 -- the headline comparison: ``PI_Z`` vs the broadcast baselines.

Reproduces the paper's Section 1 story as a measured series: total
honest bits versus input length for

* ``pi_z``               (this paper)          -- ``O(l n)``,
* ``broadcast_ca``       (classic BC approach) -- ``O(l n^2)``,
* ``naive_broadcast_ca`` (pre-extension era)   -- ``O(l n^3)``,
* ``high_cost_ca``       (king-style CA [47])  -- ``O(l n^3)``.

Checks: who wins for large ``l`` (PI_Z), by what factor (~n vs the
broadcast approach), and where the crossover with the cheap-but-cubic
protocols falls.
"""

from __future__ import annotations

import pytest

from repro.analysis import marginal_slope, measure

from conftest import measure_grid, record, run_measured

N, T = 7, 2
ELLS = [256, 1024, 4096, 16384]
PROTOCOLS = ["pi_z", "broadcast_ca", "naive_broadcast_ca", "high_cost_ca"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("ell", ELLS)
def test_comparison_point(benchmark, protocol, ell):
    m = run_measured(
        benchmark,
        "F1",
        f"{protocol}@{ell}",
        lambda: measure(protocol, N, T, ell, seed=5, spread="spread"),
    )
    assert m.bits > 0


def test_pi_z_wins_for_long_inputs(benchmark):
    """At the top of the sweep the paper's protocol must be cheapest."""

    def sweep():
        measurements = measure_grid([
            dict(protocol=protocol, n=N, t=T, ell=ELLS[-1], seed=5)
            for protocol in PROTOCOLS
        ])
        return dict(zip(PROTOCOLS, measurements))

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for protocol, m in ms.items():
        record("F1", f"winner-check {protocol}", m)
    pi_z = ms["pi_z"].bits
    assert all(
        pi_z < m.bits for name, m in ms.items() if name != "pi_z"
    ), {name: m.bits for name, m in ms.items()}


def test_marginal_slopes_ordering(benchmark):
    """Slopes (bits per extra input bit) must order as n < n^2 <= n^3."""

    def sweep():
        ells = (4096, 16384)
        flat = measure_grid([
            dict(protocol=protocol, n=N, t=T, ell=ell, seed=5)
            for protocol in PROTOCOLS
            for ell in ells
        ])
        out = {}
        for index, protocol in enumerate(PROTOCOLS):
            ms = flat[index * len(ells):(index + 1) * len(ells)]
            out[protocol] = marginal_slope(
                [m.ell for m in ms], [m.bits for m in ms]
            )
        return out

    slopes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for protocol, slope in slopes.items():
        benchmark.extra_info[f"slope_{protocol}"] = round(slope, 1)
    assert slopes["pi_z"] < slopes["broadcast_ca"]
    assert slopes["broadcast_ca"] < slopes["naive_broadcast_ca"]
    assert slopes["broadcast_ca"] < slopes["high_cost_ca"]
    # the gap between PI_Z and the broadcast approach is ~n-fold:
    assert slopes["broadcast_ca"] / slopes["pi_z"] > N / 2
