"""T2 -- Theorem 2: ``FixedLengthCA`` costs ``O(l n + kappa n^2 log n log l)``
bits and ``O(log l) * ROUNDS(PI_BA)`` rounds.

Checks: bits scale ~linearly in ``l`` for large ``l``; rounds scale
logarithmically in ``l`` (ratio across a 64x ``l`` increase stays small).
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_power_law, measure

from conftest import measure_grid, run_measured

N, T = 7, 2
ELLS = [256, 1024, 4096, 16384]


@pytest.mark.parametrize("ell", ELLS)
def test_fixed_length_ca_vs_ell(benchmark, ell):
    m = run_measured(
        benchmark,
        "T2",
        f"ell={ell}",
        lambda: measure(
            "fixed_length_ca", N, T, ell, seed=1, spread="clustered"
        ),
    )
    assert m.bits > 0


def test_fixed_length_ca_rounds_logarithmic(benchmark):
    def sweep():
        return measure_grid([
            dict(protocol="fixed_length_ca", n=N, t=T, ell=ell,
                 seed=1, spread="clustered")
            for ell in (256, 16384)
        ])

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # O(log l) iterations: 64x longer inputs -> rounds grow by at most
    # the iteration-count ratio log(16384)/log(256) = 14/8 (plus slack).
    ratio = large.rounds / small.rounds
    benchmark.extra_info["rounds_ratio_64x_ell"] = round(ratio, 2)
    assert ratio < 2.5


def test_fixed_length_ca_bits_near_linear_tail(benchmark):
    def sweep():
        return measure_grid([
            dict(protocol="fixed_length_ca", n=N, t=T, ell=ell,
                 seed=1, spread="clustered")
            for ell in ELLS
        ])

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law(
        [m.ell for m in ms[1:]], [m.bits for m in ms[1:]]
    )
    benchmark.extra_info["exponent"] = round(exponent, 3)
    # log-factor on the additive term allows mild super-linearity
    assert exponent < 1.4


@pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
def test_fixed_length_ca_vs_n(benchmark, n, t):
    ell = 1024
    m = run_measured(
        benchmark,
        "T2",
        f"n={n}",
        lambda: measure(
            "fixed_length_ca", n, t, ell, seed=1, spread="clustered"
        ),
    )
    assert m.rounds > 0
