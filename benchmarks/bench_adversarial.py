"""F3 -- adversarial robustness of the communication bound.

Section 1 observes that prior CA protocols' communication is
*adversarially chosen* -- honest parties forward messages sent by
corrupted parties, so byzantine behaviour inflates honest cost.  The
paper's protocol never forwards unauthenticated byzantine blobs: honest
parties only ship (a) their own values' segments, (b) Merkle-verified
codewords, (c) constant-size votes.

Checks: across the full adversary battery the honest communication of
``PI_Z`` stays within a constant factor of the passive-adversary run,
and Convex Validity holds in every cell.

Besides the end-of-session tables, this module writes every cell to
``benchmarks/BENCH_adversarial.json`` so dashboards and regression
scripts can consume the battery without scraping pytest output.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import Measurement
from repro.core.protocol_z import protocol_z
from repro.sim import run_protocol, standard_adversary_suite

from conftest import record, run_measured

N, T = 7, 2
ELL = 4096

JSON_PATH = os.path.join(os.path.dirname(__file__),
                         "BENCH_adversarial.json")

#: (label, Measurement) pairs emitted to BENCH_adversarial.json.
_MEASURED: list[tuple[str, Measurement]] = []


def _measurement_record(label: str, m: Measurement) -> dict:
    return {
        "label": label,
        "protocol": m.protocol,
        "n": m.n,
        "t": m.t,
        "ell": m.ell,
        "kappa": m.kappa,
        "honest_bits": m.bits,
        "rounds": m.rounds,
        "messages": m.messages,
        "output": repr(m.output),
    }


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    """Write the collected battery as machine-readable JSON on teardown."""
    yield
    if not _MEASURED:
        return
    passive = next(
        (m for label, m in _MEASURED if label == "passive"), None
    )
    document = {
        "schema": "repro.bench_adversarial/v1",
        "experiment": "F3",
        "config": {"n": N, "t": T, "ell": ELL, "kappa": 128},
        "measurements": [
            _measurement_record(label, m) for label, m in _MEASURED
        ],
        "worst_over_passive": (
            None if passive is None else round(
                max(m.bits for _, m in _MEASURED) / passive.bits, 3
            )
        ),
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def make_inputs() -> list[int]:
    base = 1 << (ELL - 1)
    return [base + 1000 * i for i in range(N)]


def run_under(adversary) -> Measurement:
    # Deliberately not routed through conftest's fan_out harness: each
    # call appends to the module-global _MEASURED that the JSON emitter
    # drains, and that side effect would be lost in a worker process.
    inputs = make_inputs()
    result = run_protocol(
        lambda ctx, v: protocol_z(ctx, v), inputs, n=N, t=T, kappa=128,
        adversary=adversary,
    )
    out = result.assert_convex_valid(inputs)
    measurement = Measurement(
        protocol="pi_z",
        n=N,
        t=T,
        ell=ELL,
        kappa=128,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=out,
    )
    label = "passive" if adversary is None else adversary.describe()
    _MEASURED.append((label, measurement))
    return measurement


@pytest.mark.parametrize(
    "adversary",
    standard_adversary_suite(seed=31),
    ids=lambda adv: adv.describe(),
)
def test_pi_z_under_adversary(benchmark, adversary):
    m = run_measured(
        benchmark, "F3", adversary.describe(), lambda: run_under(adversary)
    )
    assert m.bits > 0


def test_adversary_cannot_inflate_honest_bits(benchmark):
    """Worst adversary / passive baseline bit ratio stays constant."""

    def battery():
        baseline = run_under(None)
        worst = max(
            (run_under(adv) for adv in standard_adversary_suite(seed=31)),
            key=lambda m: m.bits,
        )
        return baseline, worst

    baseline, worst = benchmark.pedantic(battery, rounds=1, iterations=1)
    ratio = worst.bits / baseline.bits
    benchmark.extra_info["worst_over_passive"] = round(ratio, 2)
    record("F3", "passive baseline", baseline)
    record("F3", "worst adversary", worst)
    # Byzantine behaviour may change the FindPrefix path (bottom vs
    # agree), shifting cost by small constants -- never by factors of n.
    assert ratio < 3.0
