"""F2 -- ablations on the paper's design choices.

1. **Bit vs block granularity** (Section 4's motivation): for long
   inputs the block search needs ``O(log n)`` instead of ``O(log l)``
   ``PI_lBA+`` iterations, cutting rounds and the per-iteration additive
   ``kappa n^2 log n`` overhead.
2. **Security parameter**: the additive term scales with ``kappa``; the
   payload term does not.
3. **Workload spread**: identical inputs short-circuit (FindPrefix
   agrees everywhere, no GetOutput), clustered inputs sit in between,
   fully spread inputs are the adversarial-ish worst case.
"""

from __future__ import annotations

import pytest

from repro.analysis import measure

from conftest import measure_grid, record, run_measured

N, T = 7, 2
ELL = 12544  # multiple of n^2 = 49, comfortably "very long"


def test_bit_vs_block_granularity(benchmark):
    def sweep():
        bits, blocks = measure_grid([
            dict(protocol="fixed_length_ca", n=N, t=T, ell=ELL,
                 seed=6, spread="clustered"),
            dict(protocol="fixed_length_ca_blocks", n=N, t=T, ell=ELL,
                 seed=6, spread="clustered"),
        ])
        return {"bits": bits, "blocks": blocks}

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("F2", "granularity=bit", ms["bits"])
    record("F2", "granularity=block", ms["blocks"])
    # Section 4's point: fewer iterations -> fewer rounds for long inputs.
    assert ms["blocks"].rounds < ms["bits"].rounds
    benchmark.extra_info["rounds_bit"] = ms["bits"].rounds
    benchmark.extra_info["rounds_block"] = ms["blocks"].rounds


@pytest.mark.parametrize("kappa", [64, 128, 256])
def test_kappa_scaling(benchmark, kappa):
    m = run_measured(
        benchmark,
        "F2",
        f"kappa={kappa}",
        lambda: measure(
            "pi_z", N, T, 1024, kappa=kappa, seed=6, spread="clustered"
        ),
    )
    assert m.bits > 0


def test_kappa_hits_additive_term_only(benchmark):
    """Quadrupling kappa must not quadruple the l-dependent cost."""

    def sweep():
        return measure_grid([
            dict(protocol="pi_z", n=N, t=T, ell=32768, kappa=k,
                 seed=6, spread="clustered")
            for k in (64, 256)
        ])

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratio = large.bits / small.bits
    benchmark.extra_info["kappa_4x_bits_ratio"] = round(ratio, 2)
    assert ratio < 3.0  # far below 4x: the l*n term is kappa-free


@pytest.mark.parametrize("spread", ["identical", "clustered", "spread"])
def test_workload_spread(benchmark, spread):
    m = run_measured(
        benchmark,
        "F2",
        f"spread={spread}",
        lambda: measure("pi_z", N, T, 4096, seed=6, spread=spread),
    )
    assert m.bits > 0
