"""F5 -- the open-problem setting: CA with ``t < n/2`` under setup.

Section 8 asks whether communication-optimal CA extends to ``t < n/2``
with cryptographic setup.  We measure the feasibility-grade protocol
(Dolev-Strong views + adaptive trimming, :mod:`repro.authenticated`):

* it tolerates a full minority (configs with ``n/3 <= t < n/2`` that
  the plain-model stack provably rejects),
* its communication is far from the plain-model optimum -- quantifying
  the gap the open problem asks to close.
"""

from __future__ import annotations

import pytest

from repro.analysis import Measurement
from repro.authenticated import authenticated_ca
from repro.core.protocol_z import protocol_z
from repro.crypto.signatures import SignatureScheme
from repro.sim import run_protocol

from conftest import record, run_measured

KAPPA = 128
CONFIGS = [(3, 1), (5, 2), (7, 3), (9, 4)]


def run_auth_ca(n: int, t: int, ell: int) -> Measurement:
    scheme = SignatureScheme(KAPPA, n, seed=b"bench")
    base = 1 << (ell - 1)
    inputs = [base + 17 * i for i in range(n)]
    result = run_protocol(
        lambda ctx, v: authenticated_ca(ctx, v, scheme),
        inputs, n=n, t=t, kappa=KAPPA,
    )
    out = result.common_output()
    honest = [inputs[p] for p in range(n) if p not in result.corrupted]
    assert min(honest) <= out <= max(honest)
    return Measurement(
        protocol="authenticated_ca",
        n=n,
        t=t,
        ell=ell,
        kappa=KAPPA,
        bits=result.stats.honest_bits,
        rounds=result.stats.rounds,
        messages=result.stats.honest_messages,
        output=out,
    )


@pytest.mark.parametrize("n,t", CONFIGS)
def test_auth_ca_minority_configs(benchmark, n, t):
    m = run_measured(
        benchmark, "F5", f"n={n},t={t}", lambda: run_auth_ca(n, t, 1024)
    )
    # exactly n Dolev-Strong instances of t+1 rounds each:
    assert m.rounds == n * (t + 1)


@pytest.mark.parametrize("ell", [256, 4096])
def test_auth_ca_vs_ell(benchmark, ell):
    m = run_measured(
        benchmark, "F5", f"ell={ell}", lambda: run_auth_ca(7, 3, ell)
    )
    assert m.bits > 0


def test_gap_to_plain_model_optimum(benchmark):
    """The open problem, quantified: at equal (n, ell) the t < n/2
    protocol pays a large factor over the paper's t < n/3 protocol."""
    ell = 4096

    def sweep():
        # Stays serial: the plain-model half below closes over a local
        # protocol lambda, which the engine's by-name worker transport
        # cannot ship.  Two cases; nothing to win from a pool anyway.
        auth = run_auth_ca(7, 3, ell)
        base = 1 << (ell - 1)
        inputs = [base + 17 * i for i in range(7)]
        plain = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, n=7, t=2,
            kappa=KAPPA,
        )
        return auth, plain

    auth, plain = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "F5",
        "plain-model pi_z (t=2)",
        Measurement(
            protocol="pi_z",
            n=7,
            t=2,
            ell=ell,
            kappa=KAPPA,
            bits=plain.stats.honest_bits,
            rounds=plain.stats.rounds,
            messages=plain.stats.honest_messages,
            output=plain.common_output(),
        ),
    )
    ratio = auth.bits / plain.stats.honest_bits
    benchmark.extra_info["auth_over_plain_bits"] = round(ratio, 1)
    assert ratio > 2, "the feasibility protocol should be clearly costlier"
