"""F6 -- the asynchronous setting (Section 8's future-work axis).

Measures asynchronous Approximate Agreement at the paper's conjectured
``t < n/5`` resilience over Bracha reliable broadcast, under three
delivery schedules (friendly FIFO, chaotic random, targeted delay).

Checks: eps-agreement + validity in every cell; cost grows linearly in
the iteration count ``log(range/eps)``; the adversarial scheduler does
not change the communication-order of magnitude (message complexity is
schedule-independent, only latency would differ on a real network).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis import Measurement
from repro.asynchrony import (
    AsyncApproximateAgreement,
    AsyncNetwork,
    FifoScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
)

from conftest import fan_out, record, run_measured

N, T = 6, 1
BOUND = 1 << 16

SCHEDULERS = {
    "fifo": lambda: FifoScheduler(),
    "random": lambda: RandomScheduler(seed=29),
    "delay0": lambda: TargetedDelayScheduler({0}, seed=29),
}


def run_async_aa(eps_exponent: int, scheduler_name: str) -> Measurement:
    epsilon = Fraction(2) ** eps_exponent
    inputs = [100 * i for i in range(N)]

    net = AsyncNetwork(
        lambda ctx: AsyncApproximateAgreement(
            ctx, inputs[ctx.party_id], epsilon, BOUND
        ),
        n=N,
        t=T,
        scheduler=SCHEDULERS[scheduler_name](),
    )
    result = net.run()
    honest = [p for p in range(N) if p not in result.corrupted]
    outputs = [result.outputs[p] for p in honest]
    lo = min(inputs[p] for p in honest)
    hi = max(inputs[p] for p in honest)
    assert all(lo <= out <= hi for out in outputs)
    assert max(outputs) - min(outputs) <= epsilon
    return Measurement(
        protocol=f"async_aa[{scheduler_name}]",
        n=N,
        t=T,
        ell=BOUND.bit_length(),
        kappa=128,
        bits=result.stats.honest_bits,
        rounds=result.deliveries,
        messages=result.stats.honest_messages,
        output=float(max(outputs) - min(outputs)),
    )


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_async_aa_schedulers(benchmark, scheduler_name):
    m = run_measured(
        benchmark,
        "F6",
        f"sched={scheduler_name}",
        lambda: run_async_aa(0, scheduler_name),
    )
    assert m.bits > 0


@pytest.mark.parametrize("eps_exponent", [8, 0, -8])
def test_async_aa_vs_eps(benchmark, eps_exponent):
    m = run_measured(
        benchmark,
        "F6",
        f"eps=2^{eps_exponent}",
        lambda: run_async_aa(eps_exponent, "random"),
    )
    assert m.bits > 0


def test_cost_linear_in_iterations(benchmark):
    def sweep():
        return fan_out(run_async_aa, [(e, "fifo") for e in (8, 0, -8)])

    coarse, mid, fine = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # each 256x precision gain adds 8 iterations at fixed per-iteration
    # cost (n RBC instances of O(n^2) kappa-free messages).
    step1 = mid.bits - coarse.bits
    step2 = fine.bits - mid.bits
    benchmark.extra_info["bits_per_8_iterations"] = step2
    assert step1 > 0 and step2 > 0
    assert step2 < 2.5 * step1


def test_schedule_independence_of_message_complexity(benchmark):
    def sweep():
        names = list(SCHEDULERS)
        results = fan_out(run_async_aa, [(0, name) for name in names])
        return dict(zip(names, results))

    ms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, m in ms.items():
        record("F6", f"msg-complexity {name}", m)
    bits = [m.bits for m in ms.values()]
    assert max(bits) <= 1.5 * min(bits)
