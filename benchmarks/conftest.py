"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (T1-T6, F1-F3).  pytest-benchmark provides wall
-clock timing; the quantities the paper actually bounds -- honest bits
and rounds -- are attached as ``extra_info`` on each benchmark record
and printed as plain-text tables at the end of the session.

Run with::

    pytest benchmarks/ --benchmark-only
    BENCH_WORKERS=auto pytest benchmarks/ --benchmark-only   # parallel

Multi-point sweeps inside a benchmark go through the shared
:func:`measure_grid`/:func:`fan_out` harness, which dispatches grid
points over the process-pool engine (:mod:`repro.sim.parallel`).  The
``BENCH_WORKERS`` environment variable picks the worker count (default
``1`` = serial; ``auto`` = all cpus); by the engine's determinism
contract the recorded bits/rounds are identical either way -- only the
wall clock changes.

Scale note: parameters are chosen so the full suite completes in a few
minutes on a laptop while still spanning enough of each sweep for the
scaling exponents to be visible.  EXPERIMENTS.md records a reference
run.
"""

from __future__ import annotations

import importlib
import os
from collections import defaultdict
from typing import Callable, Sequence

import pytest

from repro.analysis import Measurement, format_table
from repro.analysis.experiments import measure_case
from repro.sim.parallel import resolve_workers, run_many

#: worker processes for in-benchmark sweeps (``BENCH_WORKERS`` env var).
WORKERS = resolve_workers(os.environ.get("BENCH_WORKERS", "1"))

#: module-level registry: experiment id -> list of (label, Measurement)
_RESULTS: dict[str, list[tuple[str, Measurement]]] = defaultdict(list)


def _invoke_case(case: tuple) -> object:
    """Engine entry point: resolve ``(module, fn, args)`` and call it."""
    module_name, fn_name, args = case
    fn = getattr(importlib.import_module(module_name), fn_name)
    return fn(*args)


def _collect(outcomes):
    bad = [o for o in outcomes if not o.ok]
    if bad:
        raise RuntimeError(
            f"{len(bad)} sweep case(s) failed; first: {bad[0].error}"
        )
    return [o.value for o in outcomes]


def measure_grid(
    jobs: Sequence[dict], workers: int | str | None = None
) -> list[Measurement]:
    """Run :func:`repro.analysis.measure` grid points via the engine.

    ``jobs`` are ``measure()`` keyword dicts; results come back in job
    order and are identical to a serial loop (each point is a pure
    function of its parameters).
    """
    outcomes = run_many(measure_case, list(jobs), workers=workers or WORKERS)
    return _collect(outcomes)


def fan_out(
    fn: Callable,
    calls: Sequence[tuple],
    workers: int | str | None = None,
) -> list:
    """Run ``fn(*args)`` for every args-tuple in ``calls`` via the engine.

    ``fn`` must be module-level (workers resolve it by module + name);
    use this for the custom per-benchmark runners that are not plain
    ``measure()`` calls.
    """
    payloads = [
        (fn.__module__, fn.__name__, tuple(args)) for args in calls
    ]
    outcomes = run_many(_invoke_case, payloads, workers=workers or WORKERS)
    return _collect(outcomes)


def record(experiment: str, label: str, measurement: Measurement) -> None:
    """Register a measurement for the end-of-session experiment tables."""
    _RESULTS[experiment].append((label, measurement))


def attach(benchmark, measurement: Measurement) -> None:
    """Attach the paper's metrics to a pytest-benchmark record."""
    benchmark.extra_info["protocol"] = measurement.protocol
    benchmark.extra_info["n"] = measurement.n
    benchmark.extra_info["t"] = measurement.t
    benchmark.extra_info["ell"] = measurement.ell
    benchmark.extra_info["honest_bits"] = measurement.bits
    benchmark.extra_info["rounds"] = measurement.rounds


def run_measured(benchmark, experiment: str, label: str, fn) -> Measurement:
    """Benchmark ``fn`` once and register its measurement."""
    measurement = benchmark.pedantic(fn, rounds=1, iterations=1)
    attach(benchmark, measurement)
    record(experiment, label, measurement)
    return measurement


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    """Print the per-experiment tables after the benchmark session."""
    if not _RESULTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "experiment tables (paper metrics: bits & rounds)")
    for experiment in sorted(_RESULTS):
        rows = [
            [
                label,
                m.protocol,
                m.n,
                m.ell,
                m.bits,
                round(m.bits_per_party),
                m.rounds,
            ]
            for label, m in _RESULTS[experiment]
        ]
        tr.write_line("")
        tr.write_line(
            format_table(
                ["case", "protocol", "n", "ell", "bits", "bits/party",
                 "rounds"],
                rows,
                title=f"[{experiment}]",
            )
        )
