"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (T1-T6, F1-F3).  pytest-benchmark provides wall
-clock timing; the quantities the paper actually bounds -- honest bits
and rounds -- are attached as ``extra_info`` on each benchmark record
and printed as plain-text tables at the end of the session.

Run with::

    pytest benchmarks/ --benchmark-only

Scale note: parameters are chosen so the full suite completes in a few
minutes on a laptop while still spanning enough of each sweep for the
scaling exponents to be visible.  EXPERIMENTS.md records a reference
run.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.analysis import Measurement, format_table

#: module-level registry: experiment id -> list of (label, Measurement)
_RESULTS: dict[str, list[tuple[str, Measurement]]] = defaultdict(list)


def record(experiment: str, label: str, measurement: Measurement) -> None:
    """Register a measurement for the end-of-session experiment tables."""
    _RESULTS[experiment].append((label, measurement))


def attach(benchmark, measurement: Measurement) -> None:
    """Attach the paper's metrics to a pytest-benchmark record."""
    benchmark.extra_info["protocol"] = measurement.protocol
    benchmark.extra_info["n"] = measurement.n
    benchmark.extra_info["t"] = measurement.t
    benchmark.extra_info["ell"] = measurement.ell
    benchmark.extra_info["honest_bits"] = measurement.bits
    benchmark.extra_info["rounds"] = measurement.rounds


def run_measured(benchmark, experiment: str, label: str, fn) -> Measurement:
    """Benchmark ``fn`` once and register its measurement."""
    measurement = benchmark.pedantic(fn, rounds=1, iterations=1)
    attach(benchmark, measurement)
    record(experiment, label, measurement)
    return measurement


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    """Print the per-experiment tables after the benchmark session."""
    if not _RESULTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "experiment tables (paper metrics: bits & rounds)")
    for experiment in sorted(_RESULTS):
        rows = [
            [
                label,
                m.protocol,
                m.n,
                m.ell,
                m.bits,
                round(m.bits_per_party),
                m.rounds,
            ]
            for label, m in _RESULTS[experiment]
        ]
        tr.write_line("")
        tr.write_line(
            format_table(
                ["case", "protocol", "n", "ell", "bits", "bits/party",
                 "rounds"],
                rows,
                title=f"[{experiment}]",
            )
        )
