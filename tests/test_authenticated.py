"""Authenticated-setting tests: signatures, Dolev-Strong, t < n/2 CA."""

from __future__ import annotations

import pytest

from repro.authenticated import (
    authenticated_ca,
    dolev_strong_broadcast,
    signed_payload,
)
from repro.crypto.signatures import SignatureScheme
from repro.sim import (
    Adversary,
    Context,
    CrashAdversary,
    RandomGarbageAdversary,
    run_protocol,
)

from conftest import adversary_params, assert_convex

KAPPA = 64

#: honest-minority-tolerating configurations: t < n/2 but t >= n/3.
MINORITY_CONFIGS = [(3, 1), (5, 2), (7, 3), (9, 4)]


def make_scheme(n: int, seed: bytes = b"test-seed") -> SignatureScheme:
    return SignatureScheme(KAPPA, n, seed=seed)


class TestSignatureScheme:
    def test_sign_verify_roundtrip(self):
        scheme = make_scheme(4)
        sig = scheme.sign(2, b"message")
        assert scheme.verify(2, b"message", sig)

    def test_wrong_signer_rejected(self):
        scheme = make_scheme(4)
        sig = scheme.sign(2, b"message")
        assert not scheme.verify(1, b"message", sig)

    def test_wrong_message_rejected(self):
        scheme = make_scheme(4)
        sig = scheme.sign(2, b"message")
        assert not scheme.verify(2, b"other", sig)

    def test_junk_never_raises(self):
        scheme = make_scheme(4)
        assert not scheme.verify(2, b"m", None)
        assert not scheme.verify(2, b"m", "sig")
        assert not scheme.verify("x", b"m", b"sig")
        assert not scheme.verify(99, b"m", b"sig")
        assert not scheme.verify(2, 42, b"sig")

    def test_signatures_are_kappa_bits(self):
        scheme = make_scheme(4)
        assert len(scheme.sign(0, b"m")) * 8 == KAPPA

    def test_different_seeds_different_signatures(self):
        a = SignatureScheme(KAPPA, 4, seed=b"a")
        b = SignatureScheme(KAPPA, 4, seed=b"b")
        assert a.sign(0, b"m") != b.sign(0, b"m")

    def test_signer_range_enforced(self):
        scheme = make_scheme(4)
        with pytest.raises(ValueError):
            scheme.sign(4, b"m")

    def test_restricted_signer(self):
        scheme = make_scheme(4)
        restricted = scheme.for_adversary({3})
        assert scheme.verify(3, b"m", restricted.sign(3, b"m"))
        with pytest.raises(PermissionError):
            restricted.sign(0, b"m")

    def test_instance_framing(self):
        assert signed_payload("a/b", b"v") != signed_payload("a/c", b"v")


def ds_factory(sender, scheme):
    def factory(ctx, v):
        return dolev_strong_broadcast(
            ctx, sender, v if ctx.party_id == sender else None, scheme
        )

    return factory


class TestDolevStrong:
    @pytest.mark.parametrize("n,t", MINORITY_CONFIGS)
    def test_honest_sender_delivery(self, n, t):
        scheme = make_scheme(n)
        result = run_protocol(
            ds_factory(0, scheme), [b"payload"] * n, n, t, kappa=KAPPA
        )
        assert result.common_output() == b"payload"

    def test_exact_round_count(self):
        n, t = 5, 2
        scheme = make_scheme(n)
        result = run_protocol(
            ds_factory(0, scheme), [b"x"] * n, n, t, kappa=KAPPA
        )
        assert result.stats.rounds == t + 1

    def test_silent_byzantine_sender_gives_bottom(self):
        n, t = 5, 2
        scheme = make_scheme(n)
        # default corruption = last t parties; sender 4 corrupted + silent
        result = run_protocol(
            ds_factory(4, scheme), [b"x"] * n, n, t, kappa=KAPPA,
            adversary=CrashAdversary(0),
        )
        assert result.common_output() is None

    def test_garbage_resistant(self):
        n, t = 5, 2
        scheme = make_scheme(n)
        result = run_protocol(
            ds_factory(0, scheme), [b"real"] * n, n, t, kappa=KAPPA,
            adversary=RandomGarbageAdversary(7),
        )
        assert result.common_output() == b"real"

    def test_unforgeability_no_sender_signature_no_delivery(self):
        """Corrupted non-sender parties cannot fabricate a broadcast:
        they lack the (honest, silent-in-this-instance) sender's key."""
        n, t = 5, 2

        class Fabricator(Adversary):
            def __init__(self, scheme):
                super().__init__()
                self.signer = scheme.for_adversary({3, 4})

            def deliver(self, view):
                out = {}
                payload = signed_payload("ds", b"forged")
                chain = tuple(
                    (i, self.signer.sign(i, payload)) for i in (3, 4)
                )
                for src in view.corrupted:
                    for dst in range(view.n):
                        out[(src, dst)] = [(b"forged", chain)]
                return out

        scheme = make_scheme(n)
        # sender 0 is honest but broadcasts nothing in this test: model
        # that by making every party a non-sender (sender input unused).
        result = run_protocol(
            lambda ctx, v: dolev_strong_broadcast(
                ctx, 0, b"real" if ctx.party_id == 0 else None, scheme
            ),
            [b""] * n, n, t, kappa=KAPPA, adversary=Fabricator(scheme),
        )
        # chain lacks the sender's signature as first link -> rejected;
        # the real broadcast still delivers.
        assert result.common_output() == b"real"

    def test_equivocating_corrupted_sender_agreement(self):
        """A corrupted sender signs two values and targets two halves;
        honest parties must still agree (on either value or bottom)."""
        n, t = 5, 2

        class Equivocator(Adversary):
            def __init__(self, scheme):
                super().__init__()
                self.signer = scheme.for_adversary({4})

            def deliver(self, view):
                out = {}
                if view.round_index == 0:
                    for dst in range(view.n):
                        value = b"AAA" if dst < view.n // 2 else b"BBB"
                        payload = signed_payload("ds", value)
                        chain = ((4, self.signer.sign(4, payload)),)
                        out[(4, dst)] = [(value, chain)]
                return out

        scheme = make_scheme(n)
        result = run_protocol(
            lambda ctx, v: dolev_strong_broadcast(
                ctx, 4, None if ctx.party_id != 4 else b"AAA", scheme
            ),
            [b""] * n, n, t, kappa=KAPPA, adversary=Equivocator(scheme),
        )
        assert result.common_output() is None  # both values detected

    def test_replay_across_instances_rejected(self):
        """A chain signed for instance bb0 must not validate in bb1."""
        n, t = 5, 2
        scheme = make_scheme(n)

        class Replayer(Adversary):
            def __init__(self):
                super().__init__()
                self.captured = None

            def deliver(self, view):
                out = {}
                # capture the honest sender's round-1 message of bb0
                for (src, dst), msg in view.honest_outgoing.items():
                    if src == 0 and isinstance(msg, list) and msg:
                        self.captured = msg[0]
                # replay it into the current instance from party 4
                if self.captured is not None:
                    for dst in range(view.n):
                        out[(4, dst)] = [self.captured]
                return out

        def two_instances(ctx, v):
            first = yield from dolev_strong_broadcast(
                ctx, 0, b"first" if ctx.party_id == 0 else None, scheme,
                channel="bb0",
            )
            second = yield from dolev_strong_broadcast(
                ctx, 4, None, scheme, channel="bb1",
            )
            return (first, second)

        result = run_protocol(
            two_instances, [b""] * n, n, t, kappa=KAPPA,
            adversary=Replayer(),
        )
        first, second = result.common_output()
        assert first == b"first"
        assert second is None  # replayed bb0 chain rejected in bb1


class TestAuthenticatedCA:
    @pytest.mark.parametrize("n,t", MINORITY_CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_beyond_one_third(self, n, t, adversary):
        scheme = make_scheme(n)
        inputs = [100 + 3 * i for i in range(n)]
        result = run_protocol(
            lambda ctx, v: authenticated_ca(ctx, v, scheme),
            inputs, n, t, kappa=KAPPA, adversary=adversary,
        )
        assert_convex(inputs, result)

    def test_unanimous(self):
        n, t = 5, 2
        scheme = make_scheme(n)
        result = run_protocol(
            lambda ctx, v: authenticated_ca(ctx, v, scheme),
            [42] * n, n, t, kappa=KAPPA,
        )
        assert result.common_output() == 42

    def test_negative_inputs(self):
        n, t = 5, 2
        scheme = make_scheme(n)
        inputs = [-10, -20, -30, -40, -50]
        result = run_protocol(
            lambda ctx, v: authenticated_ca(ctx, v, scheme),
            inputs, n, t, kappa=KAPPA,
        )
        assert_convex(inputs, result)

    def test_all_byzantine_abstain_minimal_view(self):
        """With n = 2t+1 and all byzantine senders silent, the view has
        exactly t+1 honest values and trimming adapts to zero."""
        n, t = 5, 2
        scheme = make_scheme(n)
        inputs = [10, 20, 30, 40, 50]
        result = run_protocol(
            lambda ctx, v: authenticated_ca(ctx, v, scheme),
            inputs, n, t, kappa=KAPPA, adversary=CrashAdversary(0),
        )
        # honest values 10, 20, 30 -> median 20
        assert result.common_output() == 20

    def test_resilience_bound(self):
        scheme = make_scheme(4)
        ctx = Context(party_id=0, n=4, t=2, kappa=KAPPA)
        gen = authenticated_ca(ctx, 1, scheme)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            next(gen)

    def test_one_third_protocols_reject_minority_configs(self):
        """The plain-model stack must refuse n=5, t=2 (t >= n/3)."""
        from repro.core.protocol_z import protocol_z
        from repro.errors import ConfigurationError

        ctx = Context(party_id=0, n=5, t=2, kappa=KAPPA)
        with pytest.raises(ConfigurationError):
            next(protocol_z(ctx, 1))
