"""Asynchronous substrate tests: scheduler, Bracha RBC, async AA."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.asynchrony import (
    AsyncAdversary,
    AsyncApproximateAgreement,
    AsyncContext,
    AsyncNetwork,
    AsyncParty,
    BrachaRBC,
    FifoScheduler,
    RandomScheduler,
    TargetedDelayScheduler,
    rbc_message,
)
from repro.asynchrony.network import GarbageAsyncAdversary
from repro.errors import ConfigurationError


# ---------------------------------------------------------------------------
# plumbing: a trivial flood-and-decide protocol
# ---------------------------------------------------------------------------


class EchoOnce(AsyncParty):
    """Broadcast the input; decide on the first message received."""

    def __init__(self, ctx, value):
        super().__init__(ctx)
        self.value = value

    def start(self):
        self.api.broadcast(("HELLO", self.value))

    def on_message(self, src, payload):
        if isinstance(payload, tuple) and payload and payload[0] == "HELLO":
            self.api.decide(payload[1])


SCHEDULERS = [
    FifoScheduler(),
    RandomScheduler(seed=3),
    TargetedDelayScheduler({0}, seed=3),
]


class TestAsyncNetwork:
    @pytest.mark.parametrize(
        "scheduler", SCHEDULERS, ids=lambda s: s.describe()
    )
    def test_delivery_and_decision(self, scheduler):
        net = AsyncNetwork(
            lambda ctx: EchoOnce(ctx, ctx.party_id),
            n=4, t=1, scheduler=scheduler,
        )
        result = net.run()
        assert set(result.outputs) == {0, 1, 2}

    def test_bits_accounted(self):
        net = AsyncNetwork(lambda ctx: EchoOnce(ctx, 255), n=4, t=1)
        result = net.run()
        # 3 honest parties broadcast ("HELLO", 255): 4 dests each.
        assert result.stats.honest_bits == 3 * 4 * (8 + 8)

    def test_deadlock_detected(self):
        class Mute(AsyncParty):
            def start(self):
                pass

            def on_message(self, src, payload):
                pass

        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            AsyncNetwork(lambda ctx: Mute(ctx), n=4, t=1).run()

    def test_injection_budget_respected(self):
        class Flooder(AsyncAdversary):
            def inject(self, step, corrupted, n, observed):
                return [(src, 0, "spam") for src in corrupted]

        net = AsyncNetwork(
            lambda ctx: EchoOnce(ctx, 1), n=4, t=1,
            adversary=Flooder(budget=10),
        )
        result = net.run()
        assert set(result.outputs) == {0, 1, 2}

    def test_context_validation(self):
        with pytest.raises(ConfigurationError):
            AsyncContext(party_id=0, n=4, t=4)
        ctx = AsyncContext(party_id=0, n=6, t=1)
        ctx.require_resilience(5)
        with pytest.raises(ConfigurationError):
            AsyncContext(party_id=0, n=5, t=1).require_resilience(5)


# ---------------------------------------------------------------------------
# Bracha RBC
# ---------------------------------------------------------------------------


class RbcHarness(AsyncParty):
    """Runs one RBC instance and decides on delivery."""

    def __init__(self, ctx, value, sender=0):
        super().__init__(ctx)
        self.value = value
        self.sender = sender
        self.rbc = None

    def start(self):
        self.rbc = BrachaRBC(
            self.ctx, "test", self.sender, self.api.send,
            on_deliver=self.api.decide,
        )
        if self.ctx.party_id == self.sender:
            self.rbc.broadcast(self.value)

    def on_message(self, src, payload):
        from repro.asynchrony import parse_rbc

        parsed = parse_rbc(payload)
        if parsed and parsed[0] == "test":
            self.rbc.handle(src, parsed[1], parsed[2])


class TestBrachaRBC:
    @pytest.mark.parametrize(
        "scheduler", SCHEDULERS, ids=lambda s: s.describe()
    )
    def test_validity_honest_sender(self, scheduler):
        net = AsyncNetwork(
            lambda ctx: RbcHarness(ctx, "payload"), n=4, t=1,
            scheduler=scheduler,
        )
        result = net.run()
        assert all(v == "payload" for v in result.outputs.values())
        assert len(result.outputs) == 3

    def test_validity_larger_network(self):
        net = AsyncNetwork(
            lambda ctx: RbcHarness(ctx, 12345), n=7, t=2,
            scheduler=RandomScheduler(1),
        )
        result = net.run()
        assert all(v == 12345 for v in result.outputs.values())

    def test_consistency_under_equivocation(self):
        """A byzantine sender INITs different values to the two halves;
        honest parties that deliver must deliver the SAME value."""

        class EquivocatingSender(AsyncAdversary):
            def inject(self, step, corrupted, n, observed):
                if step > 0:
                    return []
                out = []
                for dst in range(n):
                    value = "AAA" if dst < n // 2 else "BBB"
                    out.append((3, dst, rbc_message("test", "INIT", value)))
                return out

        net = AsyncNetwork(
            lambda ctx: RbcHarness(ctx, None, sender=3), n=4, t=1,
            adversary=EquivocatingSender(),
            scheduler=RandomScheduler(5),
        )
        # deliveries may or may not happen; if the run deadlocks because
        # nobody delivers, that's allowed for a byzantine sender.
        try:
            result = net.run()
        except Exception:
            return
        delivered = set(result.outputs.values())
        assert len(delivered) <= 1

    def test_garbage_does_not_break_delivery(self):
        net = AsyncNetwork(
            lambda ctx: RbcHarness(ctx, b"solid"), n=4, t=1,
            adversary=GarbageAsyncAdversary(budget=50),
            scheduler=RandomScheduler(7),
        )
        result = net.run()
        assert all(v == b"solid" for v in result.outputs.values())

    def test_validator_filters_values(self):
        class ValidatingHarness(RbcHarness):
            def start(self):
                self.rbc = BrachaRBC(
                    self.ctx, "test", 0, self.api.send,
                    on_deliver=self.api.decide,
                    validate=lambda v: isinstance(v, int),
                )
                if self.ctx.party_id == 0:
                    self.rbc.broadcast(777)

        net = AsyncNetwork(lambda ctx: ValidatingHarness(ctx, 777), n=4, t=1)
        result = net.run()
        assert all(v == 777 for v in result.outputs.values())

    def test_only_sender_may_broadcast(self):
        ctx = AsyncContext(party_id=1, n=4, t=1)
        rbc = BrachaRBC(ctx, "x", 0, lambda d, p: None, lambda v: None)
        with pytest.raises(ValueError):
            rbc.broadcast("value")

    def test_requires_one_third(self):
        ctx = AsyncContext(party_id=0, n=3, t=1)
        with pytest.raises(ConfigurationError):
            BrachaRBC(ctx, "x", 0, lambda d, p: None, lambda v: None)


# ---------------------------------------------------------------------------
# Asynchronous Approximate Agreement (t < n/5)
# ---------------------------------------------------------------------------

BOUND = 1 << 16


def aa_factory(inputs, epsilon):
    def factory(ctx):
        return AsyncApproximateAgreement(
            ctx, inputs[ctx.party_id], epsilon, BOUND
        )

    return factory


def check_async_aa(inputs, result, epsilon):
    honest = [p for p in range(len(inputs)) if p not in result.corrupted]
    outputs = [result.outputs[p] for p in honest]
    lo = min(inputs[p] for p in honest)
    hi = max(inputs[p] for p in honest)
    for out in outputs:
        assert lo <= out <= hi, f"{out} outside [{lo}, {hi}]"
    spread = max(outputs) - min(outputs)
    assert spread <= epsilon, f"spread {spread} > {epsilon}"


class TestAsyncAA:
    @pytest.mark.parametrize(
        "scheduler", SCHEDULERS, ids=lambda s: s.describe()
    )
    def test_eps_agreement_n6_t1(self, scheduler):
        inputs = [0, 100, 200, 300, 400, 500]
        net = AsyncNetwork(
            aa_factory(inputs, 1), n=6, t=1, scheduler=scheduler,
        )
        result = net.run()
        check_async_aa(inputs, result, 1)

    def test_eps_agreement_n11_t2(self):
        inputs = [37 * i for i in range(11)]
        net = AsyncNetwork(
            aa_factory(inputs, 2), n=11, t=2,
            scheduler=RandomScheduler(13),
        )
        result = net.run()
        check_async_aa(inputs, result, 2)

    def test_fine_epsilon(self):
        inputs = [0, 64, 128, 192, 256, 320]
        eps = Fraction(1, 16)
        net = AsyncNetwork(
            aa_factory(inputs, eps), n=6, t=1,
            scheduler=RandomScheduler(17),
        )
        result = net.run()
        check_async_aa(inputs, result, eps)

    def test_unanimous(self):
        inputs = [500] * 6
        net = AsyncNetwork(aa_factory(inputs, 1), n=6, t=1)
        result = net.run()
        assert all(v == 500 for v in result.outputs.values())

    def test_garbage_adversary(self):
        inputs = [10 * i for i in range(6)]
        net = AsyncNetwork(
            aa_factory(inputs, 1), n=6, t=1,
            adversary=GarbageAsyncAdversary(budget=100, seed=3),
            scheduler=RandomScheduler(19),
        )
        result = net.run()
        check_async_aa(inputs, result, 1)

    def test_byzantine_extreme_values(self):
        """Corrupted parties RBC extreme (but consistent) values each
        iteration; validity and eps-agreement must survive."""

        class ExtremeInjector(AsyncAdversary):
            def inject(self, step, corrupted, n, observed):
                if step % 7 or step > 600:
                    return []
                out = []
                for src in corrupted:
                    for iteration in range(3):
                        tag = f"it{iteration}/s{src}"
                        for dst in range(n):
                            out.append(
                                (src, dst,
                                 rbc_message(tag, "INIT", BOUND))
                            )
                return out

        inputs = [100, 120, 140, 160, 180, 200]
        net = AsyncNetwork(
            aa_factory(inputs, 1), n=6, t=1,
            adversary=ExtremeInjector(budget=3000, seed=5),
            scheduler=RandomScheduler(23),
        )
        result = net.run()
        check_async_aa(inputs, result, 1)

    def test_requires_one_fifth(self):
        ctx = AsyncContext(party_id=0, n=5, t=1)
        with pytest.raises(ConfigurationError):
            AsyncApproximateAgreement(ctx, 0, 1, BOUND)

    def test_input_bound_enforced(self):
        ctx = AsyncContext(party_id=0, n=6, t=1)
        with pytest.raises(ConfigurationError):
            AsyncApproximateAgreement(ctx, BOUND + 1, 1, BOUND)

    def test_zero_iterations(self):
        inputs = [1, 2, 3, 4, 5, 6]
        net = AsyncNetwork(
            aa_factory(inputs, 10 * BOUND), n=6, t=1
        )
        result = net.run()
        # eps larger than the whole range: parties decide immediately.
        for p, out in result.outputs.items():
            assert out == inputs[p]
