"""Hashing and Merkle accumulator tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import digest_size_bytes, hash_bytes, hash_parts
from repro.crypto.merkle import MerkleWitness, build, verify, witness_bits


class TestHashing:
    def test_digest_size(self):
        assert len(hash_bytes(128, b"x")) == 16
        assert len(hash_bytes(64, b"x")) == 8
        assert len(hash_bytes(256, b"x")) == 32

    def test_digest_size_bytes_validation(self):
        for bad in (0, 7, 12, 264, -8):
            with pytest.raises(ValueError):
                digest_size_bytes(bad)

    def test_deterministic(self):
        assert hash_bytes(128, b"abc") == hash_bytes(128, b"abc")

    def test_different_inputs_differ(self):
        assert hash_bytes(128, b"abc") != hash_bytes(128, b"abd")

    def test_framing_removes_concat_ambiguity(self):
        assert hash_parts(128, b"ab", b"c") != hash_parts(128, b"a", b"bc")
        assert hash_parts(128, b"abc") != hash_parts(128, b"ab", b"c")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=40)
    def test_parts_vs_single(self, a, b):
        if (a,) != (a + b,):
            assert hash_parts(64, a, b) != hash_parts(64, a + b) or b == b""


class TestMerkleBuild:
    def test_root_and_witness_count(self):
        leaves = [bytes([i]) * 4 for i in range(7)]
        root, witnesses = build(128, leaves)
        assert len(root) == 16
        assert len(witnesses) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build(128, [])

    def test_single_leaf(self):
        root, witnesses = build(128, [b"only"])
        assert verify(128, root, 0, b"only", witnesses[0])

    def test_deterministic(self):
        leaves = [b"a", b"b", b"c"]
        assert build(128, leaves)[0] == build(128, leaves)[0]

    def test_order_sensitive(self):
        assert build(128, [b"a", b"b"])[0] != build(128, [b"b", b"a"])[0]

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_all_witnesses_verify(self, leaves):
        root, witnesses = build(64, leaves)
        for i, leaf in enumerate(leaves):
            assert verify(64, root, i, leaf, witnesses[i])


class TestMerkleVerify:
    def setup_method(self):
        self.leaves = [bytes([i]) * 8 for i in range(6)]
        self.root, self.witnesses = build(128, self.leaves)

    def test_wrong_leaf_rejected(self):
        assert not verify(128, self.root, 0, b"forged!!", self.witnesses[0])

    def test_wrong_index_rejected(self):
        assert not verify(128, self.root, 1, self.leaves[0], self.witnesses[0])

    def test_wrong_root_rejected(self):
        other_root, _ = build(128, [b"different"])
        assert not verify(
            128, other_root, 0, self.leaves[0], self.witnesses[0]
        )

    def test_swapped_witness_rejected(self):
        assert not verify(
            128, self.root, 0, self.leaves[0], self.witnesses[1]
        )

    def test_leaf_node_confusion_rejected(self):
        # An interior hash presented as a leaf must fail (domain tags).
        fake_leaf = self.witnesses[0].siblings[0]
        truncated = MerkleWitness(
            index=0, siblings=self.witnesses[0].siblings[1:]
        )
        assert not verify(128, self.root, 0, fake_leaf, truncated)

    # -- byzantine-proofing: junk never raises --------------------------
    def test_junk_witness(self):
        assert not verify(128, self.root, 0, self.leaves[0], "junk")
        assert not verify(128, self.root, 0, self.leaves[0], None)
        assert not verify(128, self.root, 0, self.leaves[0], 42)

    def test_junk_root(self):
        assert not verify(128, b"short", 0, self.leaves[0], self.witnesses[0])
        assert not verify(128, None, 0, self.leaves[0], self.witnesses[0])

    def test_junk_index(self):
        assert not verify(128, self.root, -1, self.leaves[0], self.witnesses[0])
        assert not verify(
            128, self.root, "x", self.leaves[0], self.witnesses[0]
        )
        assert not verify(
            128, self.root, 10**6, self.leaves[0], self.witnesses[0]
        )

    def test_junk_leaf(self):
        assert not verify(128, self.root, 0, None, self.witnesses[0])

    def test_malformed_siblings(self):
        bad = MerkleWitness(index=0, siblings=(b"short",))
        assert not verify(128, self.root, 0, self.leaves[0], bad)
        bad = MerkleWitness(index=0, siblings=("notbytes",) * 3)
        assert not verify(128, self.root, 0, self.leaves[0], bad)

    def test_mismatched_witness_index(self):
        bad = MerkleWitness(index=1, siblings=self.witnesses[0].siblings)
        assert not verify(128, self.root, 0, self.leaves[0], bad)


class TestWitnessSize:
    def test_wire_bits_counts_hashes(self):
        leaves = [bytes([i]) for i in range(8)]
        _, witnesses = build(128, leaves)
        # 8 leaves -> depth 3 -> 3 kappa-bit siblings.
        assert witnesses[0].wire_bits() >= 3 * 128

    def test_witness_bits_estimate_upper_bounds(self):
        for count in (1, 2, 3, 5, 8, 13):
            leaves = [bytes([i]) for i in range(count)]
            _, witnesses = build(128, leaves)
            bound = witness_bits(128, count)
            assert all(w.wire_bits() <= bound for w in witnesses)
