"""``HighCostCA`` tests (Appendix A.4, Theorem 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.high_cost_ca import high_cost_ca
from repro.sim import (
    Adversary,
    Context,
    RandomGarbageAdversary,
    ScriptedAdversary,
    run_protocol,
)

from conftest import CONFIGS, adversary_params, assert_convex


def factory(ctx, v):
    return high_cost_ca(ctx, v)


class TestConvexAgreement:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_properties(self, n, t, adversary):
        inputs = [100 + 7 * i for i in range(n)]
        result = run_protocol(factory, inputs, n, t, adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous(self, adversary):
        result = run_protocol(factory, [55] * 7, 7, 2, adversary=adversary)
        assert result.common_output() == 55

    @given(
        st.lists(st.integers(min_value=0, max_value=10**9),
                 min_size=7, max_size=7),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_inputs_random_garbage(self, inputs, seed):
        result = run_protocol(
            factory, inputs, 7, 2,
            adversary=RandomGarbageAdversary(seed),
        )
        assert_convex(inputs, result)

    def test_zero_inputs(self):
        result = run_protocol(factory, [0] * 4, 4, 1)
        assert result.common_output() == 0

    def test_huge_values(self):
        inputs = [2**500 + i for i in range(7)]
        result = run_protocol(factory, inputs, 7, 2)
        assert_convex(inputs, result)

    def test_input_validation(self):
        ctx = Context(party_id=0, n=4, t=1)
        with pytest.raises(ValueError):
            next(high_cost_ca(ctx, -5))
        with pytest.raises(ValueError):
            next(high_cost_ca(ctx, "junk"))


class TestTargetedAttacks:
    def test_byzantine_kings_cannot_break_validity(self):
        """Corrupt the first two kings; validity must survive their
        arbitrary suggestions."""

        class BadKings(Adversary):
            def select_corruptions(self, n, t):
                return {0, 1}

            def mutate(self, view, src, dst, payload):
                if view.channel.endswith("/king"):
                    return 10**15
                return payload

        inputs = [50, 51, 52, 53, 54, 55, 56]
        result = run_protocol(factory, inputs, 7, 2, adversary=BadKings())
        assert_convex(inputs, result)

    def test_lying_intervals_cannot_widen_hull(self):
        """Byzantine parties claim absurd trusted intervals."""

        def handler(view, src, dst, spec):
            if view.channel.endswith("/interval"):
                return (0, 10**18)
            if view.channel.endswith("/input"):
                return 10**18
            return spec

        inputs = [1000, 1001, 1002, 1003, 1004, 1005, 1006]
        result = run_protocol(
            factory, inputs, 7, 2, adversary=ScriptedAdversary(handler)
        )
        assert_convex(inputs, result)

    def test_non_integer_junk_ignored(self):
        """Values outside N are ignored at every step (the paper's rule)."""

        def handler(view, src, dst, spec):
            return ("PROP", -1.5)

        inputs = [10, 11, 12, 13, 14, 15, 16]
        result = run_protocol(
            factory, inputs, 7, 2, adversary=ScriptedAdversary(handler)
        )
        assert_convex(inputs, result)

    def test_huge_byzantine_values_not_forwarded(self):
        """Honest communication must not blow up because byzantine
        parties send enormous integers (contrast: prior CA protocols'
        adversarially chosen communication, Section 1)."""
        inputs = [100 + i for i in range(7)]
        quiet = run_protocol(factory, inputs, 7, 2)

        def handler(view, src, dst, spec):
            return 2 ** 4096  # a 4 kilobit integer, everywhere

        noisy = run_protocol(
            factory, inputs, 7, 2, adversary=ScriptedAdversary(handler)
        )
        assert_convex(inputs, noisy)
        assert noisy.stats.honest_bits <= 2 * quiet.stats.honest_bits


class TestComplexity:
    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_round_complexity_linear(self, n, t):
        inputs = [10 * i for i in range(n)]
        result = run_protocol(factory, inputs, n, t)
        # setup (2 rounds) + 4 rounds per phase, t + 1 phases.
        assert result.stats.rounds == 2 + 4 * (t + 1)

    def test_bits_cubic_shape(self):
        ell = 64
        bits = {}
        for n, t in ((4, 1), (10, 3)):
            inputs = [(1 << (ell - 1)) + i for i in range(n)]
            bits[n] = run_protocol(factory, inputs, n, t).stats.honest_bits
        growth = bits[10] / bits[4]
        # O(l n^3) with t+1 ~ n/3 phases: growth between quadratic and
        # quartic in n for fixed l.
        assert 2.5 ** 2 < growth < 2.5 ** 4.5
