"""Phase-King BA tests: the assumed ``PI_BA`` must satisfy Definition 2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ba import BIT_DOMAIN, digest_domain, nat_domain
from repro.ba.phase_king import phase_king, phase_king_rounds
from repro.sim import (
    Adversary,
    CrashAdversary,
    ScriptedAdversary,
    run_protocol,
)

from conftest import CONFIGS, adversary_params

NAT = nat_domain()


def pk_factory(domain):
    def factory(ctx, v):
        return phase_king(ctx, v, domain)

    return factory


class TestValidity:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous_nat(self, n, t, adversary):
        result = run_protocol(pk_factory(NAT), [77] * n, n, t,
                              adversary=adversary)
        assert result.common_output() == 77

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous_bits(self, adversary):
        for bit in (0, 1):
            result = run_protocol(pk_factory(BIT_DOMAIN), [bit] * 7, 7, 2,
                                  adversary=adversary)
            assert result.common_output() == bit

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous_digests(self, adversary):
        domain = digest_domain(64)
        value = b"\xab" * 8
        result = run_protocol(
            pk_factory(domain), [value] * 7, 7, 2, kappa=64,
            adversary=adversary,
        )
        assert result.common_output() == value


class TestAgreement:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_mixed_inputs_agree(self, n, t, adversary):
        inputs = [i * 11 for i in range(n)]
        result = run_protocol(pk_factory(NAT), inputs, n, t,
                              adversary=adversary)
        result.common_output()  # raises on disagreement

    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=7, max_size=7),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_agreement_random_inputs(self, inputs, seed):
        from repro.sim import RandomGarbageAdversary

        result = run_protocol(
            pk_factory(NAT), inputs, 7, 2,
            adversary=RandomGarbageAdversary(seed),
        )
        result.common_output()


class TestDomainGuarantees:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_binary_output_in_domain(self, adversary):
        """For binary domains the output is always 0 or 1 -- Lemma 2's
        'the bit agreed upon was proposed by an honest party' needs this."""
        inputs = [0, 1, 0, 1, 0, 1, 0]
        result = run_protocol(pk_factory(BIT_DOMAIN), inputs, 7, 2,
                              adversary=adversary)
        assert result.common_output() in (0, 1)

    def test_invalid_own_input_coerced_to_default(self):
        result = run_protocol(
            pk_factory(BIT_DOMAIN), ["junk"] * 4, 4, 1
        )
        assert result.common_output() == BIT_DOMAIN.default

    def test_byzantine_king_junk_coerced(self):
        """A byzantine king broadcasting junk must not leave the domain."""

        class JunkKing(Adversary):
            def select_corruptions(self, n, t):
                return {0}  # phase-0 king

            def mutate(self, view, src, dst, payload):
                return ("garbage", [1, 2, 3])

        inputs = [0, 1, 1, 0, 1, 0, 1]
        result = run_protocol(pk_factory(BIT_DOMAIN), inputs, 7, 2,
                              adversary=JunkKing())
        assert result.common_output() in (0, 1)


class TestPersistence:
    def test_agreement_persists_across_byzantine_kings(self):
        """Once honest parties agree, later corrupted kings cannot break it.

        Corrupt the LAST phase's king; honest parties start unanimous.
        """

        class LastKingLies(Adversary):
            def select_corruptions(self, n, t):
                return {t}  # king of the final phase (phase index t)

            def mutate(self, view, src, dst, payload):
                return 424242

        result = run_protocol(pk_factory(NAT), [5] * 7, 7, 2,
                              adversary=LastKingLies())
        assert result.common_output() == 5


class TestComplexity:
    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_round_complexity_exact(self, n, t):
        result = run_protocol(pk_factory(NAT), list(range(n)), n, t)
        assert result.stats.rounds == phase_king_rounds(t)

    def test_bits_quadratic_per_phase(self):
        """Communication is O(value_bits * n^2) per phase."""
        small = run_protocol(pk_factory(NAT), [1] * 7, 7, 2)
        large = run_protocol(pk_factory(NAT), [2**64 - 1] * 7, 7, 2)
        # 64x larger values: cost grows roughly linearly in value size.
        assert large.stats.honest_bits > 10 * small.stats.honest_bits

    def test_equivocating_king_cannot_inflate_honest_bits(self):
        """Honest communication is adversary-independent up to message
        content sizes (honest parties never forward byzantine blobs)."""
        quiet = run_protocol(pk_factory(NAT), [3] * 7, 7, 2,
                             adversary=CrashAdversary(0))
        noisy = run_protocol(
            pk_factory(NAT), [3] * 7, 7, 2,
            adversary=ScriptedAdversary(lambda *a: 2**512),
        )
        # Byzantine 512-bit blobs are never echoed by honest parties;
        # honest bits stay within the all-crash baseline (small values).
        assert noisy.stats.honest_bits <= quiet.stats.honest_bits * 2
