"""The execution engine and its determinism-conformance contract.

Three layers:

1. ``run_many`` mechanics -- ordering, error capture, per-case
   timeouts, crash isolation, progress callbacks.
2. Seed derivation -- pinned ``derive_seed`` values (the fuzz corpus
   is keyed on these; changing the scheme silently invalidates every
   archived artifact) plus independence properties.
3. Conformance -- the headline guarantee: a campaign or sweep run with
   ``workers=1`` and ``workers=4`` produces identical failure sets,
   identical minimized scripts, and byte-identical JSON artifacts.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis import GridSpec, grid_record, run_grid, sweep_document
from repro.sim.fuzz import fuzz, sample_case_at, standard_registry
from repro.sim.parallel import (
    CaseOutcome,
    derive_seed,
    resolve_workers,
    run_many,
)

from test_fuzz import canary_registry


# ---------------------------------------------------------------------------
# module-level case functions (workers resolve them by qualified name)
# ---------------------------------------------------------------------------


def square(x: int) -> int:
    return x * x


def fail_on_odd(x: int) -> int:
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


def sleep_for(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def die_on_negative(x: int) -> int:
    if x < 0:
        os._exit(13)  # hard death: not an exception, kills the worker
    return x


def sleep_until_flagged(payload: tuple[str, int]) -> int:
    """Times out on the first attempt, returns promptly on the retry."""
    flag, value = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(5.0)
    return value * 10


# ---------------------------------------------------------------------------
# seed derivation
# ---------------------------------------------------------------------------


class TestDeriveSeed:
    def test_pinned_values(self):
        """The derivation scheme is a wire format: artifacts and docs
        reference concrete seeds, so the function is pinned exactly."""
        assert derive_seed(0, 0) == 7262142964560316476
        assert derive_seed(0, 1) == 3879412852342684207
        assert derive_seed(0, 2) == 7566327148153535972
        assert derive_seed(1, 0) == 2079183378810927902
        assert derive_seed(42, 7) == 2230503629522432161

    def test_63_bit_range(self):
        for index in range(200):
            seed = derive_seed(3, index)
            assert 0 <= seed < (1 << 63)

    def test_injective_in_practice(self):
        seeds = {derive_seed(s, i) for s in range(20) for i in range(200)}
        assert len(seeds) == 20 * 200

    def test_independent_of_position(self):
        """Case i's seed does not depend on any other case -- the
        property that lets workers compute cases in any order."""
        assert derive_seed(9, 137) == derive_seed(9, 137)
        assert derive_seed(9, 137) != derive_seed(9, 136)
        assert derive_seed(9, 137) != derive_seed(8, 137)


class TestResolveWorkers:
    def test_auto_spellings(self):
        cpus = max(1, os.cpu_count() or 1)
        assert resolve_workers(None) == cpus
        assert resolve_workers("auto") == cpus
        assert resolve_workers(0) == cpus

    def test_explicit_counts(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)
        with pytest.raises(ValueError):
            resolve_workers("nope")


# ---------------------------------------------------------------------------
# run_many mechanics
# ---------------------------------------------------------------------------


class TestRunMany:
    def test_empty(self):
        assert run_many(square, []) == []

    def test_serial_values_in_order(self):
        outcomes = run_many(square, [3, 1, 4, 1, 5])
        assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]
        assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
        assert all(o.ok for o in outcomes)

    def test_parallel_matches_serial(self):
        payloads = list(range(37))
        serial = run_many(square, payloads, workers=1)
        parallel = run_many(square, payloads, workers=4)
        assert serial == parallel  # elapsed_s is excluded from equality

    def test_errors_are_outcomes_not_exceptions(self):
        outcomes = run_many(fail_on_odd, [0, 1, 2, 3], workers=2,
                            chunksize=1)
        assert [o.ok for o in outcomes] == [True, False, True, False]
        failed = outcomes[1]
        assert failed.error_type == "ValueError"
        assert "odd payload 1" in failed.error
        assert failed.value is None

    @pytest.mark.parametrize("workers", [1, 2])
    def test_timeout_is_recorded(self, workers):
        outcomes = run_many(
            sleep_for, [0.0, 5.0], workers=workers, timeout_s=0.2,
            chunksize=1,
        )
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].error_type == "CaseTimeout"

    def test_worker_crash_is_isolated(self):
        """A case that kills its process fails alone; the campaign and
        every other case survive."""
        outcomes = run_many(
            die_on_negative, [1, -1, 2, 3], workers=2, chunksize=1
        )
        assert [o.ok for o in outcomes] == [True, False, True, True]
        assert outcomes[1].error_type == "WorkerCrash"
        assert [o.value for o in outcomes if o.ok] == [1, 2, 3]

    def test_timeout_from_worker_thread_runs_unguarded(self):
        """``run_many(workers=1, timeout_s=...)`` from a non-main thread
        must not try to install a SIGALRM handler (which only the main
        thread may do); the cases simply run without the alarm guard
        (satellite)."""
        import threading

        collected = {}

        def drive():
            try:
                collected["outcomes"] = run_many(
                    square, [2, 3], workers=1, timeout_s=5.0,
                )
            except Exception as exc:  # signal.signal would raise here
                collected["error"] = exc

        worker = threading.Thread(target=drive)
        worker.start()
        worker.join(timeout=30)
        assert "error" not in collected, collected.get("error")
        assert [o.value for o in collected["outcomes"]] == [4, 9]

    def test_progress_in_index_order(self):
        seen = []
        run_many(
            square, [5, 6, 7, 8], workers=2, chunksize=1,
            progress=lambda o: seen.append(o.index),
        )
        assert seen == [0, 1, 2, 3]

    def test_elapsed_excluded_from_equality(self):
        a = CaseOutcome(index=0, value=1, elapsed_s=0.5)
        b = CaseOutcome(index=0, value=1, elapsed_s=123.0)
        assert a == b

    def test_retry_count_excluded_from_equality(self):
        """Whether a retry was *needed* is machine-local noise; the
        settled outcome is what the determinism contract compares."""
        a = CaseOutcome(index=0, value=1, retries=0)
        b = CaseOutcome(index=0, value=1, retries=1)
        assert a == b


# ---------------------------------------------------------------------------
# transient-failure retries (satellite)
# ---------------------------------------------------------------------------


class TestRetries:
    def test_transient_timeout_recovers_in_place(self, tmp_path):
        """A one-off timeout (loaded host) is retried with the same
        payload -- hence the same derived seed -- and the settled
        outcome is the one an undisturbed run would have produced."""
        flag = str(tmp_path / "flag")
        outcomes = run_many(
            sleep_until_flagged, [(flag, 3)], workers=1,
            timeout_s=0.3, retries=1, retry_backoff_s=0.0,
        )
        assert outcomes[0].ok
        assert outcomes[0].value == 30
        assert outcomes[0].retries == 1

    def test_worker_crash_retry_exhausted_keeps_failure(self):
        """A case that reliably kills its worker stays a WorkerCrash
        after the retry budget, with the attempts spent on record."""
        outcomes = run_many(
            die_on_negative, [1, -1], workers=2, chunksize=1,
            retries=2, retry_backoff_s=0.0,
        )
        assert outcomes[0].ok and outcomes[0].retries == 0
        crash = outcomes[1]
        assert not crash.ok
        assert crash.error_type == "WorkerCrash"
        assert crash.retries == 2

    def test_deterministic_errors_are_not_retried(self):
        """Ordinary exceptions are properties of the case, not the
        environment: retrying them would waste the budget failing
        identically."""
        outcomes = run_many(
            fail_on_odd, [1, 2], workers=1, retries=3,
            retry_backoff_s=0.0,
        )
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "ValueError"
        assert outcomes[0].retries == 0
        assert outcomes[1].ok and outcomes[1].retries == 0


# ---------------------------------------------------------------------------
# conformance: fuzz campaigns
# ---------------------------------------------------------------------------


class TestFuzzConformance:
    def test_identical_failures_and_artifacts(self, tmp_path):
        """Same seed, workers=1 vs workers=4: identical cases, identical
        failure sets, identical minimized scripts, byte-identical
        artifact files."""
        dir_serial = tmp_path / "serial"
        dir_parallel = tmp_path / "parallel"
        serial = fuzz(
            runs=12, seed=1, registry_builder=canary_registry,
            artifact_dir=str(dir_serial), workers=1,
        )
        parallel = fuzz(
            runs=12, seed=1, registry_builder=canary_registry,
            artifact_dir=str(dir_parallel), workers=4,
        )

        assert serial.cases == parallel.cases
        assert not serial.clean  # the canary must be caught either way
        assert len(serial.failures) == len(parallel.failures)
        for a, b in zip(serial.failures, parallel.failures):
            assert (a.case, a.kind, a.inputs) == (b.case, b.kind, b.inputs)
            assert a.script == b.script          # same minimized script
            assert a.shrunk == b.shrunk

        names_serial = sorted(p.name for p in dir_serial.iterdir())
        names_parallel = sorted(p.name for p in dir_parallel.iterdir())
        assert names_serial == names_parallel
        for name in names_serial:
            assert (dir_serial / name).read_bytes() == (
                dir_parallel / name
            ).read_bytes()

    def test_clean_campaign_parallel(self):
        report = fuzz(
            runs=10, seed=0, registry_builder=standard_registry, workers=2
        )
        assert report.clean, report.summary()
        assert report.workers == 2
        # the cases are exactly the serial campaign's cases:
        assert report.cases == fuzz(runs=10, seed=0).cases

    def test_sample_case_at_matches_campaign(self):
        registry = standard_registry()
        report = fuzz(runs=6, seed=3)
        for index, case in enumerate(report.cases):
            assert sample_case_at(3, index, registry) == case


# ---------------------------------------------------------------------------
# conformance: benchmark sweeps
# ---------------------------------------------------------------------------


class TestSweepConformance:
    SPEC = GridSpec(
        protocol="pi_z", ns=(4, 7), ells=(64, 256), seed=11
    )

    def test_grid_identical_across_worker_counts(self):
        serial, _ = run_grid(self.SPEC, workers=1)
        parallel, _ = run_grid(self.SPEC, workers=2)
        assert [grid_record(m) for m in serial] == [
            grid_record(m) for m in parallel
        ]

    def test_sweep_document_grid_section_is_canonical(self):
        """The deterministic section of BENCH_sweep.json serialises to
        identical canonical JSON regardless of worker count; only the
        ``timing`` section may differ."""
        serial, wall_serial = run_grid(self.SPEC, workers=1)
        parallel, wall_parallel = run_grid(self.SPEC, workers=2)
        doc_serial = sweep_document(
            self.SPEC, serial, workers=1, wall_s=wall_serial
        )
        doc_parallel = sweep_document(
            self.SPEC, parallel, workers=2, wall_s=wall_parallel
        )
        canon = lambda doc: json.dumps(  # noqa: E731
            {k: v for k, v in doc.items() if k not in ("timing", "workers")},
            sort_keys=True,
        )
        assert canon(doc_serial) == canon(doc_parallel)
        assert doc_serial["timing"]["wall_s"] >= 0.0
