"""Simulation substrate tests: sizing, metrics, context, scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bitstrings import BitString
from repro.errors import (
    ConfigurationError,
    HonestPartyError,
    SimulationError,
)
from repro.sim import (
    Adversary,
    Context,
    CrashAdversary,
    Outgoing,
    PassiveAdversary,
    ScriptedAdversary,
    SynchronousNetwork,
    bit_size,
    broadcast_round,
    exchange,
    run_protocol,
)
from repro.sim.adversary import DROP, AdaptiveCorruptionAdversary
from repro.sim.metrics import CommunicationStats


class TestSizing:
    def test_none_is_one_bit(self):
        assert bit_size(None) == 1

    def test_bool_is_one_bit(self):
        assert bit_size(True) == 1
        assert bit_size(False) == 1

    def test_int_bit_length(self):
        assert bit_size(0) == 1
        assert bit_size(1) == 1
        assert bit_size(255) == 8
        assert bit_size(256) == 9

    def test_negative_int_adds_sign_bit(self):
        assert bit_size(-255) == 9

    def test_bytes(self):
        assert bit_size(b"abcd") == 32
        assert bit_size(b"") == 0

    def test_str_is_opcode(self):
        assert bit_size("VOTE") == 8

    def test_containers_sum(self):
        assert bit_size(("VOTE", 255)) == 16
        assert bit_size([1, 1, 1]) == 3
        assert bit_size({1: b"ab"}) == 1 + 16

    def test_bitstring_wire_bits(self):
        assert bit_size(BitString(5, 10)) == 10

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            bit_size(object())

    @given(st.integers(min_value=0, max_value=2**64))
    def test_int_size_matches_bit_length(self, v):
        assert bit_size(v) == max(1, v.bit_length())


class TestStats:
    def test_record_send(self):
        stats = CommunicationStats()
        stats.record_send(0, "a/b", 10)
        stats.record_send(1, "a/c", 5)
        assert stats.honest_bits == 15
        assert stats.honest_messages == 2
        assert stats.bits_by_party[0] == 10
        assert stats.bits_for_prefix("a/") == 15
        assert stats.bits_for_prefix("a/b") == 10
        assert stats.bits_for_prefix("z") == 0

    def test_channel_report_sorted(self):
        stats = CommunicationStats()
        stats.record_send(0, "small", 1)
        stats.record_send(0, "big", 100)
        report = stats.channel_report()
        assert report[0][0] == "big"

    def test_rounds(self):
        stats = CommunicationStats()
        stats.record_round()
        stats.record_round()
        assert stats.rounds == 2


class TestContext:
    def test_quorums(self):
        ctx = Context(party_id=0, n=7, t=2)
        assert ctx.quorum == 5
        assert ctx.pre_agreement == 3
        assert list(ctx.all_parties) == list(range(7))

    def test_basic_t_bounds(self):
        with pytest.raises(ConfigurationError):
            Context(party_id=0, n=3, t=3)
        with pytest.raises(ConfigurationError):
            Context(party_id=0, n=3, t=-1)

    def test_resilience_is_per_protocol(self):
        # the context itself allows any t < n; protocols declare their
        # own bounds via require_resilience.
        ctx = Context(party_id=0, n=3, t=1)
        with pytest.raises(ConfigurationError):
            ctx.require_resilience(3)
        ctx.require_resilience(2)  # t < n/2 protocols accept it

        ctx = Context(party_id=0, n=6, t=2)
        with pytest.raises(ConfigurationError):
            ctx.require_resilience(3)

    def test_t_zero_allowed(self):
        assert Context(party_id=0, n=1, t=0).quorum == 1

    def test_party_id_range(self):
        with pytest.raises(ConfigurationError):
            Context(party_id=7, n=7, t=2)
        with pytest.raises(ConfigurationError):
            Context(party_id=-1, n=7, t=2)

    def test_kappa_validation(self):
        with pytest.raises(ConfigurationError):
            Context(party_id=0, n=4, t=1, kappa=12)


def echo_protocol(ctx, v):
    """Broadcast the input, return the sorted list of received values."""
    inbox = yield from broadcast_round(ctx, "echo", v)
    return sorted(
        x for x in inbox.values() if isinstance(x, int)
    )


def two_round_protocol(ctx, v):
    inbox = yield from broadcast_round(ctx, "r1", v)
    total = sum(x for x in inbox.values() if isinstance(x, int))
    inbox = yield from broadcast_round(ctx, "r2", total)
    return max(x for x in inbox.values() if isinstance(x, int))


class TestScheduler:
    def test_all_honest_echo(self):
        result = run_protocol(echo_protocol, [1, 2, 3, 4], 4, 1)
        assert result.common_output() == [1, 2, 3, 4]
        assert result.stats.rounds == 1

    def test_self_messages_not_priced(self):
        result = run_protocol(echo_protocol, [1, 1, 1, 1], 4, 1)
        # 3 honest parties (one corrupted by default PassiveAdversary),
        # each sends 1 bit to 3 *other* parties.
        assert result.stats.honest_bits == 3 * 3 * bit_size(1)

    def test_passive_adversary_equals_honest(self):
        honest = run_protocol(echo_protocol, [5, 6, 7, 8], 4, 1,
                              adversary=PassiveAdversary())
        assert honest.common_output() == [5, 6, 7, 8]

    def test_crash_adversary_drops(self):
        result = run_protocol(echo_protocol, [5, 6, 7, 8], 4, 1,
                              adversary=CrashAdversary(0))
        # corrupted party (index 3) silent: only three values received.
        assert result.common_output() == [5, 6, 7]

    def test_corrupted_outputs_excluded(self):
        result = run_protocol(echo_protocol, [1, 2, 3, 4], 4, 1)
        assert set(result.outputs) == {0, 1, 2}
        assert result.honest_parties == [0, 1, 2]

    def test_channel_trace(self):
        result = run_protocol(two_round_protocol, [1, 2, 3, 4], 4, 1)
        assert result.channel_trace == ["r1", "r2"]

    def test_round_limit(self):
        def forever(ctx, v):
            while True:
                yield from broadcast_round(ctx, "loop", 0)

        with pytest.raises(SimulationError):
            run_protocol(forever, [0] * 4, 4, 1, max_rounds=10)

    def test_disagreement_detected(self):
        def disagree(ctx, v):
            yield from exchange("one", {})
            return ctx.party_id

        result = run_protocol(disagree, [0] * 4, 4, 1)
        with pytest.raises(SimulationError):
            result.common_output()

    def test_lockstep_violation_detected(self):
        def skewed(ctx, v):
            if ctx.party_id == 0:
                yield from exchange("channel_a", {})
            else:
                yield from exchange("channel_b", {})
            return 0

        with pytest.raises(SimulationError):
            run_protocol(skewed, [0] * 4, 4, 1)

    def test_inputs_dict_accepted(self):
        result = run_protocol(echo_protocol, {0: 1, 1: 2, 2: 3, 3: 4}, 4, 1)
        assert result.common_output() == [1, 2, 3, 4]

    def test_inputs_must_cover_parties(self):
        with pytest.raises(ConfigurationError):
            run_protocol(echo_protocol, {0: 1, 2: 3}, 4, 1)

    def test_non_outgoing_yield_rejected(self):
        def bad(ctx, v):
            yield {"not": "outgoing"}

        with pytest.raises(SimulationError):
            run_protocol(bad, [0] * 4, 4, 1)

    def test_messages_to_invalid_dest_dropped(self):
        def stray(ctx, v):
            messages = {dest: 1 for dest in ctx.all_parties}
            messages[99] = 1  # silently dropped, never delivered
            inbox = yield Outgoing(channel="x", messages=messages)
            return sorted(inbox)

        result = run_protocol(stray, [0] * 4, 4, 1)
        assert result.common_output() == [0, 1, 2, 3]

    def test_immediate_return(self):
        def instant(ctx, v):
            return v
            yield  # pragma: no cover - makes it a generator

        result = run_protocol(instant, [7] * 4, 4, 1)
        assert result.common_output() == 7

    def test_determinism(self):
        def run():
            return run_protocol(
                two_round_protocol, [3, 1, 4, 1], 4, 1,
                adversary=CrashAdversary(1, seed=5),
            )

        a, b = run(), run()
        assert a.outputs == b.outputs
        assert a.stats.honest_bits == b.stats.honest_bits


class TestAdversaryFramework:
    def test_corruption_budget_enforced(self):
        class Greedy(Adversary):
            def select_corruptions(self, n, t):
                return set(range(n))

        with pytest.raises(ConfigurationError):
            SynchronousNetwork(echo_protocol, [0] * 4, 4, 1, adversary=Greedy())

    def test_scripted_adversary_injects(self):
        def handler(view, src, dst, spec):
            return 99

        result = run_protocol(
            echo_protocol, [1, 2, 3, 4], 4, 1,
            adversary=ScriptedAdversary(handler),
        )
        assert result.common_output() == [1, 2, 3, 99]

    def test_scripted_adversary_drop(self):
        result = run_protocol(
            echo_protocol, [1, 2, 3, 4], 4, 1,
            adversary=ScriptedAdversary(lambda *a: DROP),
        )
        assert result.common_output() == [1, 2, 3]

    def test_rushing_adversary_sees_honest_traffic(self):
        seen = {}

        def handler(view, src, dst, spec):
            seen.update(view.honest_outgoing)
            return DROP

        run_protocol(
            echo_protocol, [1, 2, 3, 4], 4, 1,
            adversary=ScriptedAdversary(handler),
        )
        # The adversary observed honest messages of the same round,
        # including honest-to-honest ones.
        assert seen[(0, 1)] == 1

    def test_adaptive_corruption_takes_effect(self):
        # Corrupt party 0 after round 0; its round-1 traffic is then
        # controlled (dropped by the inner CrashAdversary).
        adv = AdaptiveCorruptionAdversary(
            schedule=[(0, 0)], inner=CrashAdversary(0)
        )
        result = run_protocol(two_round_protocol, [1, 2, 3, 4], 4, 1,
                              adversary=adv)
        assert 0 in result.corrupted
        # party 0 was honest in round 1, silent in round 2: the honest
        # parties' r2 view misses its total.
        assert set(result.outputs) == {1, 2, 3}

    def test_adaptive_budget_respected(self):
        adv = AdaptiveCorruptionAdversary(
            schedule=[(0, 0), (0, 1), (0, 2)], inner=CrashAdversary(0)
        )
        result = run_protocol(two_round_protocol, [1, 2, 3, 4], 4, 1,
                              adversary=adv)
        assert len(result.corrupted) <= 1

    def test_view_exposes_corrupted_inputs(self):
        captured = {}

        def handler(view, src, dst, spec):
            captured.update(view.corrupted_inputs)
            return spec if spec is not None else DROP

        run_protocol(
            echo_protocol, [1, 2, 3, 4], 4, 1,
            adversary=ScriptedAdversary(handler),
        )
        assert captured == {3: 4}

    def test_crashing_spec_code_tolerated(self):
        # A corrupted party's spec generator that raises must not kill
        # the simulation.
        def fragile(ctx, v):
            inbox = yield from broadcast_round(ctx, "r", v)
            if ctx.party_id == 3:
                raise RuntimeError("corrupted spec blew up")
            inbox = yield from broadcast_round(ctx, "r2", 1)
            return sorted(x for x in inbox.values() if isinstance(x, int))

        result = run_protocol(fragile, [1, 2, 3, 4], 4, 1)
        assert set(result.outputs) == {0, 1, 2}

    def test_honest_crash_propagates(self):
        def fragile(ctx, v):
            yield from broadcast_round(ctx, "r", v)
            if ctx.party_id == 0:
                raise RuntimeError("honest bug")
            return 0

        # honest crashes surface attributed, with the original
        # exception preserved as the cause (see docs/fault-model.md,
        # plane 6: the no-crash meta-invariant).
        with pytest.raises(HonestPartyError) as excinfo:
            run_protocol(fragile, [0] * 4, 4, 1)
        assert excinfo.value.party == 0
        assert isinstance(excinfo.value.__cause__, RuntimeError)
