"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import run_protocol
from repro.sim.adversary import standard_adversary_suite

# Small (n, t) configurations exercising both t = (n-1)/3 tightness and
# slack; all satisfy t < n/3.
CONFIGS = [(4, 1), (7, 2), (10, 3)]

SMALL_CONFIGS = [(4, 1), (7, 2)]


def adversary_params():
    """Pytest params covering the standard adversary battery."""
    suite = standard_adversary_suite(seed=11)
    return [pytest.param(adv, id=adv.describe()) for adv in suite]


def honest_values(inputs, result):
    """The inputs of the parties that stayed honest."""
    if isinstance(inputs, dict):
        items = inputs.items()
    else:
        items = enumerate(inputs)
    return [v for party, v in items if party not in result.corrupted]


def assert_convex(inputs, result, output=None):
    """Assert Agreement + Convex Validity for an execution result.

    Thin wrapper over :meth:`ExecutionResult.assert_convex_valid` so a
    violation raises the same tagged :class:`ProtocolViolation` the
    online monitors produce.
    """
    if output is not None:
        honest = honest_values(inputs, result)
        assert honest, "no honest parties left"
        assert min(honest) <= output <= max(honest), (
            f"output {output} outside honest range "
            f"[{min(honest)}, {max(honest)}]"
        )
        return output
    return result.assert_convex_valid(inputs)


def run(factory, inputs, n, t, **kwargs):
    """Shorthand for run_protocol with sane test defaults."""
    kwargs.setdefault("kappa", 64)
    return run_protocol(factory, inputs, n=n, t=t, **kwargs)
