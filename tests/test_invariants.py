"""Online invariant monitors: unit behaviour and network integration."""

from __future__ import annotations

import pytest

from repro.core import protocol_z
from repro.errors import ProtocolViolation
from repro.sim import (
    AgreementMonitor,
    BitBudgetMonitor,
    ConvexValidityMonitor,
    LockstepMonitor,
    RoundBudgetMonitor,
    SynchronousNetwork,
    broadcast_round,
    default_monitors,
    default_round_budget,
    paper_bit_budget,
    paper_round_budget,
    run_protocol,
)

KAPPA = 64


# ---------------------------------------------------------------------------
# toy protocols driving the monitors
# ---------------------------------------------------------------------------


def echo_protocol(ctx, v):
    """One broadcast round; output the own input (convex, agreeing iff
    all inputs agree)."""
    yield from broadcast_round(ctx, "echo", v)
    return v


def constant_protocol(value):
    def proto(ctx, v):
        yield from broadcast_round(ctx, "const", v)
        return value

    return proto


def chatty_protocol(rounds):
    def proto(ctx, v):
        for index in range(rounds):
            yield from broadcast_round(ctx, f"chat/{index}", v)
        return v

    return proto


def run_monitored(factory, inputs, n, t, monitors):
    return run_protocol(
        factory, inputs, n=n, t=t, kappa=KAPPA,
        trace=True, monitors=monitors,
    )


# ---------------------------------------------------------------------------
# budget envelopes
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_bit_budget_positive_and_monotone(self):
        base = paper_bit_budget(4, 1, 64, 64)
        assert base > 0
        assert paper_bit_budget(8, 2, 64, 64) > base
        assert paper_bit_budget(4, 1, 1 << 12, 64) > base
        assert paper_bit_budget(4, 1, 64, 128) > base

    def test_round_budget_positive_and_monotone(self):
        base = paper_round_budget(4, 1, 64)
        assert base > 0
        assert paper_round_budget(7, 2, 64) > base
        assert paper_round_budget(4, 1, 1 << 12) > base

    def test_default_round_budget_floor(self):
        assert default_round_budget(4, 1) >= 10_000
        assert default_round_budget(31, 10) > default_round_budget(4, 1)

    def test_pi_z_fits_inside_the_paper_envelopes(self):
        """The reference implementation must never trip its own budgets."""
        inputs = [100, 120, 140, 103, 115, 131, 127]
        n, t, ell = 7, 2, 8
        result = run_monitored(
            lambda ctx, v: protocol_z(ctx, v), inputs, n, t,
            default_monitors(
                bit_budget=paper_bit_budget(n, t, ell, KAPPA),
                round_budget=paper_round_budget(n, t, ell),
            ),
        )
        result.assert_convex_valid(inputs)


# ---------------------------------------------------------------------------
# individual monitors
# ---------------------------------------------------------------------------


class TestAgreementMonitor:
    def test_catches_disagreement(self):
        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(echo_protocol, [1, 2, 3, 4], 4, 0,
                          [AgreementMonitor()])
        assert excinfo.value.monitor == "AgreementMonitor"
        assert "disagree" in str(excinfo.value)

    def test_clean_on_agreement(self):
        result = run_monitored(echo_protocol, [9, 9, 9, 9], 4, 0,
                               [AgreementMonitor()])
        assert result.common_output() == 9


class TestConvexValidityMonitor:
    def test_catches_output_outside_hull(self):
        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(constant_protocol(1_000), [1, 2, 3, 4], 4, 0,
                          [ConvexValidityMonitor()])
        assert excinfo.value.monitor == "ConvexValidityMonitor"
        assert "outside the honest hull" in str(excinfo.value)

    def test_clean_inside_hull(self):
        run_monitored(constant_protocol(2), [1, 2, 3, 4], 4, 0,
                      [ConvexValidityMonitor()])

    def test_explicit_hull_overrides_captured(self):
        with pytest.raises(ProtocolViolation):
            run_monitored(
                constant_protocol(2), [1, 2, 3, 4], 4, 0,
                [ConvexValidityMonitor(honest_inputs=[10, 20])],
            )

    def test_non_integer_inputs_are_skipped(self):
        """A protocol over non-integer inputs has no hull to check."""

        def proto(ctx, v):
            yield from broadcast_round(ctx, "s", v)
            return v

        run_monitored(proto, ["a", "a", "a", "a"], 4, 0,
                      [ConvexValidityMonitor()])

    def test_violation_carries_trace(self):
        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(constant_protocol(-5), [1, 2, 3, 4], 4, 0,
                          [ConvexValidityMonitor()])
        assert excinfo.value.trace is not None
        assert len(excinfo.value.trace) >= 1


class TestLockstepMonitor:
    def test_catches_diverging_channels(self):
        def skewed(ctx, v):
            channel = "left" if ctx.party_id % 2 == 0 else "right"
            yield from broadcast_round(ctx, channel, v)
            return v

        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(skewed, [1, 1, 1, 1], 4, 0, [LockstepMonitor()])
        assert excinfo.value.monitor == "LockstepMonitor"
        assert excinfo.value.record is not None
        assert set(excinfo.value.record.honest_channels) == {"left", "right"}


class TestBitBudgetMonitor:
    def test_requires_a_budget(self):
        with pytest.raises(ValueError):
            BitBudgetMonitor()

    def test_total_budget_fires(self):
        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(chatty_protocol(4), [1, 1, 1, 1], 4, 0,
                          [BitBudgetMonitor(total=8)])
        assert "exceeded the budget" in str(excinfo.value)
        assert excinfo.value.record is not None

    def test_per_channel_prefix_budget(self):
        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(
                chatty_protocol(4), [1, 1, 1, 1], 4, 0,
                [BitBudgetMonitor(per_channel={"chat/2": 1})],
            )
        assert "chat/2" in str(excinfo.value)

    def test_generous_budget_is_clean(self):
        run_monitored(chatty_protocol(4), [1, 1, 1, 1], 4, 0,
                      [BitBudgetMonitor(total=1 << 20)])


class TestRoundBudgetMonitor:
    def test_requires_positive_limit(self):
        with pytest.raises(ValueError):
            RoundBudgetMonitor(0)

    def test_fires_on_excess_rounds(self):
        with pytest.raises(ProtocolViolation) as excinfo:
            run_monitored(chatty_protocol(5), [1, 1, 1, 1], 4, 0,
                          [RoundBudgetMonitor(limit=2)])
        assert excinfo.value.monitor == "RoundBudgetMonitor(limit=2)"

    def test_exact_limit_is_clean(self):
        run_monitored(chatty_protocol(3), [1, 1, 1, 1], 4, 0,
                      [RoundBudgetMonitor(limit=3)])


class TestDefaultMonitors:
    def test_composition(self):
        stack = default_monitors(bit_budget=1 << 20, round_budget=100)
        names = [type(m).__name__ for m in stack]
        assert names == [
            "LockstepMonitor",
            "AgreementMonitor",
            "ConvexValidityMonitor",
            "CrashBudgetMonitor",
            "BitBudgetMonitor",
            "RoundBudgetMonitor",
        ]

    def test_budgetless_stack(self):
        stack = default_monitors()
        assert len(stack) == 4

    def test_full_stack_on_pi_z(self):
        inputs = [5, 6, 7, 8]
        result = run_monitored(
            lambda ctx, v: protocol_z(ctx, v), inputs, 4, 1,
            default_monitors(
                bit_budget=paper_bit_budget(4, 1, 4, KAPPA),
                round_budget=paper_round_budget(4, 1, 4),
            ),
        )
        result.assert_convex_valid(inputs)


# ---------------------------------------------------------------------------
# ExecutionResult.assert_convex_valid
# ---------------------------------------------------------------------------


class TestAssertConvexValid:
    def test_returns_common_output(self):
        inputs = [3, 4, 5, 6]
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, 4, 1, kappa=KAPPA
        )
        value = result.assert_convex_valid(inputs)
        assert value == result.common_output()

    def test_accepts_dict_inputs(self):
        inputs = {0: 3, 1: 4, 2: 5, 3: 6}
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, 4, 1, kappa=KAPPA
        )
        result.assert_convex_valid(inputs)

    def test_raises_tagged_violation(self):
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), [3, 4, 5, 6], 4, 1,
            kappa=KAPPA,
        )
        with pytest.raises(ProtocolViolation) as excinfo:
            result.assert_convex_valid([100, 200, 300, 400])
        assert excinfo.value.monitor == "assert_convex_valid"


# ---------------------------------------------------------------------------
# graceful degradation: partial state on non-termination
# ---------------------------------------------------------------------------


class TestGracefulDegradation:
    def test_round_limit_error_carries_partial_state(self):
        from repro.errors import SimulationError

        def forever(ctx, v):
            while True:
                yield from broadcast_round(ctx, "spin", v)

        network = SynchronousNetwork(
            forever, [1, 1, 1, 1], n=4, t=0, kappa=KAPPA,
            max_rounds=5, trace=True,
        )
        with pytest.raises(SimulationError) as excinfo:
            network.run()
        error = excinfo.value
        assert error.trace is not None and len(error.trace) == 5
        assert error.stats is not None and error.stats.rounds == 5
        assert error.outputs == {}


# ---------------------------------------------------------------------------
# envelope margins: the search engine's fitness signal (satellite)
# ---------------------------------------------------------------------------


class TestEnvelopeMargins:
    def test_arithmetic_and_outlier_predicates(self):
        from repro.sim.invariants import EnvelopeMargins

        inside = EnvelopeMargins(
            bits_used=600, bit_budget=1000, rounds_used=5, round_budget=20
        )
        assert inside.bit_margin == 400
        assert inside.round_margin == 15
        assert inside.bit_fraction == pytest.approx(0.6)
        assert inside.round_fraction == pytest.approx(0.25)
        assert inside.nonnegative

        outlier = EnvelopeMargins(
            bits_used=1200, bit_budget=1000, rounds_used=5, round_budget=20
        )
        assert outlier.bit_margin == -200
        assert outlier.bit_fraction > 1.0
        assert not outlier.nonnegative

        degenerate = EnvelopeMargins(
            bits_used=0, bit_budget=0, rounds_used=0, round_budget=0
        )
        assert degenerate.bit_fraction == 0.0
        assert degenerate.nonnegative

    def test_registry_grid_stays_inside_envelopes(self):
        """Every registry protocol, on a small (n, t) x ell grid under a
        passive adversary: both margins non-negative (the budgets are
        sound), and the slack is monotone non-decreasing in ell (the
        envelopes grow at least as fast as the protocols' true cost --
        the property that makes margin *pressure* a useful search
        signal).  Weak monotonicity because ``ell_for`` clamps small
        ells for the block-family protocols."""
        from repro.sim.faults import FaultSpec
        from repro.sim.fuzz import FuzzCase, run_case_ex, standard_registry

        registry = standard_registry()
        for name in sorted(registry):
            spec = registry[name]
            for n, t in ((4, 1), (7, 2)):
                bit_margins, round_margins = [], []
                for ell in (16, 64, 256):
                    case = FuzzCase(
                        protocol=name, n=n, t=t,
                        ell=spec.ell_for(n, ell), kappa=KAPPA, spread=8,
                        adversaries=("passive",), faults=FaultSpec(),
                        seed=11,
                    )
                    failure, stats = run_case_ex(case, registry)
                    assert failure is None, (name, n, t, ell, failure.kind)
                    margins = stats.margins()
                    assert margins.nonnegative, (name, n, t, ell)
                    assert 0.0 < margins.bit_fraction < 1.0
                    bit_margins.append(margins.bit_margin)
                    round_margins.append(margins.round_margin)
                label = (name, n, t)
                assert bit_margins == sorted(bit_margins), label
                assert round_margins == sorted(round_margins), label
