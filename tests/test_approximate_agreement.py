"""Synchronous Approximate Agreement tests (companion primitive)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.aa import approximate_agreement, iterations_for, trimmed_midpoint
from repro.errors import ConfigurationError
from repro.sim import ScriptedAdversary, run_protocol

from conftest import CONFIGS, adversary_params

BOUND = 1 << 20


def aa_factory(epsilon, bound=BOUND):
    def factory(ctx, v):
        return approximate_agreement(ctx, v, epsilon, bound)

    return factory


def check_aa(inputs, result, epsilon):
    """eps-Agreement + Convex Validity for an AA execution."""
    honest_ids = [p for p in range(len(inputs)) if p not in result.corrupted]
    outputs = [result.outputs[p] for p in honest_ids]
    lo = min(inputs[p] for p in honest_ids)
    hi = max(inputs[p] for p in honest_ids)
    for out in outputs:
        assert lo <= out <= hi, f"output {out} outside [{lo}, {hi}]"
    spread = max(outputs) - min(outputs)
    assert spread <= epsilon, f"spread {spread} > eps {epsilon}"
    return outputs


class TestIterations:
    def test_iteration_count(self):
        assert iterations_for(1024, 1) == 11
        assert iterations_for(1024, 2048) == 0
        assert iterations_for(1, Fraction(1, 2)) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            iterations_for(0, 1)
        with pytest.raises(ConfigurationError):
            iterations_for(10, 0)
        with pytest.raises(ConfigurationError):
            iterations_for(10, -1)


class TestTrimmedMidpoint:
    def test_no_trim(self):
        assert trimmed_midpoint([Fraction(0), Fraction(10)], 0) == 5

    def test_trims_extremes(self):
        values = [Fraction(v) for v in (-(10**9), 4, 6, 8, 10**9)]
        assert trimmed_midpoint(values, 1) == 6

    def test_insufficient(self):
        with pytest.raises(ConfigurationError):
            trimmed_midpoint([Fraction(1), Fraction(2)], 1)


class TestApproximateAgreement:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_eps_agreement_and_validity(self, n, t, adversary):
        inputs = [100 * i for i in range(n)]
        result = run_protocol(aa_factory(1), inputs, n, t,
                              adversary=adversary)
        check_aa(inputs, result, 1)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_fine_epsilon(self, adversary):
        inputs = [0, 1000, 2000, 3000, 4000, 5000, 6000]
        eps = Fraction(1, 128)
        result = run_protocol(aa_factory(eps), inputs, 7, 2,
                              adversary=adversary)
        check_aa(inputs, result, eps)

    def test_unanimous_zero_rounds_of_drift(self):
        result = run_protocol(aa_factory(1), [500] * 7, 7, 2)
        outputs = set(result.outputs.values())
        assert outputs == {Fraction(500)}

    def test_negative_inputs(self):
        inputs = [-100, -50, 0, 50, 100, -25, 25]
        result = run_protocol(aa_factory(2), inputs, 7, 2)
        check_aa(inputs, result, 2)

    def test_input_bound_enforced(self):
        from repro.sim import Context

        ctx = Context(party_id=0, n=4, t=1)
        gen = approximate_agreement(ctx, BOUND + 1, 1, BOUND)
        with pytest.raises(ConfigurationError):
            next(gen)

    def test_diameter_halves_per_iteration(self):
        """Convergence rate 1/2: after R iterations the spread is at most
        initial_diameter / 2^R (checked via the iteration count)."""
        inputs = [0, 0, 0, 1024, 1024, 1024, 512]
        eps = 1
        result = run_protocol(aa_factory(eps, bound=1024), inputs, 7, 2)
        check_aa(inputs, result, eps)

    def test_huge_denominator_attack_rejected(self):
        """Byzantine estimates with absurd denominators must not be
        adopted (and later re-broadcast) by honest parties."""

        def handler(view, src, dst, spec):
            return Fraction(1, 3**20)  # inside range, junk denominator

        inputs = [0, 10, 20, 30, 40, 50, 60]
        result = run_protocol(
            aa_factory(1), inputs, 7, 2,
            adversary=ScriptedAdversary(handler),
        )
        outputs = check_aa(inputs, result, 1)
        # honest estimates stay dyadic:
        for out in outputs:
            d = out.denominator
            assert d & (d - 1) == 0

    def test_communication_not_inflatable(self):
        """The dyadic-shape validation keeps honest bits flat under a
        denominator-inflation adversary."""

        def handler(view, src, dst, spec):
            return Fraction(7**40 + 1, 7**40)

        inputs = [0, 10, 20, 30, 40, 50, 60]
        quiet = run_protocol(aa_factory(1), inputs, 7, 2)
        noisy = run_protocol(
            aa_factory(1), inputs, 7, 2,
            adversary=ScriptedAdversary(handler),
        )
        assert noisy.stats.honest_bits <= 1.5 * quiet.stats.honest_bits

    @given(
        st.lists(st.integers(min_value=-(2**16), max_value=2**16),
                 min_size=4, max_size=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_inputs(self, inputs, seed):
        from repro.sim import RandomGarbageAdversary

        result = run_protocol(
            aa_factory(1, bound=2**16), inputs, 4, 1,
            adversary=RandomGarbageAdversary(seed),
        )
        check_aa(inputs, result, 1)


class TestAAvsCA:
    def test_aa_cheaper_for_coarse_eps_ca_for_exactness(self):
        """The trade-off CA resolves: AA with coarse eps is cheap, but
        only CA reaches exact agreement at bounded cost."""
        from repro.core.protocol_z import protocol_z

        inputs = [1000 * i for i in range(7)]
        coarse = run_protocol(aa_factory(512, bound=8192), inputs, 7, 2)
        ca = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, 7, 2, kappa=64
        )
        assert coarse.stats.honest_bits < ca.stats.honest_bits
        # AA outputs are eps-apart; CA outputs are identical:
        assert len(set(ca.outputs.values())) == 1
