"""Reed-Solomon codec tests: roundtrips, erasures, malformed inputs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.gf import GF256
from repro.coding.reed_solomon import ReedSolomonCode, rs_code
from repro.crypto import merkle
from repro.errors import CodingError

payloads = st.binary(min_size=0, max_size=400)

#: the paper's regime: n parties, t < n/3 corruptions, k = n - t shares
#: suffice to decode (Section 3's extension protocols distribute one
#: share per party and survive t erasures).
grid_params = st.tuples(
    st.integers(min_value=4, max_value=16),       # n
    st.integers(min_value=1, max_value=5),        # t (clamped below)
    st.integers(min_value=0, max_value=96),       # payload bytes
).map(lambda p: (p[0], min(p[1], (p[0] - 1) // 3), p[2]))


class TestEncode:
    def test_share_count(self):
        code = rs_code(7, 5)
        assert len(code.encode(b"hello")) == 7

    def test_share_lengths_equal_and_predicted(self):
        code = rs_code(7, 5)
        shares = code.encode(b"x" * 123)
        lengths = {len(s) for s in shares}
        assert lengths == {code.share_length(123)}

    def test_share_length_scales_inverse_k(self):
        # share size ~ l / k symbols: doubling the payload roughly
        # doubles share length.
        code = rs_code(10, 7)
        small = code.share_length(100)
        big = code.share_length(1000)
        assert 8 <= big / small <= 12

    def test_deterministic(self):
        code = rs_code(7, 5)
        assert code.encode(b"abc") == code.encode(b"abc")

    def test_distinct_payloads_distinct_codewords(self):
        code = rs_code(7, 5)
        assert code.encode(b"abc") != code.encode(b"abd")


class TestDecode:
    @given(payloads, st.randoms(use_true_random=False))
    @settings(max_examples=50)
    def test_roundtrip_any_k_subset(self, data, rnd):
        code = rs_code(7, 5)
        shares = code.encode(data)
        subset = rnd.sample(range(7), 5)
        assert code.decode({i: shares[i] for i in subset}) == data

    @given(payloads)
    @settings(max_examples=25)
    def test_roundtrip_with_extra_shares(self, data):
        code = rs_code(7, 5)
        shares = code.encode(data)
        assert code.decode(dict(enumerate(shares))) == data

    def test_too_few_shares(self):
        code = rs_code(7, 5)
        shares = code.encode(b"data")
        with pytest.raises(CodingError):
            code.decode({i: shares[i] for i in range(4)})

    def test_inconsistent_lengths(self):
        code = rs_code(7, 5)
        shares = code.encode(b"data")
        bad = {i: shares[i] for i in range(5)}
        bad[0] = bad[0] + b"\x00\x00"
        with pytest.raises(CodingError):
            code.decode(bad)

    def test_index_out_of_range(self):
        code = rs_code(7, 5)
        shares = code.encode(b"data")
        bad = {i: shares[i] for i in range(4)}
        bad[99] = shares[4]
        with pytest.raises(CodingError):
            code.decode(bad)

    def test_non_symbol_multiple_length(self):
        code = rs_code(7, 5)
        with pytest.raises(CodingError):
            code.decode({i: b"\x01" for i in range(5)})

    def test_corrupted_share_changes_output_or_raises(self):
        # RS here is an *erasure* code: a silently corrupted share decodes
        # to garbage (or fails framing).  The Merkle layer upstream is
        # what detects corruption; this test documents the division of
        # labour.
        code = rs_code(7, 5)
        data = b"the quick brown fox jumps"
        shares = code.encode(data)
        tampered = bytearray(shares[0])
        tampered[0] ^= 0xFF
        subset = {0: bytes(tampered), 1: shares[1], 2: shares[2],
                  3: shares[3], 4: shares[4]}
        try:
            decoded = code.decode(subset)
        except CodingError:
            decoded = None
        assert decoded != data


class TestParameters:
    def test_k_greater_than_n_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomonCode(3, 4)

    def test_zero_k_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomonCode(3, 0)

    def test_n_exceeding_field_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomonCode(256, 100, field=GF256)

    def test_gf256_field_roundtrip(self):
        code = ReedSolomonCode(10, 7, field=GF256)
        data = b"gf256 works too"
        shares = code.encode(data)
        assert code.decode({i: shares[i] for i in (0, 2, 3, 5, 6, 8, 9)}) == data

    def test_n_equals_k(self):
        code = ReedSolomonCode(4, 4)
        data = b"no redundancy"
        shares = code.encode(data)
        assert code.decode(dict(enumerate(shares))) == data

    def test_k_one_replication(self):
        code = ReedSolomonCode(4, 1)
        data = b"replicated"
        shares = code.encode(data)
        for i in range(4):
            assert code.decode({i: shares[i]}) == data

    def test_rs_code_cached(self):
        assert rs_code(7, 5) is rs_code(7, 5)


class TestParameterGrid:
    """Property tests over the paper's whole (n, t, l) parameter box."""

    @given(grid_params, st.binary(min_size=0, max_size=96),
           st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_under_t_erasures(self, params, data, rnd):
        n, t, _ = params
        code = rs_code(n, n - t)
        shares = code.encode(data)
        erased = set(rnd.sample(range(n), t))
        subset = {i: shares[i] for i in range(n) if i not in erased}
        assert code.decode(subset) == data

    @given(grid_params, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_sized_payload(self, params, rnd):
        n, t, size = params
        code = rs_code(n, n - t)
        data = bytes(rnd.randrange(256) for _ in range(size))
        shares = code.encode(data)
        keep = rnd.sample(range(n), n - t)
        assert code.decode({i: shares[i] for i in keep}) == data

    @given(grid_params)
    @settings(max_examples=40, deadline=None)
    def test_share_length_bound(self, params):
        """Per-share cost is ~l/k + O(1) symbols -- the fact that makes
        the extension protocols' O(l n) totals work out."""
        n, t, size = params
        code = rs_code(n, n - t)
        symbol_bytes = 2  # GF(2^16) symbols
        per_share_symbols = code.share_length(size) // symbol_bytes
        k = n - t
        assert per_share_symbols <= -(-size // symbol_bytes) // k + (k + 2)


class TestMerkleFiltersCorruption:
    """The division of labour the codec tests only document: RS decodes
    erasures, the Merkle layer upstream turns corruption INTO erasure.
    This is exactly Section 3's share-distribution pattern."""

    KAPPA = 64

    @given(grid_params, st.binary(min_size=1, max_size=64),
           st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_garbled_shares_filtered_then_decoded(self, params, data, rnd):
        n, t, _ = params
        code = rs_code(n, n - t)
        shares = code.encode(data)
        root, witnesses = merkle.build(self.KAPPA, list(shares))

        # the adversary garbles up to t shares in transit:
        received = list(shares)
        for i in rnd.sample(range(n), t):
            garbled = bytearray(received[i])
            garbled[rnd.randrange(len(garbled))] ^= rnd.randrange(1, 256)
            received[i] = bytes(garbled)

        accepted = {
            i: received[i]
            for i in range(n)
            if merkle.verify(self.KAPPA, root, i, received[i], witnesses[i])
        }
        # every honest share verifies, every garbled share is dropped...
        assert len(accepted) >= n - t
        assert all(received[i] == shares[i] for i in accepted)
        # ...and what survives decodes to the original payload.
        assert code.decode(accepted) == data

    def test_witness_for_wrong_index_rejected(self):
        code = rs_code(5, 3)
        shares = code.encode(b"cross-wired")
        root, witnesses = merkle.build(self.KAPPA, list(shares))
        assert not merkle.verify(
            self.KAPPA, root, 0, shares[1], witnesses[1]
        )
        assert not merkle.verify(
            self.KAPPA, root, 1, shares[0], witnesses[1]
        )


class TestFraming:
    def test_empty_payload(self):
        code = rs_code(4, 3)
        shares = code.encode(b"")
        assert code.decode({0: shares[0], 1: shares[1], 3: shares[3]}) == b""

    def test_single_byte(self):
        code = rs_code(4, 3)
        shares = code.encode(b"\x00")
        assert code.decode({0: shares[0], 2: shares[2], 3: shares[3]}) == b"\x00"

    @given(st.integers(min_value=0, max_value=64))
    @settings(max_examples=20)
    def test_all_zero_payloads(self, size):
        code = rs_code(5, 3)
        data = b"\x00" * size
        shares = code.encode(data)
        assert code.decode({0: shares[0], 1: shares[1], 4: shares[4]}) == data

    def test_tampered_length_header_detected(self):
        # Build shares of a *non-codeword* by mixing two encodings; the
        # framing/padding checks catch most such mixtures.
        code = rs_code(4, 2)
        a = code.encode(b"\xff" * 40)
        b = code.encode(b"\x11" * 2)
        mixed = {0: a[0], 1: b[1]}
        try:
            decoded = code.decode(mixed)
        except CodingError:
            decoded = None
        assert decoded not in (b"\xff" * 40, b"\x11" * 2)
