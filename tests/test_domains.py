"""Domain and canonical-key tests (the BA input-space machinery)."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, strategies as st

from repro.ba.domains import (
    BIT_DOMAIN,
    bit_domain,
    bitstring_domain,
    canonical_key,
    digest_domain,
    nat_domain,
    optional_digest_domain,
)
from repro.core.bitstrings import BitString


class TestCanonicalKey:
    def test_none_sorts_first(self):
        values = [5, None, b"ab", "x", BitString(1, 2)]
        ordered = sorted(values, key=canonical_key)
        assert ordered[0] is None

    def test_total_order_over_mixed_types(self):
        values = [3, b"a", "s", (1, 2), BitString(0, 1), None, -7]
        # must not raise, and must be deterministic
        assert sorted(values, key=canonical_key) == sorted(
            values, key=canonical_key
        )

    def test_ints_ordered_numerically(self):
        assert canonical_key(2) < canonical_key(10)

    def test_bool_and_int_share_rank(self):
        assert canonical_key(True) == canonical_key(1)

    def test_bytes_lexicographic(self):
        assert canonical_key(b"aa") < canonical_key(b"ab")

    def test_bitstring_by_length_then_value(self):
        assert canonical_key(BitString(1, 2)) < canonical_key(BitString(0, 3))

    def test_nested_tuples(self):
        assert canonical_key((1, (2, b"x"))) == canonical_key((1, (2, b"x")))

    def test_unknown_type_falls_back(self):
        key = canonical_key(Fraction(1, 2))
        assert key[0] == 6

    @given(st.lists(st.one_of(st.none(), st.integers(), st.binary(),
                              st.text()), min_size=2, max_size=6))
    def test_sorting_never_raises(self, values):
        sorted(values, key=canonical_key)


class TestBitDomain:
    def test_membership(self):
        assert BIT_DOMAIN.validate(0)
        assert BIT_DOMAIN.validate(1)
        assert not BIT_DOMAIN.validate(2)
        assert not BIT_DOMAIN.validate(None)
        assert not BIT_DOMAIN.validate("1")

    def test_bool_accepted_as_bit(self):
        # bools are ints in Python; the protocols treat True as 1.
        assert BIT_DOMAIN.validate(True)

    def test_singleton_helper(self):
        assert bit_domain() is BIT_DOMAIN


class TestDigestDomains:
    def test_digest_domain(self):
        d = digest_domain(64)
        assert d.validate(b"\x00" * 8)
        assert not d.validate(b"\x00" * 7)
        assert not d.validate(None)
        assert not d.validate("x" * 8)
        assert len(d.default) == 8

    def test_optional_digest_domain(self):
        d = optional_digest_domain(64)
        assert d.validate(None)
        assert d.validate(b"\x11" * 8)
        assert not d.validate(b"\x11" * 9)
        assert d.default is None


class TestNatDomain:
    def test_unbounded(self):
        d = nat_domain()
        assert d.validate(0)
        assert d.validate(10**100)
        assert not d.validate(-1)
        assert not d.validate(True)
        assert not d.validate(1.5)

    def test_bounded(self):
        d = nat_domain(max_bits=8)
        assert d.validate(255)
        assert not d.validate(256)

    def test_validate_never_raises(self):
        d = nat_domain()

        class Weird:
            def __lt__(self, other):
                raise RuntimeError("boom")

        assert not d.validate(Weird())


class TestBitstringDomain:
    def test_any_length(self):
        d = bitstring_domain()
        assert d.validate(BitString(0, 0))
        assert d.validate(BitString(5, 3))
        assert not d.validate("101")

    def test_exact_length(self):
        d = bitstring_domain(4)
        assert d.validate(BitString(5, 4))
        assert not d.validate(BitString(5, 5))
        assert d.default == BitString(0, 4)
