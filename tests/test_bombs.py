"""Payload-bomb plane: quarantine accounting, canaries, no-crash invariant.

Three pillars of the hostile-payload hardening plane:

1. **Byte-identity** -- arming the guards must not change a single bit
   of honest executions: outputs, ``honest_bits``, rounds, and the
   whole stats document are equal with guards on and off, for every
   registry protocol, on both the zero-fault fast path (plain
   :class:`PassiveAdversary`) and the general path (a spec-following
   subclass whose corrupted traffic the guard actually inspects).
2. **Grid canary** -- every bomb class is survived by every registry
   protocol at ``(n, t) in {(4, 1), (7, 2)}``: honest parties terminate
   with convex-valid agreed outputs under the full monitor stack.
3. **No-crash meta-invariant** -- an honest party crashed by byzantine
   input surfaces as :class:`~repro.errors.HonestPartyError` (with
   party/round/inbox attribution), becomes a first-class shrinkable
   fuzz failure, and is *prevented* by the guards on the same case.
"""

from __future__ import annotations

import pytest

from repro.errors import HonestPartyError
from repro.perf import counters
from repro.sim.adversary import Adversary, PassiveAdversary
from repro.sim.bombs import (
    BOMB_CATALOG,
    DeepNestAdversary,
    NearValidMutantAdversary,
    OversizeBlobAdversary,
    TypeConfusionAdversary,
    deep_nest,
)
from repro.sim.faults import FaultSpec
from repro.sim.fuzz import (
    FuzzCase,
    ProtocolSpec,
    decode_payload,
    encode_payload,
    run_case,
    run_case_ex,
    sample_case_at,
    shrink_failure,
    standard_registry,
)
from repro.sim.invariants import (
    AgreementMonitor,
    ConvexValidityMonitor,
    paper_bit_budget,
    paper_round_budget,
)
from repro.sim.party import broadcast_round
from repro.sim.runner import run_protocol
from repro.sim.wire import WireLimits

KAPPA = 64


def _grid_inputs(n: int) -> list[int]:
    return [(7 * i + 3) % 13 for i in range(n)]


class _SpecFollowingCorruptions(PassiveAdversary):
    """Spec-following, but as a *subclass*: forces the general path.

    The fast path requires ``type(adversary) is PassiveAdversary``
    exactly, so this adversary's (identical) corrupted traffic flows
    through the byzantine delivery loop where the guard inspects it.
    """


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(standard_registry()))
    @pytest.mark.parametrize(
        "adversary_cls", [PassiveAdversary, _SpecFollowingCorruptions]
    )
    def test_guards_do_not_change_honest_executions(
        self, name, adversary_cls
    ):
        registry = standard_registry()
        spec = registry[name]
        n, t = 4, 1
        ell = spec.ell_for(n, 8)
        inputs = _grid_inputs(n)
        limits = WireLimits.from_envelopes(n, t, ell, KAPPA)
        results = []
        for guards in (None, limits):
            results.append(
                run_protocol(
                    spec.build(ell), inputs, n=n, t=t, kappa=KAPPA,
                    adversary=adversary_cls(seed=0), guards=guards,
                )
            )
        off, on = results
        assert on.outputs == off.outputs
        assert on.stats.honest_bits == off.stats.honest_bits
        assert on.stats.rounds == off.stats.rounds
        assert on.stats.summary_dict() == off.stats.summary_dict()
        assert on.stats.quarantined_messages == 0
        assert on.stats.rejected_bits == 0
        assert on.quarantine_log == []

    def test_fast_path_never_consults_the_guard(self):
        registry = standard_registry()
        spec = registry["pi_n"]
        limits = WireLimits.from_envelopes(4, 1, 8, KAPPA)
        with counters.capture() as captured:
            run_protocol(
                spec.build(8), _grid_inputs(4), n=4, t=1, kappa=KAPPA,
                adversary=PassiveAdversary(seed=0), guards=limits,
            )
        assert "guard_checks" not in captured
        assert "guard_quarantined" not in captured

    def test_general_path_checks_but_quarantines_nothing_honest(self):
        registry = standard_registry()
        spec = registry["pi_n"]
        limits = WireLimits.from_envelopes(4, 1, 8, KAPPA)
        with counters.capture() as captured:
            result = run_protocol(
                spec.build(8), _grid_inputs(4), n=4, t=1, kappa=KAPPA,
                adversary=_SpecFollowingCorruptions(seed=0), guards=limits,
            )
        assert captured.get("guard_checks", 0) > 0
        assert captured.get("guard_quarantined", 0) == 0
        assert result.stats.quarantined_messages == 0


class TestBombGridCanary:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    @pytest.mark.parametrize("bomb", sorted(BOMB_CATALOG))
    def test_every_protocol_survives_every_bomb(self, n, t, bomb):
        registry = standard_registry()
        for index, name in enumerate(sorted(registry)):
            spec = registry[name]
            case = FuzzCase(
                protocol=name,
                n=n,
                t=t,
                ell=spec.ell_for(n, 8),
                kappa=KAPPA,
                spread="spread",
                adversaries=(bomb,),
                faults=FaultSpec(),
                seed=1000 * n + index,
                guards=True,
            )
            failure = run_case(case, registry)
            assert failure is None, (
                f"{name} vs {bomb} at (n={n}, t={t}): "
                f"{failure and failure.kind}: {failure and failure.message}"
            )


class _Firehose(Adversary):
    """The acceptance canary: 64 MiB blobs + depth-1000 nests + mutants.

    One corrupted party cycles through the three attack phases by round:
    guard-stopped bombs (blob, nest) and guard-passing near-valid
    mutants that honest protocol logic must reject without raising.
    """

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.blob = bytes(64 * 1024 * 1024)
        self.nest = deep_nest(1000)
        self._mutant = NearValidMutantAdversary(seed)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return {n - 1}

    def deliver(self, view):
        out = {}
        phase = view.round_index % 3
        if phase == 2:
            for (src, dst), payload in sorted(view.spec_outgoing.items()):
                out[(src, dst)] = self._mutant._mutate(payload)
            return out
        payload = self.blob if phase == 0 else self.nest
        for src in sorted(view.corrupted):
            for dst in range(view.n):
                out[(src, dst)] = payload
        return out


class TestFirehoseCanary:
    @pytest.mark.parametrize("name", sorted(standard_registry()))
    def test_honest_parties_terminate_convex_valid(self, name):
        registry = standard_registry()
        spec = registry[name]
        n, t = 4, 1
        ell = spec.ell_for(n, 8)
        inputs = _grid_inputs(n)
        result = run_protocol(
            spec.build(ell), inputs, n=n, t=t, kappa=KAPPA,
            adversary=_Firehose(seed=2),
            monitors=[AgreementMonitor(), ConvexValidityMonitor()],
            guards=WireLimits.from_envelopes(n, t, ell, KAPPA),
        )
        honest = sorted(set(range(n)) - result.corrupted)
        outputs = [result.outputs[party] for party in honest]
        low = min(inputs[party] for party in honest)
        high = max(inputs[party] for party in honest)
        assert len(set(outputs)) == 1
        assert low <= outputs[0] <= high
        # the blob/nest rounds were quarantined and accounted -- on the
        # overhead fields, never on the honest BITS_l measure.
        assert result.stats.quarantined_messages > 0
        assert result.stats.rejected_bits > result.stats.honest_bits
        assert result.quarantine_log
        assert {reason for _, _, _, reason in result.quarantine_log} <= {
            "type", "depth", "oversize", "ceiling"
        }


# -- the no-crash meta-invariant --------------------------------------------


def _fragile_protocol(ctx, value):
    """Trusts its inbox: crashes on any non-int payload."""
    inbox = yield from broadcast_round(ctx, "vals", value)
    for payloadload in [inbox[k] for k in sorted(inbox)]:
        if not isinstance(payloadload, int):
            raise TypeError(
                f"unexpected {type(payloadload).__name__} on the wire"
            )
    return min(inbox.values())


def _fragile_registry():
    return {
        "fragile": ProtocolSpec(
            name="fragile",
            build=lambda ell: (lambda ctx, v: _fragile_protocol(ctx, v)),
            bit_budget=paper_bit_budget,
            round_budget=paper_round_budget,
        )
    }


def _fragile_case(guards: bool) -> FuzzCase:
    return FuzzCase(
        protocol="fragile",
        n=4,
        t=1,
        ell=8,
        kappa=KAPPA,
        spread="spread",
        adversaries=("bomb_type",),
        faults=FaultSpec(),
        seed=3,
        guards=guards,
    )


class _StrBomb(Adversary):
    def deliver(self, view):
        return {
            (src, dst): "boom"
            for src in sorted(view.corrupted)
            for dst in range(view.n)
        }


class TestNoCrashMetaInvariant:
    def test_honest_crash_is_wrapped_with_attribution(self):
        with pytest.raises(HonestPartyError) as excinfo:
            run_protocol(
                lambda ctx, v: _fragile_protocol(ctx, v),
                _grid_inputs(4), n=4, t=1, kappa=KAPPA,
                adversary=_StrBomb(seed=0),
            )
        error = excinfo.value
        assert 0 <= error.party < 4
        assert error.round_index >= 0
        assert error.inbox_digest and len(error.inbox_digest) == 16
        assert "TypeError" in str(error)
        assert isinstance(error.__cause__, TypeError)

    def test_unguarded_type_confusion_is_a_fuzz_failure(self):
        failure, stats = run_case_ex(
            _fragile_case(guards=False), _fragile_registry()
        )
        assert failure is not None
        assert failure.kind == "HonestPartyError"
        assert not failure.budgeted
        assert failure.script  # the hostile payloads were recorded

    def test_guards_prevent_the_same_crash(self):
        failure = run_case(_fragile_case(guards=True), _fragile_registry())
        assert failure is None

    def test_honest_party_failures_shrink(self):
        registry = _fragile_registry()
        failure = run_case(_fragile_case(guards=False), registry)
        shrunk = shrink_failure(failure, registry, max_runs=120)
        assert shrunk.kind == "HonestPartyError"
        assert shrunk.shrunk
        assert len(shrunk.script) <= len(failure.script)
        assert len(shrunk.script) >= 1


class TestBombCodec:
    def test_float_and_set_payloads_round_trip(self):
        for payload in [
            3.5,
            float("inf"),
            {1, 2, 3},
            ("VOTE", 1.25, {4, 5}),
            {"witness": {0.5}},
            [b"x", 3.5, None],
        ]:
            assert decode_payload(encode_payload(payload)) == payload

    def test_type_confusion_payloads_are_encodable(self):
        adversary = TypeConfusionAdversary(9)
        for maker in adversary._MAKERS:
            payload = maker(adversary.rng)
            assert decode_payload(encode_payload(payload)) == payload

    def test_bomb_sampling_preserves_the_bombless_prefix(self):
        registry = standard_registry()
        for index in range(6):
            plain = sample_case_at(42, index, registry)
            bombed = sample_case_at(42, index, registry, bombs=True)
            assert not plain.guards
            assert bombed.guards
            assert plain.adversaries == (
                bombed.adversaries[: len(plain.adversaries)]
            )
            extra = bombed.adversaries[len(plain.adversaries):]
            assert 1 <= len(extra) <= 2
            assert set(extra) <= set(BOMB_CATALOG)
            assert (plain.seed, plain.faults, plain.spread) == (
                bombed.seed, bombed.faults, bombed.spread
            )

    def test_bomb_adversaries_are_seed_deterministic(self):
        for name, build in sorted(BOMB_CATALOG.items()):
            first, second = build(5), build(5)
            assert type(first) is type(second), name

    def test_blob_and_nest_shapes(self):
        blob = OversizeBlobAdversary(seed=1, blob_bytes=128)
        assert len(blob.blob) == 128
        nest = DeepNestAdversary(seed=1, depth=10)
        probe, depth = nest.nest, 0
        while isinstance(probe, tuple):
            probe, depth = probe[0], depth + 1
        assert depth == 10
