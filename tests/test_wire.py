"""Wire-guard unit tests: bounds, verdicts, ceilings, digests.

The guards exist to make the robustness plane's promise concrete: a
byzantine payload can be discarded with *bounded* work and attributed
to its sender, while every honest message shape in the registry passes
with a wide margin.  These tests pin the measurer's pricing, the
verdict taxonomy, the per-round ceiling, and the digest stability the
fuzz plane's error attribution relies on.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.bombs import deep_nest
from repro.sim.wire import (
    DEFAULT_MAX_DEPTH,
    QUARANTINE_REASONS,
    WireGuard,
    WireLimits,
    conformance_failures,
    inbox_digest,
    measure_payload,
)


class TestMeasurePayload:
    def test_conforming_atoms(self):
        for payload, expected in [
            (None, 1),
            (True, 1),
            (0, 1),
            (5, 3),
            (-5, 4),
            (b"abc", 24),
            ("tag", 8),
        ]:
            reason, bits = measure_payload(payload, max_bits=1 << 20)
            assert reason is None, payload
            assert bits == expected, payload

    def test_containers_price_their_leaves(self):
        reason, bits = measure_payload((1, 2, b"ab"), max_bits=1 << 20)
        assert reason is None
        assert bits == 1 + 2 + 16

    def test_oversize_verdict_fires_early(self):
        blob = bytes(1 << 20)
        reason, bits = measure_payload(blob, max_bits=1024)
        assert reason == "oversize"
        # the blob is priced from len() in O(1), not by walking bytes.
        assert bits == 8 * len(blob)

    def test_depth_verdict(self):
        nest = deep_nest(DEFAULT_MAX_DEPTH + 1)
        reason, _ = measure_payload(nest, max_bits=1 << 20)
        assert reason == "depth"

    def test_depth_at_cap_is_allowed(self):
        nest = deep_nest(DEFAULT_MAX_DEPTH)
        reason, _ = measure_payload(nest, max_bits=1 << 20)
        assert reason is None

    def test_extreme_depth_costs_bounded_work(self):
        # depth-100000 would blow any recursive walker; the iterative
        # measurer exits after max_depth + 1 pops.
        nest = deep_nest(100_000)
        reason, _ = measure_payload(nest, max_bits=1 << 20, max_depth=32)
        assert reason == "depth"

    def test_type_verdict_on_unpriceable_values(self):
        for payload in [3.5, {1, 2}, object(), ("VOTE", 1.25)]:
            reason, _ = measure_payload(payload, max_bits=1 << 20)
            assert reason == "type", payload

    def test_wire_bits_hook_is_honoured(self):
        class Priced:
            def wire_bits(self):
                return 12

        class Liar:
            def wire_bits(self):
                raise RuntimeError("boom")

        assert measure_payload(Priced(), max_bits=1 << 20) == (None, 12)
        assert measure_payload(Liar(), max_bits=1 << 20)[0] == "type"

    def test_verdicts_stay_in_the_closed_set(self):
        hostile = [bytes(1 << 16), deep_nest(1000), 2.5, {"k": {1}}]
        for payload in hostile:
            reason, _ = measure_payload(payload, max_bits=256, max_depth=8)
            assert reason in QUARANTINE_REASONS


class TestWireLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            WireLimits(max_message_bits=0)
        with pytest.raises(ValueError):
            WireLimits(max_message_bits=10, max_depth=0)
        with pytest.raises(ValueError):
            WireLimits(max_message_bits=10, max_round_bits=-1)

    def test_from_envelopes_scales_with_parameters(self):
        small = WireLimits.from_envelopes(4, 1, 8, 64)
        large = WireLimits.from_envelopes(7, 2, 4096, 128)
        assert small.max_message_bits < large.max_message_bits
        assert small.max_round_bits == 4 * small.max_message_bits

    def test_envelope_bound_admits_whole_values(self):
        # high-cost baselines ship whole ell-bit values; the derived
        # per-message bound must clear them by a wide margin.
        limits = WireLimits.from_envelopes(7, 2, 4096, 128)
        value = (1 << 4096) - 1
        reason, _ = measure_payload(
            value, max_bits=limits.max_message_bits
        )
        assert reason is None


class TestWireGuard:
    def test_clean_traffic_charges_the_ceiling(self):
        guard = WireGuard(WireLimits(max_message_bits=64, max_round_bits=100))
        assert guard.check(0, 1, b"abc") == (None, 24)
        assert guard.check(0, 1, b"abcd") == (None, 32)
        # 24 + 32 + 48 > 100: the third message trips the ceiling.
        assert guard.check(0, 1, b"abcdef")[0] == "ceiling"

    def test_ceiling_is_per_sender(self):
        guard = WireGuard(WireLimits(max_message_bits=64, max_round_bits=30))
        assert guard.check(0, 1, b"abc")[0] is None
        assert guard.check(0, 2, b"abc")[0] is None
        assert guard.check(0, 1, b"abc")[0] == "ceiling"

    def test_ceiling_resets_per_round(self):
        guard = WireGuard(WireLimits(max_message_bits=64, max_round_bits=30))
        assert guard.check(0, 1, b"abc")[0] is None
        assert guard.check(1, 1, b"abc")[0] is None

    def test_quarantined_message_does_not_charge_ceiling(self):
        guard = WireGuard(WireLimits(max_message_bits=32, max_round_bits=40))
        assert guard.check(0, 1, b"abcdef")[0] == "oversize"
        # the rejected 48 bits did not consume the sender's budget:
        # 32 + 8 = 40 still fits under the ceiling.
        assert guard.check(0, 1, b"abcd") == (None, 32)
        assert guard.check(0, 1, b"a") == (None, 8)


class TestConformance:
    def test_classic_garbage_is_priceable(self):
        # every payload the classic RandomGarbageAdversary emits must be
        # measurable (they are ints/bytes/strs/tuples), though large
        # ones may legitimately exceed tight bounds.
        from repro.sim.adversary import RandomGarbageAdversary

        adversary = RandomGarbageAdversary(seed=7)
        rng = random.Random(7)
        payloads = [maker(rng) for maker in adversary._makers for _ in (0, 1)]
        limits = WireLimits.from_envelopes(7, 2, 128, 64)
        for index, reason, _ in conformance_failures(payloads, limits):
            assert reason != "type", payloads[index]

    def test_reports_index_reason_bits(self):
        limits = WireLimits(max_message_bits=16, max_depth=2)
        failures = conformance_failures(
            [b"ok", bytes(10), ((((1,),),),), 1.5], limits
        )
        assert [(i, r) for i, r, _ in failures] == [
            (1, "oversize"), (2, "depth"), (3, "type"),
        ]


class TestInboxDigest:
    def test_stable_and_sender_sensitive(self):
        inbox = {0: (1, 2), 3: b"xy"}
        assert inbox_digest(inbox) == inbox_digest(dict(inbox))
        assert inbox_digest(inbox) != inbox_digest({0: (1, 2), 4: b"xy"})
        assert len(inbox_digest(inbox)) == 16

    def test_survives_hostile_payloads(self):
        # repr() of these would recurse or be enormous; the digest must
        # not touch repr at all.
        inbox = {0: deep_nest(5000), 1: bytes(1 << 20), 2: {1.5}}
        assert len(inbox_digest(inbox)) == 16
