"""Turpin-Coan reduction tests (alternative PI_BA / ablation substrate)."""

from __future__ import annotations

import pytest

from repro.ba.domains import nat_domain
from repro.ba.turpin_coan import turpin_coan
from repro.sim import run_protocol

from conftest import CONFIGS, adversary_params

NAT = nat_domain()


def factory(ctx, v):
    return turpin_coan(ctx, v, NAT)


class TestValidity:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous(self, n, t, adversary):
        result = run_protocol(factory, [123456] * n, n, t,
                              adversary=adversary)
        assert result.common_output() == 123456


class TestAgreement:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_mixed(self, adversary):
        inputs = [10, 20, 30, 40, 50, 60, 70]
        result = run_protocol(factory, inputs, 7, 2, adversary=adversary)
        result.common_output()


class TestIntrusionTolerance:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_output_is_honest_or_bottom(self, adversary):
        inputs = [10, 20, 30, 40, 50, 60, 70]
        result = run_protocol(factory, inputs, 7, 2, adversary=adversary)
        out = result.common_output()
        honest = {inputs[p] for p in range(7) if p not in result.corrupted}
        assert out is None or out in honest


class TestStrongPreAgreement:
    def test_full_honest_quorum_delivers(self):
        """n - t honest parties with the same value always deliver it
        (stronger than needed: every honest sees n - t copies)."""
        inputs = [9] * 5 + [1, 2]
        result = run_protocol(factory, inputs, 7, 2)
        assert result.common_output() == 9

    def test_invalid_input_coerced(self):
        result = run_protocol(
            lambda ctx, v: turpin_coan(ctx, v, NAT), ["junk"] * 4, 4, 1
        )
        assert result.common_output() == NAT.default
