"""Parallel-composition combinator tests."""

from __future__ import annotations

import pytest

from repro.baselines import broadcast_ca, parallel_broadcast_ca
from repro.ba import BIT_DOMAIN, nat_domain, phase_king
from repro.sim import (
    RandomGarbageAdversary,
    ScriptedAdversary,
    run_parallel,
    run_protocol,
)

from conftest import adversary_params, assert_convex

KAPPA = 64


class TestRunParallel:
    def test_two_phase_kings_concurrently(self):
        """Two independent BA instances in parallel: both outputs
        correct, rounds equal to ONE instance's."""

        def factory(ctx, pair):
            results = yield from run_parallel(
                "par",
                [
                    phase_king(ctx, pair[0], nat_domain()),
                    phase_king(ctx, pair[1], BIT_DOMAIN),
                ],
            )
            return tuple(results)

        inputs = [(42, 1)] * 4
        result = run_protocol(factory, inputs, 4, 1, kappa=KAPPA)
        assert result.common_output() == (42, 1)
        single = run_protocol(
            lambda ctx, v: phase_king(ctx, v, nat_domain()),
            [42] * 4, 4, 1, kappa=KAPPA,
        )
        assert result.stats.rounds == single.stats.rounds

    def test_unequal_branch_lengths(self):
        """Branches finishing at different rounds are handled."""
        from repro.sim.party import broadcast_round

        def short(ctx, v):
            inbox = yield from broadcast_round(ctx, "s", v)
            return sorted(
                x for x in inbox.values() if isinstance(x, int)
            )[0]

        def long(ctx, v):
            total = v
            for _ in range(3):
                inbox = yield from broadcast_round(ctx, "l", total)
                total = max(
                    (x for x in inbox.values() if isinstance(x, int)),
                    default=total,
                )
            return total

        def factory(ctx, v):
            results = yield from run_parallel(
                "mix", [short(ctx, v), long(ctx, v)]
            )
            return tuple(results)

        result = run_protocol(factory, [1, 2, 3, 4], 4, 1, kappa=KAPPA)
        first, second = result.common_output()
        assert first == 1  # min of honest+spec values
        assert second >= 3
        assert result.stats.rounds == 3  # max, not sum

    def test_empty_branch_list(self):
        def factory(ctx, v):
            results = yield from run_parallel("none", [])
            return results

        result = run_protocol(factory, [0] * 4, 4, 1, kappa=KAPPA)
        assert result.common_output() == []

    def test_byzantine_envelopes_dropped(self):
        """Malformed envelopes must not crash or leak across branches."""

        def handler(view, src, dst, spec):
            return "not-an-envelope"

        def factory(ctx, v):
            results = yield from run_parallel(
                "par", [phase_king(ctx, v, nat_domain())]
            )
            return results[0]

        result = run_protocol(
            factory, [9] * 4, 4, 1, kappa=KAPPA,
            adversary=ScriptedAdversary(handler),
        )
        assert result.common_output() == 9

    def test_cross_branch_injection_isolated(self):
        """An envelope targeting branch 1 must not reach branch 0."""

        def handler(view, src, dst, spec):
            return {1: 10**9}  # branch 1 does not exist

        def factory(ctx, v):
            results = yield from run_parallel(
                "par", [phase_king(ctx, v, nat_domain())]
            )
            return results[0]

        result = run_protocol(
            factory, [5] * 4, 4, 1, kappa=KAPPA,
            adversary=ScriptedAdversary(handler),
        )
        assert result.common_output() == 5


class TestParallelBroadcastCA:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_properties(self, adversary):
        inputs = [100, 105, 103, 101, 104, 102, 106]
        result = run_protocol(
            lambda ctx, v: parallel_broadcast_ca(ctx, v),
            inputs, 7, 2, kappa=KAPPA, adversary=adversary,
        )
        assert_convex(inputs, result)

    def test_rounds_collapse_vs_sequential(self):
        inputs = [10, 20, 30, 40]
        seq = run_protocol(
            lambda ctx, v: broadcast_ca(ctx, v), inputs, 4, 1, kappa=KAPPA
        )
        par = run_protocol(
            lambda ctx, v: parallel_broadcast_ca(ctx, v),
            inputs, 4, 1, kappa=KAPPA,
        )
        assert par.common_output() == seq.common_output()
        assert par.stats.rounds * 3 <= seq.stats.rounds

    def test_communication_unchanged_up_to_envelopes(self):
        inputs = [10, 20, 30, 40]
        seq = run_protocol(
            lambda ctx, v: broadcast_ca(ctx, v), inputs, 4, 1, kappa=KAPPA
        )
        par = run_protocol(
            lambda ctx, v: parallel_broadcast_ca(ctx, v),
            inputs, 4, 1, kappa=KAPPA,
        )
        # envelope index overhead only: within a few percent.
        assert par.stats.honest_bits <= 1.1 * seq.stats.honest_bits

    def test_garbage_robust(self):
        inputs = [7, 8, 9, 10]
        result = run_protocol(
            lambda ctx, v: parallel_broadcast_ca(ctx, v),
            inputs, 4, 1, kappa=KAPPA,
            adversary=RandomGarbageAdversary(3),
        )
        assert_convex(inputs, result)
