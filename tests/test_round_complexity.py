"""Exact and bounded round-complexity checks per protocol.

The paper states round complexities symbolically (in units of
``ROUNDS(PI_BA)``); with Phase-King as the instantiated ``PI_BA`` every
bound becomes a concrete number we can pin down, which catches protocols
silently adding rounds during refactors.
"""

from __future__ import annotations

import math

import pytest

from repro.ba import BIT_DOMAIN, ba_plus, ext_ba_plus, nat_domain, phase_king
from repro.ba.phase_king import phase_king_rounds
from repro.core.fixed_length import fixed_length_ca
from repro.core.high_cost_ca import high_cost_ca
from repro.core.protocol_z import protocol_z
from repro.sim import run_protocol

from conftest import CONFIGS

KAPPA = 64


class TestExactRounds:
    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_phase_king(self, n, t):
        result = run_protocol(
            lambda ctx, v: phase_king(ctx, v, nat_domain()),
            list(range(n)), n, t, kappa=KAPPA,
        )
        assert result.stats.rounds == phase_king_rounds(t)

    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_high_cost_ca(self, n, t):
        result = run_protocol(
            lambda ctx, v: high_cost_ca(ctx, v),
            list(range(n)), n, t, kappa=KAPPA,
        )
        assert result.stats.rounds == 2 + 4 * (t + 1)

    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_ba_plus_non_bottom_path(self, n, t):
        """Unanimous inputs: 2 exchange rounds + exactly 2 BA calls
        (agreement on `a` + confirmation) -- early termination."""
        value = b"\x55" * (KAPPA // 8)
        result = run_protocol(
            lambda ctx, v: ba_plus(ctx, v), [value] * n, n, t, kappa=KAPPA
        )
        assert result.stats.rounds == 2 + 2 * phase_king_rounds(t)

    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_ba_plus_bottom_path(self, n, t):
        """All-distinct inputs: the full 4 BA calls are exercised."""
        inputs = [bytes([i + 1]) * (KAPPA // 8) for i in range(n)]
        result = run_protocol(
            lambda ctx, v: ba_plus(ctx, v), inputs, n, t, kappa=KAPPA
        )
        assert result.stats.rounds == 2 + 4 * phase_king_rounds(t)

    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_ext_ba_plus_agreeing(self, n, t):
        """Theorem 1: O(1) + ROUNDS(PI_BA+): +2 distributing rounds."""
        payload = b"\x42" * 100
        result = run_protocol(
            lambda ctx, v: ext_ba_plus(ctx, v), [payload] * n, n, t,
            kappa=KAPPA,
        )
        assert result.stats.rounds == 2 + 2 * phase_king_rounds(t) + 2

    def test_ext_ba_plus_bottom_skips_distribution(self):
        n, t = 7, 2
        inputs = [bytes([i + 1]) * 100 for i in range(n)]
        result = run_protocol(
            lambda ctx, v: ext_ba_plus(ctx, v), inputs, n, t, kappa=KAPPA
        )
        assert result.stats.rounds == 2 + 4 * phase_king_rounds(t)


class TestBoundedRounds:
    @pytest.mark.parametrize("ell", [16, 64, 256])
    def test_fixed_length_ca_log_ell_iterations(self, ell):
        """Theorem 2: at most ceil(log2 ell) + 1 PI_lBA+ invocations,
        each of at most 2 + 4 R_BA + 2 rounds, plus AddLastBit and
        GetOutput."""
        n, t = 4, 1
        r_ba = phase_king_rounds(t)
        iterations = math.ceil(math.log2(ell)) + 1
        per_iteration = 2 + 4 * r_ba + 2
        bound = iterations * per_iteration + r_ba + (1 + r_ba)
        inputs = [i * (2**ell // 8 + 1) % 2**ell for i in range(n)]
        result = run_protocol(
            lambda ctx, v: fixed_length_ca(ctx, v, ell),
            inputs, n, t, kappa=KAPPA,
        )
        assert result.stats.rounds <= bound

    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_pi_z_n_log_n(self, n, t):
        """Corollary 2 shape: rounds = O(n log n) with a deterministic
        quadratic-style PI_BA; generous constant."""
        inputs = [1000 + i for i in range(n)]
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, n, t, kappa=KAPPA
        )
        assert result.stats.rounds <= 60 * n * math.log2(max(2, n))

    def test_pi_z_rounds_independent_of_ell(self):
        """At fixed n, the round count does not grow with ell in the
        blocks regime (O(log n) iterations)."""
        n, t = 4, 1
        short = run_protocol(
            lambda ctx, v: protocol_z(ctx, v),
            [(1 << 100) + i for i in range(n)], n, t, kappa=KAPPA,
        )
        long = run_protocol(
            lambda ctx, v: protocol_z(ctx, v),
            [(1 << 6400) + i for i in range(n)], n, t, kappa=KAPPA,
        )
        assert long.stats.rounds == short.stats.rounds


class TestScale:
    def test_n16_end_to_end(self):
        """One larger-scale sanity run: n=16, t=5."""
        n, t = 16, 5
        inputs = [10**6 + 17 * i for i in range(n)]
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, n, t, kappa=KAPPA
        )
        value = result.common_output()
        honest = [inputs[p] for p in range(n) if p not in result.corrupted]
        assert min(honest) <= value <= max(honest)
