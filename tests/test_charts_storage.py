"""ASCII chart and measurement-storage tests."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Measurement,
    ascii_chart,
    load_measurements,
    save_measurements,
    series_chart,
)


def make_measurement(protocol="p", ell=100, bits=1000, **kwargs):
    defaults = dict(
        protocol=protocol, n=4, t=1, ell=ell, kappa=64, bits=bits,
        rounds=10, messages=20, output=5,
    )
    defaults.update(kwargs)
    return Measurement(**defaults)


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [1, 10, 100],
            {"linear": [1, 10, 100], "quadratic": [1, 100, 10000]},
            width=30, height=8,
        )
        assert "o = linear" in chart
        assert "x = quadratic" in chart
        assert chart.count("\n") >= 8

    def test_markers_placed(self):
        chart = ascii_chart([1, 100], {"s": [1, 100]}, width=20, height=5)
        assert "o" in chart

    def test_overlap_marker(self):
        chart = ascii_chart(
            [1, 100], {"a": [1, 100], "b": [1, 100]}, width=20, height=5
        )
        assert "?" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart([], {}, width=10, height=5)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [1, 2]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [0, 2]})

    def test_series_chart_from_measurements(self):
        series = {
            "pi_z": [make_measurement(ell=100, bits=1000),
                     make_measurement(ell=1000, bits=5000)],
            "base": [make_measurement(ell=100, bits=2000),
                     make_measurement(ell=1000, bits=50000)],
        }
        chart = series_chart(series)
        assert "honest bits" in chart
        assert "ell (input bits)" in chart

    def test_series_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            series_chart({})


class TestStorage:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.json"
        originals = [
            make_measurement(protocol="pi_z", ell=256, bits=1234,
                             channel_bits={"a/b": 7}),
            make_measurement(protocol="base", ell=512, bits=9999),
        ]
        save_measurements(path, originals)
        loaded = load_measurements(path)
        assert len(loaded) == 2
        assert loaded[0].protocol == "pi_z"
        assert loaded[0].bits == 1234
        assert loaded[0].channel_bits == {"a/b": 7}
        assert loaded[1].ell == 512

    def test_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other", "measurements": []}')
        with pytest.raises(ValueError):
            load_measurements(path)

    def test_not_json_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_measurements(path)

    def test_empty_document(self, tmp_path):
        path = tmp_path / "empty.json"
        save_measurements(path, [])
        assert load_measurements(path) == []


class TestCliIntegration:
    def test_sweep_save(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "sweep.json"
        code = main([
            "sweep", "--protocol", "high_cost_ca", "--n", "4",
            "--ells", "64,128", "--save", str(target),
        ])
        assert code == 0
        loaded = load_measurements(target)
        assert [m.ell for m in loaded] == [64, 128]

    def test_compare_chart(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "--n", "4", "--ells", "128,512",
            "--protocols", "high_cost_ca", "--chart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "log scale" in out
