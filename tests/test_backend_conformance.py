"""Differential conformance: the numpy backend vs the python oracle.

The vectorized (``"numpy"``) kernels in :mod:`repro.coding.gf`,
:mod:`repro.coding.reed_solomon` and :mod:`repro.crypto.merkle` promise
to be **byte-identical** to the pure-python scalar reference -- same
outputs, same wire bits, same deterministic counter deltas.  This suite
proves it differentially:

* every protocol of the analysis registry (``PI_Z`` through the
  broadcast baselines), plus ``PI_BA+``/``PI_lBA+`` and the
  asynchronous AA layer, executed under both backends on an
  ``(n, t, ell, seed)`` grid;
* sampled resilience-plane cases (lossy links + crash/restart, and the
  partial-synchrony axes) through the fuzz executor;
* a parallel ``run_many`` fuzz campaign, checking that pool workers are
  pinned to the parent's backend;
* seeded property tests for the GF kernels against the scalar
  reference -- including the all-zero rows/columns the log/exp tables
  cannot represent directly -- and RS encode -> erase -> decode
  round-trips;
* the decode-matrix cache regression: the process-wide memo must key on
  the *full* code parameters, not just the index tuple.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.analysis.experiments import measure
from repro.asynchrony import AsyncApproximateAgreement, AsyncNetwork
from repro.ba.ba_plus import ba_plus
from repro.ba.ext_ba_plus import ext_ba_plus
from repro.coding.gf import GF256, GF65536
from repro.coding.reed_solomon import (
    ReedSolomonCode,
    clear_decode_matrix_cache,
)
from repro.perf import config, counters
from repro.sim import run_protocol
from repro.sim.fuzz import run_case_ex, sample_case, standard_registry

requires_numpy = pytest.mark.skipif(
    not config.numpy_available(),
    reason="numpy backend not installed; nothing to compare against",
)

BACKENDS = ("python", "numpy")
FIELDS = (GF256, GF65536)
KAPPA = 64


def run_on(backend, fn):
    """Run ``fn`` cold under one backend: fresh caches, zeroed counters.

    Returns ``(value, counter_snapshot)`` -- the pair the differential
    assertions compare across backends.
    """
    with config.use_backend(backend):
        config.reset_process_caches()
        counters.reset()
        value = fn()
        return value, counters.snapshot()


def assert_identical(fn, normalise=lambda value: value):
    """Assert ``fn`` is observable-identical under every backend.

    The python backend is the oracle; every other backend must produce
    the same normalised value *and* the same counter snapshot.
    """
    reference, ref_counts = run_on(BACKENDS[0], fn)
    reference = normalise(reference)
    for backend in BACKENDS[1:]:
        value, counts = run_on(backend, fn)
        assert normalise(value) == reference, f"{backend} output diverged"
        assert counts == ref_counts, f"{backend} counters diverged"
    return reference


def comparable(result):
    """Everything observable about an execution except wall time."""
    return (
        result.outputs,
        result.corrupted,
        result.channel_trace,
        result.trace,
        dataclasses.replace(result.stats, wall_s=0.0),
    )


# -- the full protocol stack, differentially --------------------------------

#: Per-protocol message lengths: long enough to hit the batched kernels
#: (multi-chunk RS frames), short enough that the 2-backend x 2-grid
#: product stays CI-sized.  The broadcast baselines are O(n * ell)
#: rounds, so they get small values.
SYNC_PROTOCOLS = {
    "pi_z": 1024,
    "pi_n": 1024,
    "fixed_length_ca": 1024,
    # must divide into n*n equal blocks; resolved per grid point below.
    "fixed_length_ca_blocks": None,
    "high_cost_ca": 32,
    "broadcast_ca": 256,
    "naive_broadcast_ca": 64,
}

GRID = [(4, 1, 0), (7, 2, 4)]


@requires_numpy
@pytest.mark.parametrize("n,t,seed", GRID, ids=lambda g: None)
@pytest.mark.parametrize("protocol,ell", sorted(SYNC_PROTOCOLS.items()))
def test_protocol_stack_byte_identical(protocol, ell, n, t, seed):
    if ell is None:
        ell = n * n * 20  # a multiple of the n*n block count
    assert_identical(
        lambda: measure(
            protocol, n, t, ell, kappa=KAPPA, seed=seed, spread="clustered"
        ),
        normalise=lambda m: dataclasses.replace(m, wall_s=0.0),
    )


@requires_numpy
@pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
def test_ba_plus_byte_identical(n, t):
    inputs = [bytes([17 * (i % 3 + 1)]) * (KAPPA // 8) for i in range(n)]
    assert_identical(
        lambda: run_protocol(
            lambda ctx, v: ba_plus(ctx, v), inputs, n=n, t=t, kappa=KAPPA
        ),
        normalise=comparable,
    )


@requires_numpy
def test_ext_ba_plus_byte_identical():
    inputs = [
        b"agree on this long payload " * 40,
        b"agree on this long payload " * 40,
        b"a different byzantine-ish value",
        b"",
        b"agree on this long payload " * 40,
        b"yet another value",
        b"agree on this long payload " * 40,
    ]
    assert_identical(
        lambda: run_protocol(
            lambda ctx, v: ext_ba_plus(ctx, v), inputs, n=7, t=2,
            kappa=KAPPA,
        ),
        normalise=comparable,
    )


@requires_numpy
def test_async_aa_byte_identical():
    inputs = [0, 100, 200, 300, 400, 500]

    def go():
        net = AsyncNetwork(
            lambda ctx: AsyncApproximateAgreement(
                ctx, inputs[ctx.party_id], 1, 1 << 16
            ),
            n=6,
            t=1,
        )
        result = net.run()
        return result.outputs, result.corrupted

    assert_identical(go)


# -- resilience planes through the fuzz executor ----------------------------


def _plane_cases(crash, partition, count, seed):
    rng = random.Random(seed)
    registry = standard_registry()
    return [
        sample_case(rng, registry, crash=crash, partition=partition)
        for _ in range(count)
    ]


def _case_outcome_key(outcome):
    failure, stats = outcome
    failure_key = None
    if failure is not None:
        failure_key = (failure.kind, failure.message, failure.case)
    return failure_key, dataclasses.asdict(stats)


@requires_numpy
@pytest.mark.parametrize(
    "crash,partition,seed",
    [(True, False, 7), (True, True, 11)],
    ids=["crash-plane", "partition-plane"],
)
def test_resilience_planes_byte_identical(crash, partition, seed):
    registry = standard_registry()
    for case in _plane_cases(crash, partition, 4, seed):
        assert_identical(
            lambda case=case: run_case_ex(case, registry),
            normalise=_case_outcome_key,
        )


# -- parallel campaigns: workers inherit the parent's backend ---------------


def _report_key(report):
    return (
        report.runs,
        report.seed,
        report.crash,
        report.partition,
        report.cases,
        [(f.kind, f.message, f.case) for f in report.failures],
        report.resyncs,
        report.escalated_cases,
        report.degradations,
    )


@requires_numpy
def test_parallel_campaign_identical_across_backends():
    """A 2-worker campaign is report-identical under either backend.

    Worker counters live in the worker processes, so only the report is
    compared here; the per-case counter parity is covered by
    :func:`test_resilience_planes_byte_identical`.
    """
    from repro.sim.fuzz import fuzz

    def go():
        return _report_key(
            fuzz(runs=6, seed=3, workers=2, crash=True, shrink=False)
        )

    reference, _ = run_on("python", go)
    value, _ = run_on("numpy", go)
    assert value == reference


# -- GF kernel property tests (seeded-random, zero-heavy) -------------------


def _zero_heavy_elements(rng, field, count):
    """Field elements with ~1/3 zeros: the log table has no entry for 0,
    so the batched kernels must mask them explicitly (the PR-2 bug
    class this suite regression-tests)."""
    return [
        0 if rng.random() < 1 / 3 else rng.randrange(1, field.order)
        for _ in range(count)
    ]


@requires_numpy
@pytest.mark.parametrize("field", FIELDS, ids=["GF256", "GF65536"])
def test_mul_vec_matches_scalar_reference(field):
    rng = random.Random(101)
    for _ in range(50):
        length = rng.randrange(0, 65)
        a = _zero_heavy_elements(rng, field, length)
        b = _zero_heavy_elements(rng, field, length)
        expected = [field.mul(x, y) for x, y in zip(a, b)]
        for backend in BACKENDS:
            with config.use_backend(backend):
                assert list(field.mul_vec(a, b)) == expected


@requires_numpy
@pytest.mark.parametrize("field", FIELDS, ids=["GF256", "GF65536"])
def test_scalar_mul_vec_matches_scalar_reference(field):
    rng = random.Random(202)
    for _ in range(50):
        length = rng.randrange(0, 65)
        scalar = 0 if rng.random() < 1 / 4 else rng.randrange(1, field.order)
        vec = _zero_heavy_elements(rng, field, length)
        expected = [field.mul(scalar, x) for x in vec]
        for backend in BACKENDS:
            with config.use_backend(backend):
                assert list(field.scalar_mul_vec(scalar, vec)) == expected


def _reference_matmul(field, matrix, data):
    """Independent textbook product (not either production kernel)."""
    cols = len(data[0]) if data else 0
    out = []
    for row in matrix:
        acc = [0] * cols
        for coeff, src in zip(row, data):
            for j in range(cols):
                acc[j] ^= field.mul(coeff, src[j])
        out.append(acc)
    return out


@requires_numpy
@pytest.mark.parametrize("field", FIELDS, ids=["GF256", "GF65536"])
def test_matmul_matches_scalar_reference(field):
    rng = random.Random(303)
    for _ in range(40):
        r = rng.randrange(1, 8)
        k = rng.randrange(1, 8)
        c = rng.randrange(1, 33)
        matrix = [_zero_heavy_elements(rng, field, k) for _ in range(r)]
        data = [_zero_heavy_elements(rng, field, c) for _ in range(k)]
        if rng.random() < 1 / 3:
            matrix[rng.randrange(r)] = [0] * k  # all-zero matrix row
        if rng.random() < 1 / 3:
            j = rng.randrange(c)
            for row in data:
                row[j] = 0  # all-zero data column
        expected = _reference_matmul(field, matrix, data)
        for backend in BACKENDS:
            with config.use_backend(backend):
                got = field.matmul(matrix, data)
                assert [list(row) for row in got] == expected


@requires_numpy
def test_matmul_zero_row_and_zero_column_explicit():
    """The deterministic distillation of the zero-handling property."""
    field = GF256
    matrix = [[0, 0, 0], [1, 2, 3], [0, 7, 0]]
    data = [[0, 5, 0], [0, 7, 0], [0, 9, 1]]  # columns 0 and 2 nearly zero
    expected = _reference_matmul(field, matrix, data)
    for backend in BACKENDS:
        with config.use_backend(backend):
            got = field.matmul(matrix, data)
            assert [list(row) for row in got] == expected
    assert expected[0] == [0, 0, 0]


# -- Reed-Solomon round-trips ----------------------------------------------


@requires_numpy
@pytest.mark.parametrize("field", FIELDS, ids=["GF256", "GF65536"])
def test_rs_encode_erase_decode_roundtrip(field):
    """encode -> erase any n-k shares -> decode recovers, both backends,
    with byte-identical shares across backends."""
    rng = random.Random(404)
    for _ in range(25):
        n = rng.randrange(2, 11)
        k = rng.randrange(1, n + 1)
        payload = bytes(
            rng.randrange(256) for _ in range(rng.randrange(0, 130))
        )
        keep = sorted(rng.sample(range(n), k))

        def roundtrip():
            code = ReedSolomonCode(n, k, field)
            shares = code.encode(payload)
            subset = {i: shares[i] for i in keep}
            return shares, code.decode(subset)

        shares_by_backend = {}
        for backend in BACKENDS:
            with config.use_backend(backend):
                shares, decoded = roundtrip()
                assert decoded == payload, (backend, n, k, keep)
                shares_by_backend[backend] = shares
        assert shares_by_backend["python"] == shares_by_backend["numpy"]


# -- decode-matrix cache: keyed on the full code parameters -----------------


def _decode_with(code, payload, indices):
    shares = code.encode(payload)
    return code.decode({i: shares[i] for i in indices})


def test_decode_matrix_cache_not_shared_across_codes():
    """Regression: two codes sharing an index tuple must not collide.

    The decode-matrix memo is process-wide; its key must include the
    field and the ``(n, k)`` geometry, not just the index tuple, or a
    ``(5, 3)`` GF(2^8) decode would reuse a ``(5, 3)`` GF(2^16) matrix
    (or a ``(6, 3)`` one) and reconstruct garbage.
    """
    payload = b"decode matrix cache regression"
    indices = (0, 2, 4)
    with config.caches(True):
        clear_decode_matrix_cache()
        small = ReedSolomonCode(5, 3, GF256)
        large = ReedSolomonCode(5, 3, GF65536)
        wide = ReedSolomonCode(6, 3, GF65536)
        with counters.capture() as counts:
            assert _decode_with(small, payload, indices) == payload
            assert _decode_with(large, payload, indices) == payload
            assert _decode_with(wide, payload, indices) == payload
        # Three distinct codes -> three distinct cache entries, one
        # inversion each -- the old per-index keying would have reused
        # the first matrix for all three.
        assert counts.get("gf_matrix_invert", 0) == 3
        with counters.capture() as warm:
            assert _decode_with(small, payload, indices) == payload
            assert _decode_with(large, payload, indices) == payload
            assert _decode_with(wide, payload, indices) == payload
        assert warm.get("gf_matrix_invert", 0) == 0


def test_decode_matrix_cache_survives_per_code_reuse():
    """Same code + same indices twice -> exactly one inversion."""
    with config.caches(True):
        clear_decode_matrix_cache()
        code = ReedSolomonCode(7, 5, GF65536)
        indices = (1, 2, 3, 5, 6)
        with counters.capture() as counts:
            assert _decode_with(code, b"one", indices) == b"one"
            assert _decode_with(code, b"two", indices) == b"two"
        assert counts.get("gf_matrix_invert", 0) == 1
