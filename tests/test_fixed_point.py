"""Fixed-point CA adapter tests (the paper's rational-inputs remark)."""

from __future__ import annotations

from decimal import Decimal
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixed_point import FixedPointCodec, fixed_point_ca
from repro.sim import run_protocol

from conftest import adversary_params

KAPPA = 64


class TestCodec:
    def test_decimal_roundtrip(self):
        codec = FixedPointCodec(2)
        assert codec.to_int(Decimal("-10.04")) == -1004
        assert codec.to_reading(-1004) == Fraction(-1004, 100)

    def test_fraction_input(self):
        codec = FixedPointCodec(3)
        assert codec.to_int(Fraction(1, 8)) == 125

    def test_int_input(self):
        codec = FixedPointCodec(2)
        assert codec.to_int(7) == 700

    def test_rounding_half_away_from_zero(self):
        codec = FixedPointCodec(0)
        assert codec.to_int(Fraction(1, 2)) == 1
        assert codec.to_int(Fraction(-1, 2)) == -1
        assert codec.to_int(Fraction(1, 4)) == 0
        assert codec.to_int(Fraction(-1, 4)) == 0

    def test_floats_rejected(self):
        codec = FixedPointCodec(2)
        with pytest.raises(TypeError):
            codec.to_int(10.04)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            FixedPointCodec(2).to_int(True)

    def test_decimals_range(self):
        with pytest.raises(ValueError):
            FixedPointCodec(-1)
        with pytest.raises(ValueError):
            FixedPointCodec(101)

    def test_zero_decimals(self):
        codec = FixedPointCodec(0)
        assert codec.to_int(Fraction(7)) == 7
        assert codec.to_reading(7) == 7

    @given(st.fractions(min_value=-1000, max_value=1000))
    @settings(max_examples=50)
    def test_quantisation_error_bounded(self, reading):
        codec = FixedPointCodec(3)
        recovered = codec.to_reading(codec.to_int(reading))
        assert abs(recovered - reading) <= Fraction(1, 2 * codec.scale)


class TestFixedPointCA:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_sensor_scenario(self, adversary):
        readings = [
            Decimal("-10.05"), Decimal("-10.04"), Decimal("-10.03"),
            Decimal("-10.03"), Decimal("-10.05"), Decimal("-10.04"),
            Decimal("-10.04"),
        ]

        def factory(ctx, reading):
            return fixed_point_ca(ctx, reading, decimals=2)

        result = run_protocol(factory, readings, 7, 2, kappa=KAPPA)
        value = result.common_output()
        honest = [
            Fraction(readings[p]) for p in range(7)
            if p not in result.corrupted
        ]
        assert min(honest) <= value <= max(honest)
        # outputs are exact rationals with the declared precision:
        assert value.denominator <= 100

    def test_mixed_reading_types(self):
        readings = [Decimal("1.5"), Fraction(3, 2), 2, Fraction(7, 4)]

        def factory(ctx, reading):
            return fixed_point_ca(ctx, reading, decimals=1)

        result = run_protocol(factory, readings, 4, 1, kappa=KAPPA)
        value = result.common_output()
        assert Fraction(3, 2) <= value <= Fraction(2)

    def test_quantised_hull(self):
        """Readings closer than a quantum collapse to one value."""
        readings = [Fraction(1, 1000)] * 4  # quantises to 0 at 1 decimal

        def factory(ctx, reading):
            return fixed_point_ca(ctx, reading, decimals=1)

        result = run_protocol(factory, readings, 4, 1, kappa=KAPPA)
        assert result.common_output() == 0
