"""Documentation lint: DESIGN/EXPERIMENTS/README reference real artifacts.

Docs that point at renamed files rot silently; these tests keep the
per-experiment index, the traceability matrix, and the README honest.
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_referenced_bench_modules_exist(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_referenced_test_modules_exist(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"tests/(test_\w+\.py)", text)):
            assert (ROOT / "tests" / match).exists(), match

    def test_every_bench_module_is_indexed(self):
        text = read("DESIGN.md") + read("EXPERIMENTS.md")
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in text, f"{path.name} not documented"

    def test_inventory_mentions_every_subpackage(self):
        text = read("DESIGN.md")
        for package in (ROOT / "src" / "repro").iterdir():
            if package.is_dir() and (package / "__init__.py").exists():
                assert f"repro.{package.name}" in text, package.name

    def test_paper_identity_check_present(self):
        assert "Paper-identity check" in read("DESIGN.md")


class TestExperimentsDoc:
    def test_every_experiment_id_has_a_section(self):
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        ids = set(re.findall(r"\| (T\d|F\d) \|", design))
        assert ids, "experiment index table missing"
        for experiment_id in ids:
            assert f"## {experiment_id}" in experiments, experiment_id

    def test_errata_section_present(self):
        assert "errata" in read("EXPERIMENTS.md").lower()


class TestReadme:
    def test_example_table_matches_directory(self):
        text = read("README.md")
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in text, f"{path.name} missing from README"

    def test_architecture_mentions_subpackages(self):
        text = read("README.md")
        for package in (ROOT / "src" / "repro").iterdir():
            if package.is_dir() and (package / "__init__.py").exists():
                assert f"{package.name}/" in text, package.name

    def test_docs_links_resolve(self):
        text = read("README.md")
        for match in set(re.findall(r"\]\((docs/[\w./-]+)\)", text)):
            assert (ROOT / match).exists(), match


class TestDocsDirectory:
    @pytest.mark.parametrize(
        "name", ["model.md", "protocol-walkthrough.md", "api.md"]
    )
    def test_doc_exists_and_nonempty(self, name):
        path = ROOT / "docs" / name
        assert path.exists()
        assert len(path.read_text()) > 500

    def test_api_doc_names_real_symbols(self):
        import repro

        text = read("docs/api.md")
        for symbol in re.findall(r"`(\w+)\(ctx", text):
            # every documented protocol generator must be importable
            found = hasattr(repro, symbol)
            if not found:
                import repro.aa
                import repro.authenticated
                import repro.ba
                import repro.baselines
                import repro.core.vector

                found = any(
                    hasattr(module, symbol)
                    for module in (
                        repro.aa, repro.authenticated, repro.ba,
                        repro.baselines, repro.core, repro.core.vector,
                    )
                )
            assert found, f"docs/api.md references unknown symbol {symbol}"
