"""Execution-trace tests."""

from __future__ import annotations

from repro.core.protocol_z import protocol_z
from repro.sim import broadcast_round, run_protocol
from repro.sim.trace import summarize_trace


def two_phase(ctx, v):
    yield from broadcast_round(ctx, "phase_a", v)
    yield from broadcast_round(ctx, "phase_b", v * 2)
    return v


class TestTraceRecording:
    def test_disabled_by_default(self):
        result = run_protocol(two_phase, [1] * 4, 4, 1)
        assert result.trace is None

    def test_one_record_per_round(self):
        result = run_protocol(two_phase, [1] * 4, 4, 1, trace=True)
        assert len(result.trace) == result.stats.rounds
        assert [r.channel for r in result.trace] == ["phase_a", "phase_b"]
        assert [r.round_index for r in result.trace] == [0, 1]

    def test_bits_match_stats(self):
        result = run_protocol(two_phase, [1, 2, 3, 4], 4, 1, trace=True)
        assert (
            sum(r.honest_bits for r in result.trace)
            == result.stats.honest_bits
        )
        assert (
            sum(r.honest_messages for r in result.trace)
            == result.stats.honest_messages
        )

    def test_corrupted_snapshot(self):
        result = run_protocol(two_phase, [1] * 4, 4, 1, trace=True)
        assert all(r.corrupted == frozenset({3}) for r in result.trace)

    def test_byzantine_messages_counted(self):
        from repro.sim import ScriptedAdversary

        result = run_protocol(
            two_phase, [1] * 4, 4, 1, trace=True,
            adversary=ScriptedAdversary(lambda *a: 9),
        )
        assert all(r.byzantine_messages == 4 for r in result.trace)

    def test_full_protocol_trace_structure(self):
        """PI_Z's trace starts with the sign BA and the distributing
        steps appear only under find-prefix channels."""
        inputs = [100, 105, 103, 101]
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, 4, 1, kappa=64,
            trace=True,
        )
        assert result.trace[0].channel.startswith("piZ/sign")
        dist_rounds = [
            r for r in result.trace if "/dist/" in r.channel
        ]
        for record in dist_rounds:
            assert "/fp/" in record.channel or "/root" in record.channel

    def test_summarize_trace(self):
        result = run_protocol(two_phase, [1, 2, 3, 4], 4, 1, trace=True)
        summary = summarize_trace(result.trace)
        assert set(summary) == {"phase_a", "phase_b"}
        assert summary["phase_a"]["rounds"] == 1
        assert summary["phase_a"]["messages"] == 9  # 3 honest x 3 others
        total = sum(entry["bits"] for entry in summary.values())
        assert total == result.stats.honest_bits
