"""The cooperative instance scheduler (``repro.sim.multiplex``).

Three contracts under test:

1. **Determinism**: ``run_many(..., multiplex=K)`` is byte-identical to
   a serial run -- per-instance measurements, fuzz reports, and the
   deterministic counters (including the ``sched_*`` family) all match,
   in-process and across pool workers.
2. **Arena/fast-path parity**: with the plain-run flag armed (fast
   path, no trace, no monitors) the reused arena inboxes deliver the
   exact insertion order the general path builds from fresh dicts, over
   an ``(n, t)`` grid and under every installed kernel backend.
3. **Isolation**: one instance of a multiplexed batch failing, raising,
   or exhausting the cooperative time budget never disturbs its
   batch-mates, and non-multiplexable case functions silently keep the
   sequential path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.experiments import (
    make_inputs,
    measure_case,
    open_measurement,
)
from repro.core.fixed_length import fixed_length_ca
from repro.perf import config, counters
from repro.sim.fuzz import fuzz
from repro.sim.multiplex import (
    MultiplexScheduler,
    multiplexable,
    opener_of,
    run_multiplexed,
)
from repro.sim.network import SynchronousNetwork
from repro.sim.parallel import run_many
from repro.sim.party import Outgoing, broadcast_round
from repro.sim.runner import run_protocol

GRID = [(4, 1), (7, 2), (10, 3)]


def _jobs(count: int) -> list[dict]:
    """A mixed n in {4, 7} fleet of measure_case payloads."""
    shapes = [(4, 1), (7, 2)]
    return [
        dict(
            protocol="fixed_length_ca",
            n=shapes[seed % 2][0],
            t=shapes[seed % 2][1],
            ell=48,
            seed=seed,
            spread="clustered",
        )
        for seed in range(count)
    ]


# -- determinism -----------------------------------------------------------


def test_multiplex_matches_serial_values_and_counters():
    jobs = _jobs(10)
    config.reset_process_caches()
    counters.reset()
    serial = [o.value for o in run_many(measure_case, jobs)]
    serial_counts = counters.snapshot()
    config.reset_process_caches()
    counters.reset()
    # 4 does not divide 10: the trailing partial batch is exercised too.
    muxed = [o.value for o in run_many(measure_case, jobs, multiplex=4)]
    mux_counts = counters.snapshot()
    assert serial == muxed
    assert serial_counts == mux_counts
    assert mux_counts["sched_instances"] == len(jobs)


def test_multiplex_composes_with_pool_workers():
    jobs = _jobs(6)
    serial = [o.value for o in run_many(measure_case, jobs)]
    pooled = [
        o.value
        for o in run_many(measure_case, jobs, workers=2, multiplex=3)
    ]
    assert serial == pooled


def test_fuzz_campaign_multiplexed_matches_serial():
    serial = fuzz(runs=50, seed=3, workers=1, shrink=False)
    muxed = fuzz(runs=50, seed=3, workers=2, multiplex=8, shrink=False)
    assert [c.to_dict() for c in serial.cases] == [
        c.to_dict() for c in muxed.cases
    ]
    assert len(serial.failures) == len(muxed.failures)
    assert serial.clean == muxed.clean


def test_measure_case_declares_its_opener():
    assert opener_of(measure_case) is open_measurement


def test_opener_contract_matches_direct_call():
    params = dict(
        protocol="fixed_length_ca", n=4, t=1, ell=32, seed=5,
        spread="spread",
    )
    network, finalize = open_measurement(dict(params))
    assert isinstance(network, SynchronousNetwork)
    assert finalize(network.run()) == measure_case(dict(params))


# -- scheduler counters ----------------------------------------------------


def test_sched_counters_account_one_execution():
    inputs = make_inputs(4, 32, seed=1)
    with counters.capture() as counts:
        run_protocol(
            lambda ctx, v: fixed_length_ca(ctx, v, 32), inputs, n=4, t=1
        )
    assert counts["sched_instances"] == 1
    # Every executed round is one scheduler step; net_rounds only
    # counts rounds with actual traffic, so sched_rounds bounds it.
    assert counts["sched_rounds"] >= counts["net_rounds"] > 0
    # Resumes are per-party per-round, minus finished/down parties.
    assert counts["sched_resumes"] >= counts["sched_rounds"]


def test_sched_counters_identical_serial_vs_multiplexed():
    jobs = _jobs(4)
    config.reset_process_caches()
    counters.reset()
    run_many(measure_case, jobs)
    serial = {
        k: v for k, v in counters.snapshot().items()
        if k.startswith("sched_")
    }
    config.reset_process_caches()
    counters.reset()
    run_many(measure_case, jobs, multiplex=len(jobs))
    muxed = {
        k: v for k, v in counters.snapshot().items()
        if k.startswith("sched_")
    }
    assert serial == muxed
    assert serial["sched_instances"] == len(jobs)


# -- arena / fast-path parity ---------------------------------------------


def _order_probe(ctx, v):
    """Record the exact inbox key order for a few rounds."""
    orders = []
    for _ in range(4):
        inbox = yield from broadcast_round(ctx, "probe", (v, ctx.party_id))
        orders.append(tuple(inbox))
    return tuple(orders)


@pytest.mark.parametrize("n,t", GRID)
@pytest.mark.parametrize("backend", config.available_backends())
def test_arena_inbox_order_matches_general_path(backend, n, t):
    """Plain runs (arena inboxes) vs the WAL-forced general path."""
    with config.use_backend(backend):
        inputs = list(range(n))
        fast = run_protocol(_order_probe, inputs, n=n, t=t)
        slow = run_protocol(_order_probe, inputs, n=n, t=t, recovery=True)
    # The outputs ARE the observed insertion orders, per party per round.
    assert fast.outputs == slow.outputs
    assert dataclasses.replace(
        fast.stats, wall_s=0.0
    ) == dataclasses.replace(slow.stats, wall_s=0.0)


@pytest.mark.parametrize("n,t", GRID)
@pytest.mark.parametrize("backend", config.available_backends())
def test_plain_run_matches_general_path_full_protocol(backend, n, t):
    with config.use_backend(backend):
        inputs = make_inputs(n, 96, seed=3, spread="spread")

        def factory(ctx, v):
            return fixed_length_ca(ctx, v, 96)

        fast = run_protocol(factory, inputs, n=n, t=t)
        slow = run_protocol(factory, inputs, n=n, t=t, recovery=True)
    assert fast.outputs == slow.outputs
    assert fast.channel_trace == slow.channel_trace
    assert dataclasses.replace(
        fast.stats, wall_s=0.0
    ) == dataclasses.replace(slow.stats, wall_s=0.0)


def test_arena_active_only_on_plain_runs():
    def factory(ctx, v):
        return fixed_length_ca(ctx, v, 16)

    inputs = make_inputs(4, 16, seed=0)
    plain = SynchronousNetwork(factory, inputs, n=4, t=1)
    plain.begin()
    assert plain._plain and plain._arena is not None
    traced = SynchronousNetwork(factory, inputs, n=4, t=1, trace=True)
    traced.begin()
    assert not traced._plain and traced._arena is None


# -- isolation and fallback ------------------------------------------------


def _fragile_case(payload: dict):
    raise AssertionError("sequential path should not be taken here")


def _fragile_opener(payload: dict):
    def proto(ctx, v):
        if v == 13 and ctx.party_id == 0:
            raise ValueError("boom")
        yield Outgoing(channel="one", messages={})
        return v

    inputs = [payload["value"]] * 3
    network = SynchronousNetwork(proto, inputs, n=3, t=0)
    return network, lambda result: sorted(result.outputs.values())


_fragile_case = multiplexable(_fragile_opener)(_fragile_case)


def test_one_failing_instance_does_not_disturb_batch_mates():
    payloads = [{"value": v} for v in (11, 13, 12)]
    outcomes = run_multiplexed(_fragile_case, list(enumerate(payloads)))
    assert [o.index for o in outcomes] == [0, 1, 2]
    assert outcomes[0].ok and outcomes[0].value == [11, 11, 11]
    assert outcomes[2].ok and outcomes[2].value == [12, 12, 12]
    failed = outcomes[1]
    assert not failed.ok
    assert failed.error_type == "HonestPartyError"
    assert "boom" in failed.error


def test_cooperative_timeout_marks_survivors_transient():
    def spin_opener(payload):
        def proto(ctx, v):
            while True:
                yield Outgoing(channel="spin", messages={})

        network = SynchronousNetwork(
            proto, [0, 0, 0], n=3, t=0, max_rounds=10**9
        )
        return network, lambda result: result

    @multiplexable(spin_opener)
    def spin_case(payload):
        raise AssertionError("unused")

    outcomes = run_multiplexed(
        spin_case, [(0, {}), (1, {})], timeout_s=0.02
    )
    assert len(outcomes) == 2
    assert all(o.error_type == "CaseTimeout" for o in outcomes)
    assert all(o.transient for o in outcomes)


def test_non_multiplexable_fn_falls_back_to_sequential():
    def double(payload):
        return payload * 2

    outcomes = run_many(double, [1, 2, 3], multiplex=8)
    assert [o.value for o in outcomes] == [2, 4, 6]
    with pytest.raises(ValueError, match="not multiplexable"):
        run_multiplexed(double, [(0, 1)])


def test_run_many_rejects_bad_multiplex():
    with pytest.raises(ValueError, match="multiplex"):
        run_many(measure_case, _jobs(2), multiplex=0)


def test_scheduler_interleaves_in_index_order():
    """Step order is deterministic: instance 0 steps before instance 1."""
    log: list[tuple[int, int]] = []

    def probe_opener(payload):
        idx = payload["idx"]

        def proto(ctx, v):
            for step in range(3):
                log.append((idx, step))
                yield Outgoing(channel="probe", messages={})
            return idx

        network = SynchronousNetwork(proto, [0], n=1, t=0)
        return network, lambda result: result.outputs[0]

    @multiplexable(probe_opener)
    def probe_case(payload):
        raise AssertionError("unused")

    cases = [(i, {"idx": i}) for i in range(3)]
    outcomes = MultiplexScheduler(probe_opener, cases).run()
    assert [o.value for o in outcomes] == [0, 1, 2]
    # Sweeps visit instances round-robin in index order.
    assert log[:3] == [(0, 0), (1, 0), (2, 0)]
    assert log[3:6] == [(0, 1), (1, 1), (2, 1)]
