"""``PI_lBA+`` tests: the long-message extension (Theorem 1)."""

from __future__ import annotations

import os
import random

import pytest

from repro.ba.distribution import (
    decode_with_check,
    distribute,
    encode_and_accumulate,
)
from repro.ba.ext_ba_plus import ext_ba_plus
from repro.crypto import merkle
from repro.coding.reed_solomon import rs_code
from repro.sim import Context, DROP, ScriptedAdversary, run_protocol

from conftest import CONFIGS, adversary_params

KAPPA = 64


def factory(ctx, v):
    return ext_ba_plus(ctx, v)


def payload(tag: int, size: int = 200) -> bytes:
    return bytes([tag]) * size


class TestBAProperties:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_validity(self, n, t, adversary):
        data = payload(5)
        result = run_protocol(factory, [data] * n, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == data

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_agreement_mixed(self, adversary):
        inputs = [payload(i) for i in range(7)]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        result.common_output()

    def test_type_validation(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        gen = ext_ba_plus(ctx, "not-bytes")
        with pytest.raises(TypeError):
            next(gen)


class TestIntrusionTolerance:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_output_is_honest_or_bottom(self, adversary):
        inputs = [payload(i) for i in range(7)]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        out = result.common_output()
        honest = {inputs[p] for p in range(7) if p not in result.corrupted}
        assert out is None or out in honest

    def test_forged_share_tuples_rejected(self):
        """Byzantine parties spray forged (i, share, witness) tuples in
        the distributing step; Merkle verification must discard them."""

        def handler(view, src, dst, spec):
            if "/dist/" in view.channel:
                fake_witness = merkle.MerkleWitness(
                    index=dst, siblings=(b"\x00" * (KAPPA // 8),) * 3
                )
                return (dst, b"\xff" * 10, fake_witness)
            return spec if spec is not None else DROP

        data = payload(3)
        inputs = [data] * 5 + [payload(8), payload(9)]
        result = run_protocol(
            factory, inputs, 7, 2, kappa=KAPPA,
            adversary=ScriptedAdversary(handler),
        )
        assert result.common_output() == data


class TestBoundedPreAgreement:
    @pytest.mark.parametrize("n,t", CONFIGS)
    def test_pre_agreement_forces_output(self, n, t):
        data = payload(1)
        inputs = [data] * (n - 2 * t) + [
            payload(50 + i) for i in range(2 * t)
        ]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA)
        assert result.common_output() == data


class TestDistributingStep:
    def test_distribute_from_single_holder(self):
        """Only one honest party holds the committed value; everyone
        reconstructs it."""
        data = os.urandom(333)

        def proto(ctx, v):
            _, shares, root, witnesses = encode_and_accumulate(ctx, data)
            # share the root out-of-band (all parties compute it):
            holding = ctx.party_id == 0
            value = yield from distribute(
                ctx, root, holding, shares if holding else [],
                witnesses if holding else [],
            )
            return value

        result = run_protocol(proto, [None] * 7, 7, 2, kappa=KAPPA)
        assert result.common_output() == data

    def test_decode_with_check_rejects_non_codeword(self):
        """A Merkle root over a NON-codeword share vector must be
        rejected deterministically (the re-encode check)."""
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        code = rs_code(4, 3)
        good = code.encode(b"honest value")
        # corrupt one committed share -> committed vector no longer a
        # codeword of anything with this root.
        bad_vector = [good[0], good[1], good[2][:-1] + b"\x99", good[3]]
        root, _ = merkle.build(KAPPA, bad_vector)
        for subset in (
            {0: bad_vector[0], 1: bad_vector[1], 2: bad_vector[2]},
            {0: bad_vector[0], 1: bad_vector[1], 3: bad_vector[3]},
            {1: bad_vector[1], 2: bad_vector[2], 3: bad_vector[3]},
        ):
            assert decode_with_check(ctx, root, subset) is None

    def test_decode_with_check_accepts_codeword(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        code = rs_code(4, 3)
        shares = code.encode(b"honest value")
        root, _ = merkle.build(KAPPA, shares)
        rng = random.Random(1)
        for _ in range(3):
            subset_idx = rng.sample(range(4), 3)
            subset = {i: shares[i] for i in subset_idx}
            assert decode_with_check(ctx, root, subset) == b"honest value"

    def test_decode_with_check_insufficient_shares(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        code = rs_code(4, 3)
        shares = code.encode(b"value")
        root, _ = merkle.build(KAPPA, shares)
        assert decode_with_check(ctx, root, {0: shares[0]}) is None


class TestComplexity:
    def test_linear_in_ell(self):
        """Theorem 1: bits grow ~linearly in payload length."""
        sizes = [500, 4000]
        bits = []
        for size in sizes:
            data = os.urandom(size)
            result = run_protocol(factory, [data] * 7, 7, 2, kappa=KAPPA)
            bits.append(result.stats.honest_bits)
        # 8x payload: cost ratio well below quadratic blowup (64x).
        ratio = bits[1] / bits[0]
        assert ratio < 8

    def test_payload_slope_close_to_linear_per_party(self):
        datas = [os.urandom(1000), os.urandom(9000)]
        results = [
            run_protocol(factory, [d] * 7, 7, 2, kappa=KAPPA)
            for d in datas
        ]
        slope = (
            results[1].stats.honest_bits - results[0].stats.honest_bits
        ) / (8 * 8000)
        # Marginal bits per payload bit: each share crosses the wire ~2n
        # times at size l/k, so slope ~ 2 n^2 / k = 2*49/5 ~ 20.
        assert slope < 40

    def test_bottom_run_is_cheap(self):
        """When PI_BA+ yields bottom, the payload never crosses the wire."""
        inputs = [os.urandom(5000) for _ in range(7)]  # all distinct
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() is None
        # cost stays near the kappa n^2 BA machinery, far below l*n.
        assert result.stats.honest_bits < 8 * 5000 * 7


class TestPredictionModel:
    def test_dispersal_estimate_upper_bounds_measured(self):
        """The closed-form dispersal model is a sound upper bound for
        the measured distributing-step channels."""
        import os

        from repro.ba.distribution import dispersal_bits_estimate

        n, t, kappa = 7, 2, 64
        ell = 8 * 2000
        data = os.urandom(ell // 8)
        result = run_protocol(
            factory, [data] * n, n, t, kappa=kappa
        )
        measured = sum(
            bits
            for channel, bits in result.stats.bits_by_channel.items()
            if "/dist/" in channel
        )
        assert measured > 0
        assert measured <= dispersal_bits_estimate(n, t, kappa, ell)

    def test_estimate_linear_in_ell(self):
        from repro.ba.distribution import dispersal_bits_estimate

        small = dispersal_bits_estimate(7, 2, 128, 10_000)
        large = dispersal_bits_estimate(7, 2, 128, 100_000)
        assert 8 < large / small < 12
