"""``PI_N`` tests (Theorem 5): unknown-length CA for naturals."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.protocol_n import protocol_n
from repro.sim import Context, RandomGarbageAdversary, run_protocol

from conftest import adversary_params, assert_convex

KAPPA = 64


def factory(ctx, v):
    return protocol_n(ctx, v)


class TestShortBranch:
    """Inputs of at most n^2 bits take the FixedLengthCA path."""

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_small_values(self, adversary):
        inputs = [10, 20, 30, 40, 50, 60, 70]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous(self, adversary):
        result = run_protocol(factory, [999] * 7, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == 999

    def test_zero_inputs(self):
        result = run_protocol(factory, [0] * 4, 4, 1, kappa=KAPPA)
        assert result.common_output() == 0

    def test_zero_and_one(self):
        inputs = [0, 1, 0, 1, 0, 1, 0]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() in (0, 1)

    def test_mixed_magnitudes_within_short(self):
        # n = 7 -> n^2 = 49 bits; values from 1 bit to 49 bits
        inputs = [1, 2**10, 2**20, 2**30, 2**40, 2**48, 3]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert_convex(inputs, result)

    def test_length_estimation_is_tight(self):
        """l_EST <= 2 * min(l_max, n^2): cost must not explode for tiny
        values (the estimation loop settles early)."""
        tiny = run_protocol(factory, [2, 3, 2, 3] * 1, 4, 1, kappa=KAPPA)
        assert_convex([2, 3, 2, 3], tiny)


class TestLongBranch:
    """Inputs longer than n^2 bits take the FixedLengthCABlocks path."""

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_long_values(self, adversary):
        n, t = 4, 1  # n^2 = 16 bits
        inputs = [2**100 + 5, 2**100 + 999, 2**101, 2**99]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    def test_unanimous_long(self):
        n, t = 4, 1
        value = 2**200 + 123456789
        result = run_protocol(factory, [value] * n, n, t, kappa=KAPPA)
        assert result.common_output() == value

    def test_mixed_short_long(self):
        """Some honest inputs short, some long: the class-bit BA picks a
        branch and clamping preserves validity either way."""
        n, t = 4, 1
        inputs = [5, 2**100, 7, 2**100 + 1]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA)
        assert_convex(inputs, result)

    def test_wildly_different_lengths(self):
        n, t = 7, 2
        inputs = [1, 2**60, 2**120, 2**180, 2**240, 2**300, 2**360]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA)
        assert_convex(inputs, result)

    def test_clamping_edge_exact_multiple(self):
        """Honest values of exactly l_EST bits must not be clamped out
        of the hull (the >= vs > erratum in the paper's line 10)."""
        n, t = 4, 1
        # all honest equal, length exactly a multiple of n^2 = 16
        value = (1 << 32) - 1  # 32 bits = 2 blocks of 16
        result = run_protocol(factory, [value] * n, n, t, kappa=KAPPA)
        assert result.common_output() == value


class TestValidation:
    def test_rejects_negative(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(protocol_n(ctx, -1))

    def test_rejects_bool(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(protocol_n(ctx, True))

    def test_rejects_non_int(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(protocol_n(ctx, 1.5))


class TestRandomised:
    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=2**60),
                st.integers(min_value=0, max_value=2**200),
            ),
            min_size=4,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=10, deadline=None)
    def test_ca_random_inputs(self, inputs, seed):
        result = run_protocol(
            factory, inputs, 4, 1, kappa=KAPPA,
            adversary=RandomGarbageAdversary(seed),
        )
        assert_convex(inputs, result)
