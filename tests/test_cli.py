"""CLI tests (``python -m repro ...``)."""

from __future__ import annotations

import pytest

from repro.cli import ADVERSARIES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "1", "2", "3", "4"])
        assert args.command == "run"
        assert args.inputs == [1, 2, 3, 4]
        assert args.adversary == "passive"

    def test_run_negative_inputs(self):
        args = build_parser().parse_args(["run", "-5", "3", "-1", "0"])
        assert args.inputs == [-5, 3, -1, 0]

    def test_sweep_ells_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--ells", "128,256", "--n", "4"]
        )
        assert args.ells == [128, 256]

    def test_compare_protocols_parsing(self):
        args = build_parser().parse_args(
            ["compare", "--protocols", "pi_z,high_cost_ca"]
        )
        assert args.protocols == ["pi_z", "high_cost_ca"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_unknown_adversary_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "1", "--adversary", "nope"])

    def test_all_adversaries_constructible(self):
        for name, cls in ADVERSARIES.items():
            adversary = cls(seed=1)
            assert adversary.describe()


class TestCommands:
    def test_run_command(self, capsys):
        code = main(["run", "10", "20", "30", "40", "--kappa", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "agreed output" in out
        assert "honest bits sent" in out

    def test_run_with_adversary_and_channels(self, capsys):
        code = main(
            ["run", "-5", "-6", "-7", "-8", "--adversary", "outlier",
             "--kappa", "64", "--channels"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-channel breakdown" in out
        assert "OutlierAdversary" in out

    def test_run_output_in_honest_range(self, capsys):
        main(["run", "100", "101", "102", "103", "--kappa", "64"])
        out = capsys.readouterr().out
        line = next(
            ln for ln in out.splitlines() if "agreed output" in ln
        )
        value = int(line.split(":")[1].strip())
        assert 100 <= value <= 103

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", "--protocol", "high_cost_ca", "--n", "4",
             "--ells", "64,128"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "high_cost_ca" in out
        assert "marginal cost" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--n", "4", "--ells", "128,512",
             "--protocols", "pi_z,high_cost_ca"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "paper's prediction" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(["report", "--scale", "quick", "--output", str(target)])
        assert code == 0
        text = target.read_text()
        assert "T5" in text and "F1" in text


class TestAuthenticatedSetting:
    def test_run_authenticated_minority(self, capsys):
        from repro.cli import main

        code = main([
            "run", "10", "20", "30", "40", "50",
            "--setting", "authenticated", "--kappa", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines() if "agreed output" in ln)
        value = int(line.split(":")[1].strip())
        assert 10 <= value <= 50

    def test_plain_default_threshold_differs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "1", "2", "3"])
        assert args.setting == "plain"


class TestReplayErrors:
    def test_truncated_artifact_is_a_friendly_exit_2(self, tmp_path, capsys):
        path = tmp_path / "truncated.json"
        path.write_text('{"format": "repro-fuzz/1", "case": {"pro')
        code = main(["replay", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert str(path) in err
        assert "cannot load artifact" in err

    def test_corrupt_artifact_is_a_friendly_exit_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text('{"format": "not-a-fuzz-artifact"}\n')
        code = main(["replay", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert str(path) in err

    def test_missing_artifact_is_exit_2(self, capsys):
        code = main(["replay", "/no/such/artifact.json"])
        assert code == 2
        assert "no such artifact" in capsys.readouterr().err


class TestBombFlags:
    def test_fuzz_bombs_flag_parses(self):
        args = build_parser().parse_args(["fuzz", "--runs", "3", "--bombs"])
        assert args.bombs is True

    def test_search_bombs_flag_parses(self):
        args = build_parser().parse_args(["search", "--bombs"])
        assert args.bombs is True

    def test_bomb_campaign_runs_clean(self, capsys):
        code = main(["fuzz", "--runs", "2", "--seed", "0", "--bombs",
                     "--quiet"])
        assert code == 0
        assert "bomb plane" in capsys.readouterr().out
