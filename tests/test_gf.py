"""Field-axiom and vectorised-operation tests for GF(2^a)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.coding.gf import GF256, GF65536, BinaryField

elements256 = st.integers(min_value=0, max_value=255)
nonzero256 = st.integers(min_value=1, max_value=255)
elements64k = st.integers(min_value=0, max_value=65535)
nonzero64k = st.integers(min_value=1, max_value=65535)


def flat(out):
    """Backend-agnostic vector view: ndarray or list -> plain list."""
    return out.tolist() if hasattr(out, "tolist") else list(out)


def rows(out):
    """Backend-agnostic matrix view: rows as plain int lists."""
    if hasattr(out, "tolist"):
        return out.tolist()
    return [list(row) for row in out]


class TestFieldAxiomsGF256:
    @given(elements256, elements256)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements256, elements256, elements256)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements256, elements256, elements256)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, b ^ c)
        right = GF256.mul(a, b) ^ GF256.mul(a, c)
        assert left == right

    @given(elements256)
    def test_mul_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(elements256)
    def test_mul_zero(self, a):
        assert GF256.mul(a, 0) == 0

    @given(nonzero256)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(nonzero256, nonzero256)
    def test_div_inverts_mul(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    @given(elements256, st.integers(min_value=0, max_value=600))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        for _ in range(e):
            expected = GF256.mul(expected, a)
        assert GF256.pow(a, e) == expected


class TestFieldAxiomsGF65536:
    @given(elements64k, elements64k)
    def test_mul_commutative(self, a, b):
        assert GF65536.mul(a, b) == GF65536.mul(b, a)

    @given(nonzero64k)
    def test_inverse(self, a):
        assert GF65536.mul(a, GF65536.inv(a)) == 1

    @given(elements64k, elements64k, elements64k)
    def test_distributive(self, a, b, c):
        left = GF65536.mul(a, b ^ c)
        right = GF65536.mul(a, b) ^ GF65536.mul(a, c)
        assert left == right

    def test_pow_zero_exponent(self):
        assert GF65536.pow(0, 0) == 1
        assert GF65536.pow(12345, 0) == 1


class TestVectorised:
    @given(st.lists(elements256, min_size=1, max_size=40), elements256)
    def test_scalar_mul_vec_matches_scalar(self, vec, scalar):
        out = GF256.scalar_mul_vec(scalar, np.array(vec))
        expected = [GF256.mul(scalar, v) for v in vec]
        assert flat(out) == expected

    @given(
        st.lists(elements256, min_size=1, max_size=20),
        st.lists(elements256, min_size=1, max_size=20),
    )
    def test_mul_vec_matches_scalar(self, xs, ys):
        size = min(len(xs), len(ys))
        xs, ys = xs[:size], ys[:size]
        out = GF256.mul_vec(np.array(xs), np.array(ys))
        assert flat(out) == [GF256.mul(a, b) for a, b in zip(xs, ys)]

    def test_matmul_identity(self):
        identity = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        data = np.array([[5, 6], [7, 8], [9, 10]])
        out = GF256.matmul(identity, data)
        assert rows(out) == data.tolist()

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_matmul_matches_scalar_loop(self, n_rows, inner, cols, rnd):
        matrix = [
            [rnd.randrange(256) for _ in range(inner)] for _ in range(n_rows)
        ]
        data = np.array(
            [[rnd.randrange(256) for _ in range(cols)] for _ in range(inner)]
        )
        out = rows(GF256.matmul(matrix, data))
        for r in range(n_rows):
            for c in range(cols):
                acc = 0
                for k in range(inner):
                    acc ^= GF256.mul(matrix[r][k], int(data[k, c]))
                assert out[r][c] == acc

    @given(
        st.lists(elements64k, min_size=1, max_size=20),
        st.lists(elements64k, min_size=1, max_size=20),
    )
    def test_mul_vec_matches_scalar_gf65536(self, xs, ys):
        size = min(len(xs), len(ys))
        xs, ys = xs[:size], ys[:size]
        out = GF65536.mul_vec(np.array(xs), np.array(ys))
        assert flat(out) == [GF65536.mul(a, b) for a, b in zip(xs, ys)]

    def test_matmul_matches_manual(self):
        matrix = [[3, 1], [0, 7]]
        data = np.array([[2, 4], [5, 6]])
        out = rows(GF256.matmul(matrix, data))
        for r in range(2):
            for c in range(2):
                expected = GF256.mul(matrix[r][0], int(data[0, c])) ^ GF256.mul(
                    matrix[r][1], int(data[1, c])
                )
                assert out[r][c] == expected


class TestZeroHandling:
    """Regression: the vectorised paths index the log table, and
    ``log(0)`` is undefined -- zero entries must short-circuit to zero
    instead of reading ``_log[0]`` garbage."""

    @pytest.mark.parametrize("field", [GF256, GF65536], ids=["2^8", "2^16"])
    def test_mul_vec_all_zero(self, field):
        zeros = np.zeros(16, dtype=np.int64)
        ones = np.full(16, 1, dtype=np.int64)
        assert flat(field.mul_vec(zeros, zeros)) == [0] * 16
        assert flat(field.mul_vec(zeros, ones)) == [0] * 16
        assert flat(field.mul_vec(ones, zeros)) == [0] * 16

    @pytest.mark.parametrize("field", [GF256, GF65536], ids=["2^8", "2^16"])
    def test_mul_vec_mixed_zeros(self, field):
        a = np.array([0, 3, 0, 7, 1, 0])
        b = np.array([5, 0, 0, 2, 0, 1])
        expected = [field.mul(int(x), int(y)) for x, y in zip(a, b)]
        assert flat(field.mul_vec(a, b)) == expected
        assert expected[:3] == [0, 0, 0]

    @pytest.mark.parametrize("field", [GF256, GF65536], ids=["2^8", "2^16"])
    def test_scalar_mul_vec_zero_cases(self, field):
        vec = np.array([0, 1, 2, 0, field.order - 1])
        assert flat(field.scalar_mul_vec(0, vec)) == [0] * 5
        assert flat(field.scalar_mul_vec(1, vec)) == vec.tolist()
        out = field.scalar_mul_vec(3, vec)
        assert out[0] == 0 and out[3] == 0

    def test_matmul_zero_matrix(self):
        zero = [[0, 0], [0, 0]]
        data = np.array([[9, 8], [7, 6]])
        assert rows(GF256.matmul(zero, data)) == [[0, 0], [0, 0]]


class TestLinearAlgebra:
    @given(st.integers(min_value=1, max_value=6), st.randoms())
    def test_invert_vandermonde(self, size, rnd):
        points = rnd.sample(range(1, 256), size)
        matrix = GF256.vandermonde(points, size)
        inverse = GF256.invert_matrix(matrix)
        # matrix @ inverse == identity
        for r in range(size):
            for c in range(size):
                acc = 0
                for k in range(size):
                    acc ^= GF256.mul(matrix[r][k], inverse[k][c])
                assert acc == (1 if r == c else 0)

    def test_invert_singular_raises(self):
        with pytest.raises(ValueError):
            GF256.invert_matrix([[1, 1], [1, 1]])

    def test_invert_non_square_raises(self):
        with pytest.raises(ValueError):
            GF256.invert_matrix([[1, 0, 0], [0, 1, 0]])

    def test_vandermonde_shape(self):
        v = GF256.vandermonde([1, 2, 3], 2)
        assert v == [[1, 1], [1, 2], [1, 3]]


class TestConstruction:
    def test_non_primitive_rejected(self):
        # x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial) is
        # irreducible but NOT primitive.
        with pytest.raises(ValueError):
            BinaryField(8, 0x11B)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            BinaryField(0, 0x3)
        with pytest.raises(ValueError):
            BinaryField(17, 0x3)

    def test_order(self):
        assert GF256.order == 256
        assert GF65536.order == 65536
