"""``PI_BA+`` tests: BA + Intrusion Tolerance + Bounded Pre-Agreement.

Theorem 6 is the paper's core technical lemma below the CA layer; these
tests check the two extra properties *under attack*, not just on happy
paths, plus the claimed complexity shape.
"""

from __future__ import annotations

import pytest

from repro.ba.ba_plus import ba_plus
from repro.ba.turpin_coan import turpin_coan
from repro.ba.domains import digest_domain
from repro.sim import (
    Adversary,
    DROP,
    ScriptedAdversary,
    SplitVoteAdversary,
    run_protocol,
)

from conftest import CONFIGS, adversary_params

KAPPA = 64


def value(tag: int) -> bytes:
    return bytes([tag]) * (KAPPA // 8)


def factory(ctx, v):
    return ba_plus(ctx, v)


class TestBAProperties:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_validity(self, n, t, adversary):
        result = run_protocol(factory, [value(7)] * n, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == value(7)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_agreement_mixed(self, adversary):
        inputs = [value(i % 3) for i in range(7)]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        result.common_output()

    def test_input_validation(self):
        from repro.sim.party import Context

        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        gen = ba_plus(ctx, b"short")  # not kappa bits
        with pytest.raises(ValueError):
            next(gen)


class TestIntrusionTolerance:
    """Definition 3: the output is an honest input or bottom."""

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_output_is_honest_input_or_bottom(self, adversary):
        inputs = [value(i) for i in range(7)]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        out = result.common_output()
        honest_inputs = {
            inputs[p] for p in range(7) if p not in result.corrupted
        }
        assert out is None or out in honest_inputs

    def test_adversary_pushing_own_value_fails(self):
        """Corrupted parties all push a fabricated value everywhere."""
        intruder = value(0xEE)

        class Intruder(Adversary):
            def deliver(self, view):
                out = {}
                for src in view.corrupted:
                    for dst in range(view.n):
                        chan = view.channel
                        if chan.endswith("/vote"):
                            out[(src, dst)] = ("VOTE", intruder)
                        else:
                            out[(src, dst)] = intruder
                return out

        inputs = [value(i) for i in range(7)]  # no honest pre-agreement
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=Intruder())
        out = result.common_output()
        assert out != intruder
        honest_inputs = {inputs[p] for p in range(7)
                         if p not in result.corrupted}
        assert out is None or out in honest_inputs

    def test_intruder_with_partial_honest_support_cannot_win_alone(self):
        """t byzantine + t honest echoes < n - 2t support: still safe."""
        intruder = value(0xEE)

        def handler(view, src, dst, spec):
            if view.channel.endswith("/vote"):
                return ("VOTE", intruder)
            if view.channel.endswith("/input"):
                return intruder
            return spec if spec is not None else DROP

        inputs = [value(i) for i in range(7)]
        result = run_protocol(
            factory, inputs, 7, 2, kappa=KAPPA,
            adversary=ScriptedAdversary(handler),
        )
        out = result.common_output()
        assert out != intruder


class TestBoundedPreAgreement:
    """Definition 4: bottom only when < n - 2t honest share an input."""

    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_pre_agreement_forces_output(self, n, t, adversary):
        # exactly n - 2t honest parties hold the same value; by the
        # default corruption pattern (last t parties) the first n - 2t
        # of them stay honest.
        common = value(1)
        inputs = [common] * (n - 2 * t) + [
            value(10 + i) for i in range(2 * t)
        ]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() is not None

    def test_split_vote_attack_cannot_force_bottom(self):
        """The adversary splits votes between the pre-agreed value and a
        fake; Bounded Pre-Agreement must still hold."""
        common = value(1)
        inputs = [common] * 3 + [value(9), value(8)] + [value(7)] * 2
        result = run_protocol(
            factory, inputs, 7, 2, kappa=KAPPA,
            adversary=SplitVoteAdversary(alt_value=value(9)),
        )
        assert result.common_output() is not None

    def test_two_candidate_values_resolved(self):
        """Two honest camps of n-2t each: either camp's value may win,
        bottom may not."""
        inputs = [value(1)] * 3 + [value(2)] * 2 + [value(3)] * 2
        # camps: value(1) x3 (= n-2t), corrupted default = parties 5, 6.
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() == value(1)


class TestContrastWithTurpinCoan:
    """Turpin-Coan is intrusion tolerant but NOT bounded-pre-agreement;
    this is precisely why the paper builds PI_BA+ (Section 7)."""

    def test_turpin_coan_violates_bounded_pre_agreement(self):
        """With n - 2t honest pre-agreement, a crash adversary can push
        Turpin-Coan to bottom -- PI_BA+ survives the same attack."""
        from repro.sim import CrashAdversary

        domain = digest_domain(KAPPA)
        common = value(1)
        # n - 2t = 3 parties pre-agree; others spread.
        inputs = [common] * 3 + [value(10), value(11), value(12), value(13)]

        tc = run_protocol(
            lambda ctx, v: turpin_coan(ctx, v, domain),
            inputs, 7, 2, kappa=KAPPA, adversary=CrashAdversary(0),
        )
        plus = run_protocol(
            factory, inputs, 7, 2, kappa=KAPPA,
            adversary=CrashAdversary(0),
        )
        assert tc.common_output() is None      # BPA violated
        assert plus.common_output() is not None  # BPA holds


class TestComplexity:
    def test_communication_quadratic_shape(self):
        bits = {}
        for n, t in ((4, 1), (7, 2), (10, 3)):
            result = run_protocol(
                factory, [value(i) for i in range(n)], n, t, kappa=KAPPA
            )
            bits[n] = result.stats.honest_bits
        # BITS(PI_BA+) = O(kappa n^2) + BITS(PI_BA); with phase-king the
        # total is O(kappa n^2 t).  Growth from n=4 to n=10 must be
        # clearly super-linear but far below n^4.
        growth = bits[10] / bits[4]
        assert 2.5 ** 2 < growth < 2.5 ** 4

    def test_round_complexity_constant_plus_ba(self):
        from repro.ba.phase_king import phase_king_rounds

        n, t = 7, 2
        result = run_protocol(
            factory, [value(i) for i in range(n)], n, t, kappa=KAPPA
        )
        # 2 exchange rounds + at most 4 PI_BA invocations.
        assert result.stats.rounds <= 2 + 4 * phase_king_rounds(t)
