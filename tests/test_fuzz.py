"""Chaos driver: payload codec, case sampling, campaign, shrinking,
repro artifacts, and the weakened-protocol canary."""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.core.add_last import add_last_bit
from repro.core.bitstrings import BitString
from repro.core.find_prefix import find_prefix
from repro.sim.fuzz import (
    ARTIFACT_FORMAT,
    ARTIFACT_SCHEMA_VERSION,
    NETWORK_COUNTERS,
    FuzzCase,
    FuzzReport,
    ProtocolSpec,
    case_inputs,
    decode_payload,
    encode_payload,
    fuzz,
    load_artifact,
    replay_artifact,
    replay_counters,
    run_case,
    sample_case,
    standard_registry,
    validate_artifact,
)
from repro.sim.invariants import paper_bit_budget, paper_round_budget


# ---------------------------------------------------------------------------
# payload codec
# ---------------------------------------------------------------------------


class TestPayloadCodec:
    @pytest.mark.parametrize("payload", [
        None,
        True,
        False,
        0,
        -17,
        1 << 200,            # beyond JSON float precision
        b"",
        b"\x00\xff",
        "text",
        (1, "a", None),
        [1, [2, (3,)]],
        frozenset({3, 1, 2}),
        {"k": 1, "nested": (True, b"x")},
        BitString(0b1011, 4),
        (BitString(1, 1), frozenset({0})),
    ])
    def test_round_trip(self, payload):
        data = encode_payload(payload)
        json.dumps(data)  # must be pure JSON
        assert decode_payload(data) == payload

    def test_bool_int_distinction_survives(self):
        assert decode_payload(encode_payload(True)) is True
        assert decode_payload(encode_payload(1)) == 1
        assert decode_payload(encode_payload(1)) is not True

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError):
            encode_payload(object())


# ---------------------------------------------------------------------------
# registry and sampling
# ---------------------------------------------------------------------------


class TestRegistryAndSampling:
    def test_standard_registry_protocols(self):
        registry = standard_registry()
        assert set(registry) >= {
            "pi_z", "pi_n", "fixed_length_ca", "fixed_length_ca_blocks",
            "high_cost_ca", "broadcast_ca", "naive_broadcast_ca",
        }

    def test_sampling_is_deterministic(self):
        registry = standard_registry()
        a = sample_case(random.Random(5), registry)
        b = sample_case(random.Random(5), registry)
        assert a == b

    def test_sampled_case_is_well_formed(self):
        registry = standard_registry()
        rng = random.Random(1)
        for _ in range(20):
            case = sample_case(rng, registry)
            assert case.protocol in registry
            assert 1 <= case.t <= (case.n - 1) // 3 or case.t == 1
            assert 3 * case.t < case.n
            assert case.ell > 0

    def test_blocks_ell_is_multiple_of_n_squared(self):
        registry = standard_registry()
        spec = registry["fixed_length_ca_blocks"]
        for n in (4, 5, 6, 7):
            ell = spec.ell_for(n, 8)
            assert ell > 0 and ell % (n * n) == 0

    def test_case_dict_round_trip(self):
        case = sample_case(random.Random(2), standard_registry())
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_case_inputs_spreads(self):
        case = sample_case(random.Random(3), standard_registry())
        for spread in ("spread", "clustered", "identical"):
            variant = FuzzCase(**{**case.to_dict(),
                                  "faults": case.faults,
                                  "adversaries": case.adversaries,
                                  "spread": spread})
            values = case_inputs(variant)
            assert len(values) == case.n
            assert all(0 <= v < (1 << case.ell) for v in values)
            if spread == "identical":
                assert len(set(values)) == 1


# ---------------------------------------------------------------------------
# clean campaign (no false positives)
# ---------------------------------------------------------------------------


class TestCleanCampaign:
    def test_small_campaign_is_clean(self):
        report = fuzz(runs=10, seed=0)
        assert report.clean, report.summary()
        assert len(report.cases) == 10
        assert "0 failure(s)" in report.summary()

    def test_campaign_is_deterministic(self):
        a = fuzz(runs=5, seed=7)
        b = fuzz(runs=5, seed=7)
        assert a.cases == b.cases

    def test_protocol_filter(self):
        report = fuzz(runs=4, seed=0, protocols=["pi_z"])
        assert {case.protocol for case in report.cases} == {"pi_z"}
        with pytest.raises(ValueError):
            fuzz(runs=1, seed=0, protocols=["nope"])


# ---------------------------------------------------------------------------
# the canary: a deliberately weakened GetOutput must be caught,
# shrunk, archived, and deterministically replayable.
# ---------------------------------------------------------------------------


def weak_fixed_length_ca(ctx, v_in, ell):
    """FixedLengthCA with a broken phase 3: instead of running
    ``GetOutput``'s witness announcement + BA, every party just takes
    ``MAX_l(PREFIX*)`` locally -- which is not always in the honest hull."""
    result = yield from find_prefix(
        ctx, v_in, ell, unit_bits=1, channel="wflca/fp"
    )
    if result.prefix.length == ell:
        return result.v
    prefix = yield from add_last_bit(
        ctx, result.prefix, result.v, ell, channel="wflca/al"
    )
    return prefix.max_fill(ell)


def canary_registry():
    return {
        "weak_flca": ProtocolSpec(
            name="weak_flca",
            build=lambda ell: (
                lambda ctx, v: weak_fixed_length_ca(ctx, v, ell)
            ),
            bit_budget=paper_bit_budget,
            round_budget=paper_round_budget,
        )
    }


class TestCanary:
    def test_weakened_get_output_is_caught_and_replayable(self, tmp_path):
        registry = canary_registry()
        report = fuzz(
            runs=12, seed=1, registry=registry,
            artifact_dir=str(tmp_path),
        )
        assert not report.clean, "canary protocol escaped the monitors"
        kinds = {failure.kind for failure in report.failures}
        assert "ConvexValidityMonitor" in kinds

        convex = next(
            f for f in report.failures
            if f.kind == "ConvexValidityMonitor"
        )
        # delta debugging actually reduced the byzantine script.
        assert convex.shrunk
        assert len(convex.script) < convex.original_script_size

        # the archived artifact replays to the same violation, twice.
        assert report.artifacts
        artifact = load_artifact(report.artifacts[0])
        assert artifact["format"] == ARTIFACT_FORMAT
        first = replay_artifact(artifact, registry=registry)
        second = replay_artifact(artifact, registry=registry)
        assert first.violated and first.matches(artifact)
        assert (first.kind, first.message) == (second.kind, second.message)

    def test_cli_replay_reproduces(self, tmp_path, monkeypatch, capsys):
        registry = canary_registry()
        report = fuzz(
            runs=12, seed=1, registry=registry,
            artifact_dir=str(tmp_path),
        )
        assert report.artifacts
        monkeypatch.setattr(
            "repro.sim.fuzz.standard_registry", lambda: registry
        )
        assert main(["replay", report.artifacts[0]]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_run_case_returns_failure_for_weak_protocol(self):
        registry = canary_registry()
        rng = random.Random(repr(("fuzz", 1)))
        failures = 0
        for _ in range(12):
            case = sample_case(rng, registry)
            if run_case(case, registry) is not None:
                failures += 1
        assert failures > 0


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------


class TestArtifacts:
    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(ValueError):
            load_artifact(str(path))

    def test_cli_replay_unknown_protocol_is_graceful(
        self, tmp_path, capsys
    ):
        registry = canary_registry()
        report = fuzz(
            runs=12, seed=1, registry=registry,
            artifact_dir=str(tmp_path),
        )
        assert report.artifacts
        # default registry does not know weak_flca -> graceful exit 2.
        assert main(["replay", report.artifacts[0]]) == 2
        assert "not in the standard registry" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# artifact schema versioning + recorded counters (satellites)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def canary_artifact(tmp_path_factory):
    """One archived canary failure, shared by the schema/counter tests."""
    registry = canary_registry()
    report = fuzz(
        runs=12, seed=1, registry=registry,
        artifact_dir=str(tmp_path_factory.mktemp("artifacts")),
    )
    assert report.artifacts
    return report.artifacts[0], registry


def rewrite(tmp_path, artifact, name="edited.json"):
    path = tmp_path / name
    path.write_text(json.dumps(artifact))
    return str(path)


class TestSchemaVersion:
    def test_artifacts_are_stamped(self, canary_artifact):
        path, _ = canary_artifact
        artifact = json.loads(open(path).read())
        assert artifact["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert validate_artifact(artifact) == []

    def test_pre_versioned_artifact_fails_loudly(
        self, canary_artifact, tmp_path
    ):
        """Corpus files from before the stamp replay with silently
        defaulted fault axes; loading them must be an error, not a
        guess."""
        path, _ = canary_artifact
        artifact = json.loads(open(path).read())
        del artifact["schema_version"]
        with pytest.raises(ValueError, match="re-generate"):
            load_artifact(rewrite(tmp_path, artifact))

    def test_future_schema_rejected(self, canary_artifact, tmp_path):
        path, _ = canary_artifact
        artifact = json.loads(open(path).read())
        artifact["schema_version"] = ARTIFACT_SCHEMA_VERSION + 7
        with pytest.raises(ValueError, match="schema_version"):
            load_artifact(rewrite(tmp_path, artifact))

    def test_unknown_keys_warn_but_load(self, canary_artifact, tmp_path):
        path, _ = canary_artifact
        artifact = json.loads(open(path).read())
        artifact["x_note"] = "annotated by a newer writer"
        artifact["case"]["x_extra"] = 1
        artifact["case"]["faults"]["x_axis"] = 0.5
        edited = rewrite(tmp_path, artifact)
        with pytest.warns(UserWarning, match="unknown"):
            loaded = load_artifact(edited)
        assert loaded["x_note"] == "annotated by a newer writer"
        with pytest.warns(UserWarning):
            messages = validate_artifact(loaded)
        assert len(messages) == 3  # artifact, case, and faults sections

    def test_cli_replay_surfaces_warnings(
        self, canary_artifact, tmp_path, monkeypatch, capsys
    ):
        path, registry = canary_artifact
        artifact = json.loads(open(path).read())
        artifact["x_note"] = "???"
        edited = rewrite(tmp_path, artifact)
        monkeypatch.setattr(
            "repro.sim.fuzz.standard_registry", lambda: registry
        )
        assert main(["replay", edited]) == 0
        out = capsys.readouterr().out
        assert "warning" in out and "x_note" in out


class TestRecordedCounters:
    def test_artifact_embeds_deterministic_counters(self, canary_artifact):
        path, registry = canary_artifact
        artifact = json.loads(open(path).read())
        block = artifact["counters"]
        # only counters the replay actually touched appear; the network
        # pair is unconditional for any protocol that ran.
        assert "net_rounds" in NETWORK_COUNTERS
        assert block["net_rounds"] > 0
        assert block["net_messages"] > 0
        # the recorded block is exactly one fresh replay's block:
        assert replay_counters(artifact, registry) == block
        assert replay_counters(artifact, registry) == block  # and stable

    def test_cli_verify_counters_reproduces(
        self, canary_artifact, monkeypatch, capsys
    ):
        path, registry = canary_artifact
        monkeypatch.setattr(
            "repro.sim.fuzz.standard_registry", lambda: registry
        )
        assert main(["replay", path, "--verify-counters"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "verified" in out

    def test_cli_verify_counters_detects_drift(
        self, canary_artifact, tmp_path, monkeypatch, capsys
    ):
        path, registry = canary_artifact
        artifact = json.loads(open(path).read())
        artifact["counters"]["net_messages"] += 5
        edited = rewrite(tmp_path, artifact)
        monkeypatch.setattr(
            "repro.sim.fuzz.standard_registry", lambda: registry
        )
        assert main(["replay", edited, "--verify-counters"]) == 1
        out = capsys.readouterr().out
        assert "net_messages" in out

    def test_cli_verify_counters_requires_recorded_block(
        self, canary_artifact, tmp_path, monkeypatch, capsys
    ):
        path, registry = canary_artifact
        artifact = json.loads(open(path).read())
        del artifact["counters"]
        edited = rewrite(tmp_path, artifact)
        monkeypatch.setattr(
            "repro.sim.fuzz.standard_registry", lambda: registry
        )
        assert main(["replay", edited, "--verify-counters"]) == 2
        assert "none recorded" in capsys.readouterr().out

    def test_campaign_summary_surfaces_retries(self):
        report = FuzzReport(runs=4, seed=0, retries=2)
        assert "2 retried case(s)" in report.summary()


# ---------------------------------------------------------------------------
# crash-plane campaigns
# ---------------------------------------------------------------------------


class TestCrashCampaign:
    def test_crash_sampling_widens_the_fault_space(self):
        registry = standard_registry()
        rng = random.Random(17)
        cases = [sample_case(rng, registry, crash=True) for _ in range(30)]
        assert any(c.faults.has_link_faults for c in cases)
        assert any(c.faults.has_crashes for c in cases)
        for case in cases:
            for party, down, up in case.faults.crashes:
                assert 0 <= party < case.n
                assert 1 <= down < up

    def test_crash_false_sampling_is_unchanged(self):
        """Adding the crash axes must not perturb crash=False campaigns:
        the extra draws are gated behind the flag."""
        registry = standard_registry()
        baseline = sample_case(random.Random(5), registry)
        again = sample_case(random.Random(5), registry, crash=False)
        assert baseline == again
        assert baseline.faults.crashes == ()
        assert not baseline.faults.has_link_faults

    def test_crash_campaign_is_clean_and_deterministic(self):
        a = fuzz(runs=6, seed=7, crash=True)
        b = fuzz(runs=6, seed=7, crash=True)
        assert a.clean, [f.case for f in a.failures]
        assert a.crash
        assert [c.to_dict() for c in a.cases] == [c.to_dict() for c in b.cases]
        assert a.summary() == b.summary()

    def test_crash_campaign_parallel_matches_serial(self):
        serial = fuzz(runs=6, seed=7, crash=True, workers=1)
        fanned = fuzz(runs=6, seed=7, crash=True, workers=3)
        assert [c.to_dict() for c in serial.cases] == [
            c.to_dict() for c in fanned.cases
        ]
        assert len(serial.failures) == len(fanned.failures)


# ---------------------------------------------------------------------------
# CLI fuzz
# ---------------------------------------------------------------------------


class TestCliFuzz:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--runs", "3", "--seed", "0", "--quiet"]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_crash_flag_runs_clean(self, capsys):
        assert main([
            "fuzz", "--runs", "3", "--seed", "7", "--crash", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "crash plane" in out
