"""Coordinate-wise vector CA tests (box validity)."""

from __future__ import annotations

import pytest

from repro.core.vector import vector_convex_agreement
from repro.sim import Context, run_protocol

from conftest import adversary_params

KAPPA = 64


def factory(dimension):
    def build(ctx, v):
        return vector_convex_agreement(ctx, v, dimension)

    return build


def check_box_validity(inputs, result, dimension):
    honest_ids = [p for p in range(len(inputs)) if p not in result.corrupted]
    output = result.common_output()
    assert len(output) == dimension
    for c in range(dimension):
        coords = [inputs[p][c] for p in honest_ids]
        assert min(coords) <= output[c] <= max(coords), (
            f"coordinate {c}: {output[c]} outside "
            f"[{min(coords)}, {max(coords)}]"
        )
    return output


class TestVectorCA:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_box_validity_2d(self, adversary):
        inputs = [(i, -10 * i) for i in range(7)]
        result = run_protocol(factory(2), inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        check_box_validity(inputs, result, 2)

    def test_unanimous_vector(self):
        value = (3, -1, 4)
        result = run_protocol(factory(3), [value] * 4, 4, 1, kappa=KAPPA)
        assert result.common_output() == value

    def test_3d_mixed(self):
        inputs = [
            (0, 100, -5),
            (1, 110, -6),
            (2, 105, -7),
            (3, 102, -4),
        ]
        result = run_protocol(factory(3), inputs, 4, 1, kappa=KAPPA)
        check_box_validity(inputs, result, 3)

    def test_dimension_mismatch(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(vector_convex_agreement(ctx, [1, 2], 3))

    def test_non_integer_entries(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(vector_convex_agreement(ctx, [1, 2.5], 2))

    def test_single_dimension_matches_pi_z_semantics(self):
        inputs = [(v,) for v in (-5, -2, 3, 10)]
        result = run_protocol(factory(1), inputs, 4, 1, kappa=KAPPA)
        out = check_box_validity(inputs, result, 1)
        assert isinstance(out, tuple) and len(out) == 1

    def test_large_coordinates(self):
        inputs = [(2**80 + i, -(2**70) - i) for i in range(4)]
        result = run_protocol(factory(2), inputs, 4, 1, kappa=KAPPA)
        check_box_validity(inputs, result, 2)
