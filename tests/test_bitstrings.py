"""Unit + property tests for the BITS/VAL/MIN/MAX machinery (Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bitstrings import (
    BitString,
    bits_fixed,
    bits_of,
    blocks_of,
    join_blocks,
    longest_common_prefix,
    max_fill,
    min_fill,
    val_of,
)

naturals = st.integers(min_value=0, max_value=(1 << 96) - 1)


class TestConstruction:
    def test_empty(self):
        empty = BitString.empty()
        assert len(empty) == 0
        assert empty.value == 0
        assert not empty

    def test_from_bits(self):
        bs = BitString.from_bits([1, 0, 1, 1])
        assert str(bs) == "1011"
        assert bs.value == 0b1011
        assert len(bs) == 4

    def test_from_str(self):
        assert BitString.from_str("0101").value == 5
        assert len(BitString.from_str("0101")) == 4

    def test_leading_zeroes_preserved(self):
        bs = BitString.from_str("0001")
        assert len(bs) == 4
        assert bs.value == 1

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            BitString.from_bits([0, 2])

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            BitString(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitString(16, 4)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            BitString(0, -1)


class TestPaperNotation:
    def test_bits_of_zero_is_empty(self):
        # The paper's BITS(v) has |BITS(0)| = 0 by the 2^{k-1} <= v bound.
        assert len(bits_of(0)) == 0

    def test_bits_of_minimal(self):
        assert str(bits_of(13)) == "1101"

    def test_bits_of_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_of(-3)

    def test_bits_fixed_pads_left(self):
        assert str(bits_fixed(5, 8)) == "00000101"

    def test_bits_fixed_rejects_too_small_ell(self):
        with pytest.raises(ValueError):
            bits_fixed(256, 8)

    def test_val_inverse_of_bits(self):
        assert val_of(bits_of(1234)) == 1234

    def test_min_fill_appends_zeroes(self):
        # MIN_l("101") with l=6 -> 101000
        assert min_fill(BitString.from_str("101"), 6) == 0b101000

    def test_max_fill_appends_ones(self):
        # MAX_l("101") with l=6 -> 101111
        assert max_fill(BitString.from_str("101"), 6) == 0b101111

    def test_fill_rejects_short_ell(self):
        with pytest.raises(ValueError):
            min_fill(BitString.from_str("10101"), 3)

    @given(naturals, st.integers(min_value=0, max_value=96))
    def test_bits_fixed_roundtrip(self, v, extra):
        ell = v.bit_length() + extra
        if ell == 0:
            ell = 1
        assert val_of(bits_fixed(v, ell)) == v

    @given(naturals)
    def test_bits_of_length_matches_bit_length(self, v):
        assert len(bits_of(v)) == v.bit_length()

    @given(naturals, st.integers(min_value=1, max_value=128))
    def test_min_le_max_fill(self, v, pad):
        prefix = bits_of(v)
        ell = len(prefix) + pad
        assert min_fill(prefix, ell) <= max_fill(prefix, ell)

    @given(naturals, st.integers(min_value=1, max_value=64))
    def test_fill_bounds_are_tight(self, v, pad):
        prefix = bits_of(v)
        ell = len(prefix) + pad
        lo, hi = min_fill(prefix, ell), max_fill(prefix, ell)
        assert hi - lo == (1 << pad) - 1
        assert bits_fixed(lo, ell).has_prefix(prefix)
        assert bits_fixed(hi, ell).has_prefix(prefix)


class TestIndexing:
    def test_getitem_is_leftmost_first(self):
        bs = BitString.from_str("1001")
        assert [bs[i] for i in range(4)] == [1, 0, 0, 1]

    def test_negative_index(self):
        assert BitString.from_str("10")[-1] == 0

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            BitString.from_str("10")[2]

    def test_slice(self):
        bs = BitString.from_str("110010")
        assert str(bs[1:4]) == "100"

    def test_slice_empty(self):
        assert len(BitString.from_str("110010")[3:3]) == 0

    def test_slice_step_rejected(self):
        with pytest.raises(ValueError):
            BitString.from_str("1100")[::2]

    def test_prefix_suffix(self):
        bs = BitString.from_str("110010")
        assert str(bs.prefix(2)) == "11"
        assert str(bs.suffix_from(2)) == "0010"

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            BitString.from_str("11").prefix(3)

    @given(naturals, st.data())
    def test_slice_concat_identity(self, v, data):
        bs = bits_of(v)
        cut = data.draw(st.integers(min_value=0, max_value=len(bs)))
        assert bs.prefix(cut).concat(bs.suffix_from(cut)) == bs


class TestAlgebra:
    def test_concat(self):
        a = BitString.from_str("10")
        b = BitString.from_str("011")
        assert str(a + b) == "10011"

    def test_append_bit(self):
        assert str(BitString.from_str("10").append_bit(1)) == "101"

    def test_append_bad_bit(self):
        with pytest.raises(ValueError):
            BitString.from_str("10").append_bit(2)

    def test_is_prefix_of(self):
        assert BitString.from_str("10").is_prefix_of(
            BitString.from_str("1011")
        )
        assert not BitString.from_str("11").is_prefix_of(
            BitString.from_str("1011")
        )
        assert BitString.empty().is_prefix_of(BitString.from_str("0"))

    def test_longer_is_not_prefix(self):
        assert not BitString.from_str("1011").is_prefix_of(
            BitString.from_str("10")
        )

    @given(naturals, naturals)
    def test_longest_common_prefix_properties(self, x, y):
        ell = max(x.bit_length(), y.bit_length(), 1)
        a, b = bits_fixed(x, ell), bits_fixed(y, ell)
        lcp = longest_common_prefix(a, b)
        assert a.has_prefix(lcp) and b.has_prefix(lcp)
        if len(lcp) < ell:
            assert a[len(lcp)] != b[len(lcp)]

    @given(naturals)
    def test_lcp_with_self_is_self(self, x):
        bs = bits_of(x)
        assert longest_common_prefix(bs, bs) == bs


class TestBlocks:
    def test_blocks_roundtrip(self):
        blocks = blocks_of(0xDEADBEEF, 32, 4)
        assert len(blocks) == 4
        assert all(len(b) == 8 for b in blocks)
        assert join_blocks(blocks).value == 0xDEADBEEF

    def test_blocks_require_divisibility(self):
        with pytest.raises(ValueError):
            blocks_of(5, 10, 3)

    @given(
        naturals,
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=8),
    )
    def test_blocks_concat_identity(self, v, num_blocks, block_bits):
        ell = num_blocks * block_bits
        v %= 1 << ell
        blocks = blocks_of(v, ell, num_blocks)
        assert join_blocks(blocks) == bits_fixed(v, ell)


class TestWire:
    def test_wire_bits_is_length(self):
        assert BitString.from_str("10110").wire_bits() == 5

    @given(naturals, st.integers(min_value=0, max_value=32))
    def test_wire_roundtrip(self, v, extra):
        ell = v.bit_length() + extra
        bs = BitString(v, ell)
        assert BitString.from_wire_bytes(bs.to_wire_bytes()) == bs

    def test_wire_rejects_truncated(self):
        data = BitString.from_str("1" * 20).to_wire_bytes()
        with pytest.raises(ValueError):
            BitString.from_wire_bytes(data[:-2])

    def test_wire_rejects_short_header(self):
        with pytest.raises(ValueError):
            BitString.from_wire_bytes(b"\x00")

    def test_wire_rejects_stray_high_bits(self):
        # claims 1 bit but carries value 2
        data = (1).to_bytes(4, "big") + b"\x02"
        with pytest.raises(ValueError):
            BitString.from_wire_bytes(data)

    def test_wire_empty(self):
        empty = BitString.empty()
        assert BitString.from_wire_bytes(empty.to_wire_bytes()) == empty


class TestRepr:
    def test_str(self):
        assert str(BitString.from_str("010")) == "010"

    def test_repr_short(self):
        assert "010" in repr(BitString.from_str("010"))

    def test_repr_long(self):
        long = BitString(0, 100)
        assert "len=100" in repr(long)

    def test_iter_matches_str(self):
        bs = bits_fixed(37, 9)
        assert "".join(str(b) for b in bs) == str(bs)
