"""Graceful degradation: the supervisor catches monitor violations and
simulation failures and reruns the inputs through HighCostCA, so every
supervised call ends with a convex-valid output -- and the fallback is
recorded, never silent."""

from __future__ import annotations

import pytest

from repro import convex_agreement
from repro.core.fixed_length import fixed_length_ca
from repro.errors import ProtocolViolation, SimulationError
from repro.sim import (
    BitBudgetMonitor,
    FallbackRecord,
    LossyTransport,
    run_with_fallback,
)

KAPPA = 64


def flca_factory(ell=8):
    return lambda ctx, v: fixed_length_ca(ctx, v, ell)


class TestCleanRun:
    def test_no_fallback_on_healthy_execution(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        result = run_with_fallback(
            flca_factory(), inputs, n=7, t=2, kappa=KAPPA,
        )
        result.assert_convex_valid(inputs)
        assert result.fallback is None


class TestCanary:
    """Force a Pi_lBA+ budget violation; the supervisor must land the
    execution on HighCostCA with Agreement + Convex Validity intact."""

    def test_budget_violation_degrades_to_high_cost_ca(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        # The find-prefix subprotocol of FixedLengthCA runs on channel
        # "flca/fp"; a 1-bit budget is unsatisfiable, so the monitor
        # fires mid-execution.
        monitor = BitBudgetMonitor(per_channel={"flca/fp": 1})
        result = run_with_fallback(
            flca_factory(), inputs, n=7, t=2, kappa=KAPPA,
            monitors=[monitor],
        )
        value = result.assert_convex_valid(inputs)
        assert min(inputs) <= value <= max(inputs)
        record = result.fallback
        assert isinstance(record, FallbackRecord)
        assert record.trigger == "ProtocolViolation"
        assert record.monitor.startswith("BitBudgetMonitor")
        assert record.primary_stats is not None
        assert "HighCostCA" in record.describe()

    def test_unsupervised_violation_still_raises(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        from repro.sim import run_protocol

        with pytest.raises(ProtocolViolation):
            run_protocol(
                flca_factory(), inputs, n=7, t=2, kappa=KAPPA,
                monitors=[BitBudgetMonitor(per_channel={"flca/fp": 1})],
            )


class TestTransportFailure:
    def test_transport_timeout_degrades(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        # A 4-slot budget under drop=0.95 cannot synchronize any round.
        transport = LossyTransport(drop=0.95, seed=3, slot_budget=4)
        result = run_with_fallback(
            flca_factory(), inputs, n=7, t=2, kappa=KAPPA,
            transport=transport,
        )
        result.assert_convex_valid(inputs)
        assert result.fallback is not None
        assert result.fallback.trigger == "SimulationError"


class TestOffsetEmbedding:
    def test_negative_inputs_are_shifted_and_unshifted(self):
        # PI_Z accepts signed inputs; HighCostCA needs naturals.  The
        # supervisor shifts on the way in and un-shifts the outputs.
        inputs = [-1005, -1004, -1003, -1003, -1002, -1001, -1000]
        outcome = convex_agreement(
            inputs, t=2, kappa=KAPPA, degrade=True,
        )
        assert min(inputs) <= outcome.value <= max(inputs)

    def test_non_integer_inputs_propagate_the_primary_failure(self):
        def broken_factory(ctx, v):
            raise SimulationError("boom")
            yield  # pragma: no cover

        with pytest.raises(SimulationError):
            run_with_fallback(
                broken_factory, ["a", "b", "c", "d"], n=4, t=1, kappa=KAPPA,
            )


class TestApiIntegration:
    def test_degrade_flag_records_fallback(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        outcome = convex_agreement(
            inputs, t=2, kappa=KAPPA, degrade=True,
            monitors=[BitBudgetMonitor(total=1)],
        )
        assert min(inputs) <= outcome.value <= max(inputs)
        assert outcome.execution.fallback is not None

    def test_degrade_flag_is_transparent_when_clean(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        plain = convex_agreement(inputs, t=2, kappa=KAPPA)
        supervised = convex_agreement(inputs, t=2, kappa=KAPPA, degrade=True)
        assert supervised.value == plain.value
        assert supervised.execution.fallback is None
