"""Analysis-harness tests: models, fitting, sweeps, tables."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PROTOCOLS,
    comparison_series,
    fit_power_law,
    format_measurements,
    format_table,
    make_inputs,
    marginal_slope,
    measure,
    pi_z_bits_model,
    sweep_ell,
    sweep_n,
)
from repro.analysis.predictions import (
    broadcast_ca_bits_model,
    ext_ba_plus_bits_model,
    high_cost_ca_bits_model,
)


class TestFitting:
    def test_fit_power_law_exact(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3 * x**2 for x in xs]
        exponent, r2 = fit_power_law(xs, ys)
        assert abs(exponent - 2.0) < 1e-9
        assert r2 > 0.999999

    def test_fit_power_law_linear(self):
        xs = [10, 100, 1000]
        ys = [5 * x for x in xs]
        exponent, _ = fit_power_law(xs, ys)
        assert abs(exponent - 1.0) < 1e-9

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_marginal_slope(self):
        assert marginal_slope([1, 2, 4], [10, 20, 40]) == 10

    def test_marginal_slope_requires_points(self):
        with pytest.raises(ValueError):
            marginal_slope([1], [1])
        with pytest.raises(ValueError):
            marginal_slope([2, 2], [1, 3])


class TestModels:
    def test_models_positive_and_monotone_in_ell(self):
        for model in (
            lambda ell: pi_z_bits_model(7, 2, 128, ell),
            lambda ell: ext_ba_plus_bits_model(7, 2, 128, ell),
            lambda ell: broadcast_ca_bits_model(7, 2, 128, ell),
            lambda ell: high_cost_ca_bits_model(7, ell),
        ):
            small, large = model(100), model(100000)
            assert 0 < small < large

    def test_model_ordering_for_large_ell(self):
        """For large l the paper's ordering holds:
        PI_Z < broadcast < high-cost."""
        ell = 10**7
        assert (
            pi_z_bits_model(7, 2, 128, ell)
            < broadcast_ca_bits_model(7, 2, 128, ell)
            < high_cost_ca_bits_model(7, ell)
        )

    def test_pi_z_model_slope_is_order_n(self):
        n = 9
        lo = pi_z_bits_model(n, 2, 128, 10**6)
        hi = pi_z_bits_model(n, 2, 128, 2 * 10**6)
        slope = (hi - lo) / 10**6
        # leading terms: 2*l*n (prefix search) + l*n (AddLastBlock) = 3n
        assert n <= slope <= 4 * n


class TestWorkloads:
    def test_make_inputs_deterministic(self):
        assert make_inputs(5, 32, seed=3) == make_inputs(5, 32, seed=3)

    def test_make_inputs_length_bound(self):
        for spread in ("spread", "clustered", "identical"):
            values = make_inputs(6, 24, spread=spread)
            assert len(values) == 6
            assert all(0 <= v < 2**24 for v in values)

    def test_identical_spread(self):
        values = make_inputs(5, 16, spread="identical")
        assert len(set(values)) == 1

    def test_clustered_share_prefix(self):
        values = make_inputs(5, 32, spread="clustered")
        assert max(values) - min(values) < 256

    def test_spread_spans_range(self):
        values = make_inputs(5, 32, spread="spread")
        assert max(values) >= 2**31
        assert min(values) < 2**31

    def test_unknown_spread_rejected(self):
        with pytest.raises(ValueError):
            make_inputs(5, 8, spread="nope")


class TestSweeps:
    def test_measure_pi_z(self):
        m = measure("pi_z", 4, None, 64, kappa=64)
        assert m.bits > 0 and m.rounds > 0
        assert m.t == 1
        inputs = make_inputs(4, 64)
        assert min(inputs) <= m.output <= max(inputs)

    def test_measure_all_protocols_run(self):
        for name in PROTOCOLS:
            m = measure(name, 4, None, 32, kappa=64, spread="clustered")
            assert m.bits > 0, name

    def test_sweep_ell_shapes(self):
        rows = sweep_ell("high_cost_ca", 4, [32, 64], kappa=64)
        assert [m.ell for m in rows] == [32, 64]
        assert rows[1].bits > rows[0].bits

    def test_sweep_n(self):
        rows = sweep_n("high_cost_ca", [4, 7], 32, kappa=64)
        assert [m.n for m in rows] == [4, 7]
        assert rows[1].bits > rows[0].bits

    def test_comparison_series(self):
        series = comparison_series(
            ["pi_z", "high_cost_ca"], n=4, ells=[32], kappa=64
        )
        assert set(series) == {"pi_z", "high_cost_ca"}

    def test_bits_per_party(self):
        m = measure("high_cost_ca", 4, 1, 16, kappa=64)
        assert m.bits_per_party == m.bits / 3


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_format_measurements(self):
        m = measure("high_cost_ca", 4, 1, 16, kappa=64)
        out = format_measurements([m], title="x")
        assert "high_cost_ca" in out

    def test_float_formatting(self):
        out = format_table(["x"], [[1234.5], [0.12], [0.0]])
        assert "1,23" in out and "0.12" in out
