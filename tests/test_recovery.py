"""Crash-recovery plane: write-ahead logs, parked inboxes, replay,
budget clipping, and the headline canary -- crashing honest parties
mid-FixedLengthCA on a lossy transport, byte-identical across worker
counts."""

from __future__ import annotations

import hashlib
import itertools
import warnings

import pytest

from repro.core.fixed_length import fixed_length_ca
from repro.errors import ConfigurationError
from repro.sim import (
    CrashEvent,
    CrashRestartAdversary,
    EquivocatingAdversary,
    LossyTransport,
    PassiveAdversary,
    RecoveryConfig,
    RecoveryError,
    broadcast_round,
    run_many,
    run_protocol,
)
from repro.sim.recovery import WriteAheadLog, outbox_digest
from repro.sim.party import Outgoing

KAPPA = 64


def run_flca(inputs, n, t, ell=8, **kwargs):
    return run_protocol(
        lambda ctx, v: fixed_length_ca(ctx, v, ell), inputs, n=n, t=t,
        kappa=KAPPA, **kwargs,
    )


class HonestObserver(PassiveAdversary):
    """Corrupts nobody: leaves the whole ``t`` budget to the crash plane
    (the default adversary corrupts ``t`` parties, which would clip
    every declarative crash)."""

    def select_corruptions(self, n, t):
        return set()


# ---------------------------------------------------------------------------
# WAL primitives
# ---------------------------------------------------------------------------


class TestWal:
    def test_outbox_digest_is_order_insensitive(self):
        a = Outgoing("ch", {0: "x", 1: "y"})
        b = Outgoing("ch", {1: "y", 0: "x"})
        assert outbox_digest(a) == outbox_digest(b)
        assert outbox_digest(None) != outbox_digest(a)

    def test_checkpoints_chain(self):
        wal = WriteAheadLog(checkpoint_interval=2)
        for r in range(4):
            wal.append(r, {0: r}, f"digest-{r}")
        assert [r for r, _ in wal.checkpoints] == [1, 3]
        # The chain is cumulative: replaying the same digests rebuilds it.
        other = WriteAheadLog(checkpoint_interval=2)
        for r in range(4):
            other.append(r, {0: r}, f"digest-{r}")
        assert wal.checkpoints == other.checkpoints

    def test_crash_event_validation(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(0, down=5, up=5)
        with pytest.raises(ConfigurationError):
            CrashEvent(0, down=-1, up=2)
        with pytest.raises(ConfigurationError):
            CrashRestartAdversary([(1, 0, 3)])


# ---------------------------------------------------------------------------
# declarative crash windows
# ---------------------------------------------------------------------------


class TestDeclarativeCrashes:
    def test_single_crash_recovers_with_guarantees(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        result = run_flca(inputs, 7, 2, crashes=[(2, 3, 6)],
                          adversary=HonestObserver())
        result.assert_convex_valid(inputs)
        assert ("down", 3, 2) in result.crash_log
        assert ("up", 6, 2) in result.crash_log
        assert result.recoveries == 1
        assert result.stats.retrans_bits > 0  # parked re-deliveries

    def test_double_crash_same_party(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        result = run_flca(inputs, 7, 2, crashes=[(2, 2, 5), (2, 8, 11)],
                          adversary=HonestObserver())
        result.assert_convex_valid(inputs)
        assert result.recoveries == 2

    def test_crash_from_round_zero(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        result = run_flca(inputs, 7, 2, crashes=[CrashEvent(1, 0, 4)],
                          adversary=HonestObserver())
        result.assert_convex_valid(inputs)
        assert result.recoveries == 1

    def test_over_budget_crashes_are_clipped_with_warning(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        # The default adversary corrupts t parties, so every crash
        # request exceeds the shared budget and must be clipped.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_flca(
                inputs, 7, 2, crashes=[(0, 2, 5), (1, 2, 5), (2, 2, 5)],
            )
        result.assert_convex_valid(inputs)
        assert result.clipped_crashes
        assert any("clip" in str(w.message).lower() for w in caught)
        # Down + corrupted never exceeded t in any executed round.
        assert result.recoveries <= 2

    def test_crash_schedule_is_deterministic(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        a = run_flca(inputs, 7, 2, crashes=[(2, 3, 7)], trace=True,
                     adversary=HonestObserver())
        b = run_flca(inputs, 7, 2, crashes=[(2, 3, 7)], trace=True,
                     adversary=HonestObserver())
        assert a.outputs == b.outputs
        assert a.crash_log == b.crash_log
        assert a.trace == b.trace

    def test_recovery_config_tunes_checkpoints(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        result = run_flca(
            inputs, 7, 2, crashes=[(2, 3, 9)],
            adversary=HonestObserver(),
            recovery=RecoveryConfig(checkpoint_interval=2),
        )
        result.assert_convex_valid(inputs)


# ---------------------------------------------------------------------------
# adversarial crashes
# ---------------------------------------------------------------------------


class TestCrashRestartAdversary:
    def test_pure_crash_plane(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        adversary = CrashRestartAdversary([(2, 3, 6)])
        result = run_flca(inputs, 7, 2, adversary=adversary)
        assert result.corrupted == frozenset()
        result.assert_convex_valid(inputs)
        assert ("down", 3, 2) in result.crash_log

    def test_composes_with_byzantine_inner(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]

        class OneCorruption(EquivocatingAdversary):
            def select_corruptions(self, n, t):
                return {n - 1}

        adversary = CrashRestartAdversary(
            [(2, 3, 6)], inner=OneCorruption(seed=5),
        )
        # One byzantine corruption + one concurrent crash <= t = 2.
        result = run_flca(inputs, 7, 2, adversary=adversary)
        result.assert_convex_valid(inputs)
        assert result.corrupted == frozenset({6})
        assert ("down", 3, 2) in result.crash_log


# ---------------------------------------------------------------------------
# replay soundness
# ---------------------------------------------------------------------------

_TICKET = itertools.count()


def _nondeterministic_protocol(ctx, v_in):
    """Broadcasts a fresh global counter value -- unrecoverable."""
    for _ in range(6):
        yield from broadcast_round(ctx, "bad", next(_TICKET))
    return v_in


class TestReplayVerification:
    def test_nondeterministic_party_is_refused(self):
        with pytest.raises(RecoveryError):
            run_protocol(
                _nondeterministic_protocol, [1, 2, 3, 4], n=4, t=1,
                kappa=KAPPA, crashes=[(1, 2, 4)],
                adversary=HonestObserver(),
            )


# ---------------------------------------------------------------------------
# canary: crashes + lossy links, byte-identical across worker counts
# ---------------------------------------------------------------------------

_CANARY_INPUTS = [3, 5, 7, 11, 13, 17, 19]


def crash_lossy_canary(seed: int) -> dict:
    """One canary execution: two honest crashes on a drop-0.25 link.

    Module-level so :func:`run_many` workers resolve it by name.  The
    crash targets are honest (the pure crash plane corrupts nobody), and
    f = 2 <= t = 2.
    """
    result = run_flca(
        _CANARY_INPUTS, 7, 2,
        adversary=CrashRestartAdversary([(1, 3, 6), (2, 5, 8)]),
        transport=LossyTransport(drop=0.25, delay=0.1, seed=seed),
        trace=True,
    )
    value = result.assert_convex_valid(_CANARY_INPUTS)
    return {
        "value": value,
        "outputs": sorted(result.outputs.items()),
        "honest_bits": result.stats.honest_bits,
        "retrans_bits": result.stats.retrans_bits,
        "ack_bits": result.stats.ack_bits,
        "transport_slots": result.stats.transport_slots,
        "crash_log": result.crash_log,
        "recoveries": result.recoveries,
        "rounds": result.stats.rounds,
        "trace_digest": hashlib.sha256(
            "\n".join(str(sorted(r.to_dict().items())) for r in result.trace)
            .encode()
        ).hexdigest(),
    }


class TestCanary:
    def test_crashes_on_lossy_links_keep_guarantees(self):
        outcome = crash_lossy_canary(seed=0)
        assert outcome["recoveries"] == 2
        assert ("down", 3, 1) in outcome["crash_log"]
        assert ("down", 5, 2) in outcome["crash_log"]
        assert outcome["retrans_bits"] > 0

    def test_byte_identical_across_worker_counts(self):
        seeds = list(range(6))
        serial = run_many(crash_lossy_canary, seeds, workers=1)
        fanned = run_many(crash_lossy_canary, seeds, workers=4)
        assert all(o.ok for o in serial)
        assert all(o.ok for o in fanned)
        assert [o.value for o in serial] == [o.value for o in fanned]
        # The logical execution never depends on the link schedule seed.
        assert len({tuple(o.value["outputs"]) for o in serial}) == 1
        assert len({o.value["honest_bits"] for o in serial}) == 1
