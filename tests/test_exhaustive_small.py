"""Exhaustive byzantine strategies on small one-shot subprotocols.

For n = 4, t = 1 the single corrupted party's per-round behaviour over
a small message alphabet is fully enumerable.  These tests iterate
*every* deterministic per-destination strategy for the critical single
rounds of ``GetOutput`` and ``PI_BA+`` -- no sampling, no seeds -- and
assert the lemma conclusions in each case.  This catches threshold
off-by-ones that randomized adversaries can miss.

The GetOutput enumeration (|alphabet|^n = 625 independent executions)
runs through the process-pool engine (:mod:`repro.sim.parallel`): each
strategy is a pure function of its alphabet-index tuple, so the sweep
parallelises with byte-identical verdicts.
"""

from __future__ import annotations

import itertools

import pytest

from repro.ba.ba_plus import ba_plus
from repro.core.bitstrings import BitString
from repro.core.get_output import get_output
from repro.sim import DROP, ScriptedAdversary, run_protocol
from repro.sim.network import default_round_budget
from repro.sim.parallel import run_many

KAPPA = 64
N, T = 4, 1

#: what the corrupted party may send in a bit-announcement round
ANNOUNCE_ALPHABET = [0, 1, None, "junk", DROP]


def per_dest_strategies(alphabet, dests):
    """All |alphabet|^len(dests) per-destination assignments."""
    for combo in itertools.product(alphabet, repeat=len(dests)):
        yield dict(zip(dests, combo))


def run_announce_strategy(combo_indices: tuple[int, ...]) -> int:
    """One GetOutput execution under one announce-round strategy.

    Takes alphabet *indices* (not values: the ``DROP`` sentinel must
    not cross a process boundary -- it is compared by identity) and
    returns the common honest output.  Module-level and index-driven so
    the engine can fan the full enumeration out over workers.
    """
    assignment = {
        dst: ANNOUNCE_ALPHABET[i] for dst, i in enumerate(combo_indices)
    }
    prefix = BitString.from_str("01")
    ell = 4
    below = prefix.min_fill(ell) - 1  # = 3 -> below MIN(0100)=4
    inputs = [below] * N

    def handler(view, src, dst, spec):
        if view.channel.endswith("/announce"):
            return assignment[dst]
        return spec if spec is not None else DROP

    def factory(ctx, v):
        return get_output(ctx, prefix, v, ell)

    result = run_protocol(
        factory, inputs, N, T, kappa=KAPPA,
        adversary=ScriptedAdversary(handler),
    )
    return result.common_output()


class TestGetOutputExhaustive:
    """Every corrupted behaviour in the announce round of GetOutput.

    Setup: prefix '01', all three honest parties hold v_bot below the
    prefix (the precondition's t+1 = 2 witnesses are satisfied with
    margin), so the ONLY valid output is MIN_l(prefix).  The corrupted
    party may send anything in the announce round and behaves honestly
    afterwards (the BA afterwards is exercised exhaustively enough by
    its own tests).
    """

    COMBOS = list(
        itertools.product(range(len(ANNOUNCE_ALPHABET)), repeat=N)
    )

    def test_all_announce_behaviours(self):
        expected = BitString.from_str("01").min_fill(4)
        outcomes = run_many(run_announce_strategy, self.COMBOS, workers=2)
        assert len(outcomes) == len(ANNOUNCE_ALPHABET) ** N
        bad = {
            self.COMBOS[o.index]: o.error or o.value
            for o in outcomes
            if not o.ok or o.value != expected
        }
        # all honest witnesses are below: MAX would be invalid.
        assert not bad, f"{len(bad)} strategy(ies) escaped: {bad}"

    def test_enumeration_matches_serial(self):
        """Engine conformance on a real protocol sweep: a slice of the
        enumeration gives identical verdicts serially and in parallel."""
        combos = self.COMBOS[::40]
        serial = run_many(run_announce_strategy, combos, workers=1)
        parallel = run_many(run_announce_strategy, combos, workers=4)
        assert serial == parallel


class TestRoundBudgetRegression:
    """Pin the default round budgets the monitors and fuzz campaigns
    derive from (n, t).  These values gate every chaos campaign: a
    silent change would loosen (or break) all RoundBudgetMonitor
    verdicts, so drift must be a conscious, reviewed edit here."""

    @pytest.mark.parametrize("n,t,budget", [
        (4, 1, 12288),
        (7, 2, 26112),
        (10, 3, 49152),
        (16, 5, 73728),
    ])
    def test_pinned_budgets(self, n, t, budget):
        assert default_round_budget(n, t) == budget

    def test_budget_monotone_in_n(self):
        budgets = [default_round_budget(n, (n - 1) // 3)
                   for n in (4, 7, 10, 13, 16)]
        assert budgets == sorted(budgets)
        assert len(set(budgets)) == len(budgets)


class TestBaPlusVoteExhaustive:
    """Every corrupted vote-round behaviour against pre-agreement.

    Setup: n - 2t = 2 honest parties hold value A (pre-agreement) and
    one honest party holds B.  Bounded Pre-Agreement demands a non-
    bottom output and Intrusion Tolerance demands it be A or B, for
    EVERY vote the corrupted party can cast.
    """

    A = b"\xaa" * (KAPPA // 8)
    B = b"\xbb" * (KAPPA // 8)
    C = b"\xcc" * (KAPPA // 8)

    VOTE_ALPHABET = [
        ("VOTE",),
        ("VOTE", A),
        ("VOTE", B),
        ("VOTE", C),
        ("VOTE", A, C),
        ("VOTE", B, C),
        ("VOTE", A, B),
        None,
        DROP,
    ]

    @pytest.mark.parametrize(
        "same_to_all", [True, False], ids=["uniform", "split"]
    )
    @pytest.mark.parametrize(
        "vote_index", range(len(VOTE_ALPHABET)),
        ids=lambda i: f"vote{i}",
    )
    def test_all_vote_behaviours(self, vote_index, same_to_all):
        vote = self.VOTE_ALPHABET[vote_index]
        alt = self.VOTE_ALPHABET[(vote_index + 3) % len(self.VOTE_ALPHABET)]
        inputs = [self.A, self.A, self.B, self.C]

        def handler(view, src, dst, spec):
            if view.channel.endswith("/vote"):
                if same_to_all or dst < 2:
                    return vote
                return alt
            if view.channel.endswith("/input"):
                return self.C
            return spec if spec is not None else DROP

        result = run_protocol(
            lambda ctx, v: ba_plus(ctx, v), inputs, N, T, kappa=KAPPA,
            adversary=ScriptedAdversary(handler),
        )
        out = result.common_output()
        honest = {inputs[p] for p in range(N) if p not in result.corrupted}
        assert out is None or out in honest   # Intrusion Tolerance
        assert out is not None                # Bounded Pre-Agreement


class TestHighCostKingExhaustive:
    """Every corrupted king broadcast in HighCostCA's first phase.

    Corrupt party 0 (the phase-0 king).  Whatever the king says, the
    output must stay in the honest hull (phase 1's honest king
    re-establishes agreement).
    """

    KING_ALPHABET = [0, 5, 7, 10, 10**9, -3, None, "junk", DROP]

    @pytest.mark.parametrize(
        "king_value", KING_ALPHABET, ids=lambda v: repr(v)
    )
    @pytest.mark.parametrize("split", [False, True], ids=["uni", "split"])
    def test_all_king_values(self, king_value, split):
        from repro.core.high_cost_ca import high_cost_ca
        from repro.sim import Adversary

        inputs = [9, 5, 7, 10]

        class BadKing(Adversary):
            def select_corruptions(self, n, t):
                return {0}

            def mutate(self, view, src, dst, payload):
                if view.channel.endswith("p0/king"):
                    if split and dst >= 2:
                        return 10**6
                    return king_value
                return payload

        result = run_protocol(
            lambda ctx, v: high_cost_ca(ctx, v), inputs, N, T,
            kappa=KAPPA, adversary=BadKing(),
        )
        out = result.common_output()
        assert 5 <= out <= 10
