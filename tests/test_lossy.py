"""Lossy transport: seeded link schedules, ack/retransmit round
synchronizer, overhead accounting, and the transparency guarantee --
protocols run unmodified and see exactly the perfect-network inboxes."""

from __future__ import annotations

import pytest

from repro.core import protocol_z
from repro.core.fixed_length import fixed_length_ca
from repro.errors import ConfigurationError, SimulationError
from repro.sim import (
    ACK_BITS,
    FaultSpec,
    LossyTransport,
    TimeoutEscalation,
    run_protocol,
)

KAPPA = 64


def run_flca(inputs, n, t, ell=8, **kwargs):
    return run_protocol(
        lambda ctx, v: fixed_length_ca(ctx, v, ell), inputs, n=n, t=t,
        kappa=KAPPA, **kwargs,
    )


class TestConstruction:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            LossyTransport(drop=1.0)
        with pytest.raises(ConfigurationError):
            LossyTransport(delay=-0.1)
        with pytest.raises(ConfigurationError):
            LossyTransport(reorder=1.5)
        with pytest.raises(ConfigurationError):
            LossyTransport(slot_budget=0)

    def test_from_spec_without_link_faults_is_none(self):
        assert LossyTransport.from_spec(FaultSpec(drop=0.5, garble=0.2)) is None

    def test_from_spec_builds_decorrelated_transport(self):
        spec = FaultSpec(link_drop=0.2, link_delay=0.1, seed=9)
        transport = LossyTransport.from_spec(spec)
        assert transport is not None
        assert transport.drop == 0.2
        assert transport.delay == 0.1
        # The transport seed is derived, never the raw spec seed.
        assert transport.seed != spec.seed


class TestTransparency:
    """Logical executions on lossy links are byte-identical to perfect
    links; only the separately-accounted overhead differs."""

    def test_outputs_and_honest_bits_unchanged(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        baseline = run_flca(inputs, 7, 2)
        lossy = run_flca(
            inputs, 7, 2,
            transport=LossyTransport(drop=0.3, delay=0.2, reorder=0.5, seed=4),
        )
        assert lossy.outputs == baseline.outputs
        assert lossy.stats.honest_bits == baseline.stats.honest_bits
        assert lossy.stats.rounds == baseline.stats.rounds
        lossy.assert_convex_valid(inputs)

    def test_overhead_accounted_separately(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        result = run_flca(
            inputs, 7, 2, transport=LossyTransport(drop=0.3, seed=4),
        )
        stats = result.stats
        assert stats.retrans_bits > 0
        assert stats.retrans_messages > 0
        assert stats.ack_bits > 0
        assert stats.ack_bits == stats.ack_messages * ACK_BITS
        assert stats.transport_slots >= stats.rounds
        assert stats.resilience_overhead_bits == (
            stats.retrans_bits + stats.ack_bits
        )

    def test_perfect_transport_still_pays_acks(self):
        inputs = [1, 2, 3, 4]
        result = run_flca(inputs, 4, 1, transport=LossyTransport(seed=1))
        assert result.stats.retrans_bits == 0
        assert result.stats.ack_bits > 0

    def test_schedule_is_deterministic(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]

        def once():
            return run_flca(
                inputs, 7, 2,
                transport=LossyTransport(drop=0.25, reorder=0.3, seed=12),
            )

        a, b = once(), once()
        assert a.outputs == b.outputs
        assert a.stats.retrans_bits == b.stats.retrans_bits
        assert a.stats.transport_slots == b.stats.transport_slots

    def test_different_seeds_differ_in_overhead(self):
        inputs = [3, 5, 7, 11, 13, 17, 19]
        overheads = {
            run_flca(
                inputs, 7, 2, transport=LossyTransport(drop=0.3, seed=s),
            ).stats.retrans_bits
            for s in range(3)
        }
        assert len(overheads) > 1

    def test_link_restriction(self):
        inputs = [1, 2, 3, 4]
        transport = LossyTransport(
            drop=0.5, seed=2, links=frozenset({(0, 1)}),
        )
        result = run_flca(inputs, 4, 1, transport=transport)
        result.assert_convex_valid(inputs)

    def test_pi_z_runs_unmodified_on_lossy_links(self):
        inputs = [-100, -50, 0, 50, 100, 150, 200]
        baseline = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, n=7, t=2, kappa=KAPPA,
        )
        lossy = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, n=7, t=2, kappa=KAPPA,
            transport=LossyTransport(drop=0.2, delay=0.1, seed=7),
        )
        assert lossy.outputs == baseline.outputs
        assert lossy.stats.honest_bits == baseline.stats.honest_bits


class TestTimeout:
    def test_exhausted_slot_budget_fails_the_simulation(self):
        inputs = [1, 2, 3, 4]
        transport = LossyTransport(drop=0.95, seed=3, slot_budget=4)
        with pytest.raises(SimulationError, match="slot"):
            run_flca(inputs, 4, 1, transport=transport)

    def test_escalation_survives_what_a_fixed_budget_cannot(self):
        inputs = [1, 2, 3, 4]
        with pytest.raises(SimulationError):
            run_flca(
                inputs, 4, 1,
                transport=LossyTransport(drop=0.4, seed=3, slot_budget=6),
            )
        result = run_flca(
            inputs, 4, 1,
            transport=LossyTransport(
                drop=0.4, seed=3, slot_budget=6,
                escalation=TimeoutEscalation(),
            ),
        )
        baseline = run_flca(inputs, 4, 1)
        assert result.outputs == baseline.outputs
        assert result.stats.honest_bits == baseline.stats.honest_bits
        # the retries are visible only in the escalation accounting.
        stats = result.stats
        assert stats.resync_attempts > 0
        assert stats.escalated_rounds > 0
        assert stats.escalated_rounds <= stats.resync_attempts
        assert stats.beacon_bits > 0
