"""Report-generator tests."""

from __future__ import annotations

from repro.analysis.report import QUICK, ReportSection, generate_report


class TestReportSections:
    def test_section_render(self):
        section = ReportSection(
            experiment="T9",
            title="demo",
            table="a | b",
            notes=["note one", "note two"],
        )
        text = section.render()
        assert text.startswith("== T9: demo ==")
        assert "* note one" in text
        assert "* note two" in text


class TestGenerateReport:
    def test_quick_report_structure(self):
        text = generate_report(QUICK)
        for experiment in ("T3", "T4", "T5", "F1"):
            assert f"== {experiment}:" in text
        assert "quick scale" in text
        assert "bits per extra input bit" in text

    def test_report_contains_all_protocols(self):
        text = generate_report(QUICK)
        for name in ("pi_z", "high_cost_ca", "broadcast_ca",
                     "fixed_length_ca_blocks"):
            assert name in text
