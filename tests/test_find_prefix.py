"""``FindPrefix`` / ``FindPrefixBlocks`` tests (Lemmas 1 and 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitstrings import bits_fixed, longest_common_prefix
from repro.core.find_prefix import find_prefix, find_prefix_blocks
from repro.sim import RandomGarbageAdversary, run_protocol

from conftest import adversary_params, honest_values

KAPPA = 64
ELL = 32


def fp_factory(ell, unit_bits=1):
    def factory(ctx, v):
        return find_prefix(ctx, v, ell, unit_bits=unit_bits)

    return factory


def check_lemma1(inputs, result, ell):
    """Assert the conclusion of Lemma 1 (resp. Lemma 4) for an execution."""
    honest_ids = [p for p in range(len(inputs)) if p not in result.corrupted]
    outputs = {p: result.outputs[p] for p in honest_ids}
    prefixes = {p: out.prefix for p, out in outputs.items()}
    # (same PREFIX* everywhere)
    first = next(iter(prefixes.values()))
    assert all(pfx == first for pfx in prefixes.values())
    lo, hi = min(inputs[p] for p in honest_ids), max(
        inputs[p] for p in honest_ids
    )
    for p, out in outputs.items():
        # (i) PREFIX* prefixes BITS_l(v); v and v_bot valid.
        assert bits_fixed(out.v, ell).has_prefix(out.prefix)
        assert lo <= out.v <= hi, f"v={out.v} outside [{lo},{hi}]"
        assert lo <= out.v_bot <= hi
    return first, outputs


class TestLemma1:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_invariants_spread_inputs(self, adversary):
        inputs = [3, 2**31 - 5, 2**20, 77, 2**30, 12345, 999]
        result = run_protocol(fp_factory(ELL), inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        check_lemma1(inputs, result, ELL)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_identical_inputs_full_prefix(self, adversary):
        inputs = [0xDEADBEEF] * 7
        result = run_protocol(fp_factory(ELL), inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        prefix, outputs = check_lemma1(inputs, result, ELL)
        assert prefix.length == ELL
        assert all(out.v == 0xDEADBEEF for out in outputs.values())

    def test_prefix_at_least_honest_lcp(self):
        """The agreed prefix extends at least as far as the honest
        inputs' longest common prefix (the central insight of Sec. 1.2)."""
        base = 0b10110011 << (ELL - 8)
        inputs = [base + i for i in range(7)]  # 24-bit honest LCP at least
        result = run_protocol(fp_factory(ELL), inputs, 7, 2, kappa=KAPPA)
        prefix, _ = check_lemma1(inputs, result, ELL)
        honest = honest_values(inputs, result)
        lcp = longest_common_prefix(
            bits_fixed(min(honest), ELL), bits_fixed(max(honest), ELL)
        )
        assert prefix.length >= lcp.length
        # and the prefix is consistent with the honest range:
        assert prefix.min_fill(ELL) <= max(honest)
        assert prefix.max_fill(ELL) >= min(honest)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**ELL - 1),
                 min_size=7, max_size=7),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=10, deadline=None)
    def test_invariants_random(self, inputs, seed):
        result = run_protocol(
            fp_factory(ELL), inputs, 7, 2, kappa=KAPPA,
            adversary=RandomGarbageAdversary(seed),
        )
        check_lemma1(inputs, result, ELL)


class TestLemma4Blocks:
    def test_invariants_blocks(self):
        n, t = 4, 1
        ell = n * n * 4  # 16 blocks of 4 bits
        inputs = [0, 2**ell - 1, 2**(ell // 2), 5]
        result = run_protocol(
            lambda ctx, v: find_prefix_blocks(ctx, v, ell),
            inputs, n, t, kappa=KAPPA,
        )
        prefix, _ = check_lemma1(inputs, result, ell)
        # block granularity: prefix length is a multiple of block size
        assert prefix.length % 4 == 0

    def test_identical_inputs_blocks(self):
        n, t = 4, 1
        ell = n * n * 2
        inputs = [(1 << ell) - 3] * n
        result = run_protocol(
            lambda ctx, v: find_prefix_blocks(ctx, v, ell),
            inputs, n, t, kappa=KAPPA,
        )
        prefix, outputs = check_lemma1(inputs, result, ell)
        assert prefix.length == ell

    def test_custom_block_count(self):
        n, t = 4, 1
        ell = 24
        inputs = [1, 2, 3, 4]
        result = run_protocol(
            lambda ctx, v: find_prefix_blocks(ctx, v, ell, num_blocks=8),
            inputs, n, t, kappa=KAPPA,
        )
        check_lemma1(inputs, result, ell)


class TestValidation:
    def test_bad_ell(self):
        from repro.sim import Context

        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(find_prefix(ctx, 0, 0))

    def test_unit_must_divide(self):
        from repro.sim import Context

        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(find_prefix(ctx, 0, 10, unit_bits=3))

    def test_input_out_of_range(self):
        from repro.sim import Context

        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(find_prefix(ctx, 2**10, 10))

    def test_blocks_divisibility(self):
        from repro.sim import Context

        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(find_prefix_blocks(ctx, 0, 17))


class TestIterationCount:
    def test_log_ell_iterations(self):
        """FindPrefix runs O(log l) PI_lBA+ iterations (Lemma 1)."""
        import math

        ell = 64
        inputs = [i * 997 for i in range(7)]
        result = run_protocol(fp_factory(ell), inputs, 7, 2, kappa=KAPPA)
        iterations = {
            ch.split("/")[0]
            for ch in result.stats.bits_by_channel
            if ch.startswith("fp/i")
        }
        distinct = {
            ch.split("/")[1] for ch in result.stats.bits_by_channel
            if ch.startswith("fp/i")
        }
        assert len(distinct) <= math.ceil(math.log2(ell)) + 1
