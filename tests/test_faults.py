"""Fault-injection plane: specs, injectors, composition, record/replay,
determinism, and adaptive-corruption clipping visibility."""

from __future__ import annotations

import random

import pytest

from repro.core import protocol_z
from repro.sim import (
    Adversary,
    ComposedAdversary,
    CrashAdversary,
    EquivocatingAdversary,
    FaultInjector,
    FaultSpec,
    PassiveAdversary,
    RecordingAdversary,
    ReplayAdversary,
    SplitVoteAdversary,
    run_protocol,
)
from repro.sim.faults import _garble

KAPPA = 64


def run_pi_z(inputs, n, t, adversary, **kwargs):
    return run_protocol(
        lambda ctx, v: protocol_z(ctx, v), inputs, n=n, t=t,
        kappa=KAPPA, adversary=adversary, **kwargs,
    )


# ---------------------------------------------------------------------------
# FaultSpec
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            FaultSpec(replay=-0.1)

    def test_is_noop(self):
        assert FaultSpec().is_noop
        assert not FaultSpec(drop=0.1).is_noop

    def test_dict_round_trip(self):
        spec = FaultSpec(
            drop=0.25, garble=0.5, links=frozenset({(1, 2), (3, 0)}),
            seed=99,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_reseeded(self):
        spec = FaultSpec(drop=0.25, seed=1)
        other = spec.reseeded(2)
        assert other.seed == 2 and other.drop == 0.25

    def test_describe(self):
        assert "drop=1.0" in FaultSpec(drop=1.0).describe()
        assert "noop" in FaultSpec().describe()


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_drop_all(self):
        injector = FaultInjector(FaultSpec(drop=1.0))
        assert injector.apply({(3, 0): 7, (3, 1): 8}) == {}

    def test_duplicate_carries_to_next_round(self):
        injector = FaultInjector(FaultSpec(duplicate=1.0))
        first = injector.apply({(3, 0): "x"})
        assert first == {(3, 0): "x"}
        second = injector.apply({})
        assert second == {(3, 0): "x"}
        assert injector.apply({}) == {}

    def test_fresh_payload_overrides_carryover(self):
        injector = FaultInjector(FaultSpec(duplicate=1.0))
        injector.apply({(3, 0): "old"})
        assert injector.apply({(3, 0): "new"}) == {(3, 0): "new"}

    def test_garble_mutates_deterministically(self):
        messages = {(3, 0): 1234}
        a = FaultInjector(FaultSpec(garble=1.0, seed=5)).apply(messages)
        b = FaultInjector(FaultSpec(garble=1.0, seed=5)).apply(messages)
        assert a == b
        assert a[(3, 0)] != 1234

    def test_replay_resends_history(self):
        injector = FaultInjector(FaultSpec(replay=1.0))
        injector.apply({(3, 0): "first"})
        out = injector.apply({(3, 0): "second"})
        assert out == {(3, 0): "first"}

    def test_link_restriction(self):
        spec = FaultSpec(drop=1.0, links=frozenset({(3, 0)}))
        out = FaultInjector(spec).apply({(3, 0): 1, (3, 1): 2})
        assert out == {(3, 1): 2}


class TestGarble:
    @pytest.mark.parametrize("payload", [
        True, 0, 41, b"", b"abc", "text", (1, 2), [], {"k": 3}, None,
        ((1, "x"), b"y"),
    ])
    def test_total_and_deterministic(self, payload):
        a = _garble(payload, random.Random(7))
        b = _garble(payload, random.Random(7))
        assert a == b

    def test_bool_flips(self):
        assert _garble(True, random.Random(0)) is False


# ---------------------------------------------------------------------------
# ComposedAdversary
# ---------------------------------------------------------------------------


class TestComposedAdversary:
    def test_requires_parts(self):
        with pytest.raises(ValueError):
            ComposedAdversary([])

    def test_corruption_union_clipped_to_budget(self):
        composed = ComposedAdversary(
            [CrashAdversary(), SplitVoteAdversary()]
        )
        assert len(composed.select_corruptions(7, 2)) <= 2

    def test_explicit_initial_set(self):
        composed = ComposedAdversary([CrashAdversary()], initial={1})
        assert composed.select_corruptions(7, 2) == {1}

    def test_describe_mentions_parts_and_faults(self):
        composed = ComposedAdversary(
            [PassiveAdversary(), EquivocatingAdversary()],
            faults=FaultSpec(drop=0.5),
        )
        text = composed.describe()
        assert "PassiveAdversary" in text
        assert "drop=0.5" in text

    def test_ca_survives_composition_with_faults(self):
        inputs = [10, 20, 30, 40, 50, 60, 70]
        composed = ComposedAdversary(
            [EquivocatingAdversary(seed=3), SplitVoteAdversary(seed=4)],
            faults=FaultSpec(drop=0.3, garble=0.3, replay=0.2, seed=9),
            seed=1,
        )
        result = run_pi_z(inputs, 7, 2, composed)
        result.assert_convex_valid(inputs)


# ---------------------------------------------------------------------------
# record / replay
# ---------------------------------------------------------------------------


class TestRecordReplay:
    def test_replay_reproduces_recorded_execution(self):
        inputs = [10, 20, 30, 40, 50, 60, 70]
        recorder = RecordingAdversary(
            ComposedAdversary(
                [EquivocatingAdversary(seed=3)],
                faults=FaultSpec(garble=0.4, drop=0.2, seed=11),
            )
        )
        original = run_pi_z(inputs, 7, 2, recorder, trace=True)
        assert recorder.script, "expected recorded byzantine traffic"

        replayer = ReplayAdversary(
            recorder.script,
            recorder.initial_corruptions,
            recorder.adapt_schedule,
        )
        replayed = run_pi_z(inputs, 7, 2, replayer, trace=True)

        assert replayed.outputs == original.outputs
        assert replayed.stats.honest_bits == original.stats.honest_bits
        assert replayed.stats.rounds == original.stats.rounds
        assert replayed.trace == original.trace

    def test_replay_round_trips_all_three_fault_planes(self):
        """Record a run with garble+duplicate message faults, a crash
        window, and lossy links; replaying the captured script plus
        crash schedule must reproduce it byte-for-byte (satellite)."""
        from repro.sim import LossyTransport

        inputs = [10, 20, 30, 40, 50, 60, 70]
        transport_seed = 21
        recorder = RecordingAdversary(
            ComposedAdversary(
                [EquivocatingAdversary(seed=3)],
                faults=FaultSpec(
                    garble=0.4, duplicate=0.3, seed=11,
                    link_drop=0.2, crashes=((2, 3, 6),),
                ),
                initial={6},  # leave crash-budget room under t = 2
            )
        )
        original = run_pi_z(
            inputs, 7, 2, recorder, trace=True,
            transport=LossyTransport(drop=0.2, seed=transport_seed),
        )
        assert recorder.script, "expected recorded byzantine traffic"
        assert recorder.crash_schedule == [(2, 3, 6)]

        replayer = ReplayAdversary(
            recorder.script,
            recorder.initial_corruptions,
            recorder.adapt_schedule,
            crash_schedule=recorder.crash_schedule,
        )
        replayed = run_pi_z(
            inputs, 7, 2, replayer, trace=True,
            transport=LossyTransport(drop=0.2, seed=transport_seed),
        )

        assert replayed.outputs == original.outputs
        assert replayed.crash_log == original.crash_log
        assert replayed.recoveries == original.recoveries
        assert replayed.stats.honest_bits == original.stats.honest_bits
        assert replayed.stats.retrans_bits == original.stats.retrans_bits
        assert replayed.trace == original.trace

    def test_replay_misses_stay_silent(self):
        replayer = ReplayAdversary({}, {3})
        result = run_pi_z([1, 2, 3, 4], 4, 1, replayer)
        result.assert_convex_valid([1, 2, 3, 4])

    def test_describe(self):
        replayer = ReplayAdversary({(0, 3, 1): 5}, {3}, [(2, 1)])
        assert "1 messages" in replayer.describe()


# ---------------------------------------------------------------------------
# determinism regression (satellite)
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_bit_identical_runs(self):
        """Identical (protocol, inputs, adversary, seed) must give
        bit-identical traces, stats, and outputs."""
        inputs = [-100, -50, 0, 50, 100, 150, 200]

        def once():
            adversary = ComposedAdversary(
                [EquivocatingAdversary(seed=3), CrashAdversary(2, seed=5)],
                faults=FaultSpec(
                    drop=0.2, duplicate=0.2, garble=0.2, replay=0.2, seed=8
                ),
                seed=2,
            )
            return run_pi_z(inputs, 7, 2, adversary, trace=True)

        a, b = once(), once()
        assert a.outputs == b.outputs
        assert a.corrupted == b.corrupted
        assert a.trace == b.trace
        assert a.stats.honest_bits == b.stats.honest_bits
        assert a.stats.honest_messages == b.stats.honest_messages
        assert a.stats.rounds == b.stats.rounds
        assert dict(a.stats.bits_by_channel) == dict(b.stats.bits_by_channel)
        assert a.clipped_corruptions == b.clipped_corruptions


# ---------------------------------------------------------------------------
# adaptive-corruption clipping is visible, not silent (satellite)
# ---------------------------------------------------------------------------


class GreedyAdversary(Adversary):
    """Requests more adaptive corruptions than the ``t`` budget allows."""

    def select_corruptions(self, n, t):
        return set()

    def adapt(self, view):
        if view.round_index == 0:
            return {1, 2, 3}
        return set()


class TestClippedCorruptions:
    def test_clipping_warns_and_records(self):
        with pytest.warns(RuntimeWarning, match="clipped"):
            result = run_pi_z(
                [1, 2, 3, 4], 4, 1, GreedyAdversary(), trace=True
            )
        # budget t=1: exactly one request accepted, the rest recorded.
        assert result.corrupted == {1}
        assert result.clipped_corruptions == [(0, 2), (0, 3)]
        record = result.trace[0]
        assert record.new_corruptions == {1}
        assert record.clipped_corruptions == {2, 3}

    def test_within_budget_no_warning(self):
        import warnings

        adversary = ComposedAdversary([CrashAdversary()], initial={3})
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = run_pi_z([1, 2, 3, 4], 4, 1, adversary, trace=True)
        assert result.clipped_corruptions == []
