"""Model-based and cross-implementation property tests.

These tests pin the core data structures against independent reference
implementations (naive string/polynomial models) and fuzz protocol-level
invariants that the per-module suites check only pointwise.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.coding.gf import GF256
from repro.coding.reed_solomon import ReedSolomonCode
from repro.core.bitstrings import BitString
from repro.sim import bit_size

# ---------------------------------------------------------------------------
# BitString vs a naive '0'/'1'-string reference model
# ---------------------------------------------------------------------------

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=64)


def ref_of(bits: list[int]) -> str:
    return "".join(str(b) for b in bits)


class TestBitStringModel:
    @given(bit_lists)
    def test_str_matches_reference(self, bits):
        assert str(BitString.from_bits(bits)) == ref_of(bits)

    @given(bit_lists, bit_lists)
    def test_concat_matches_reference(self, a, b):
        got = BitString.from_bits(a) + BitString.from_bits(b)
        assert str(got) == ref_of(a) + ref_of(b)

    @given(bit_lists, st.data())
    def test_slice_matches_reference(self, bits, data):
        bs = BitString.from_bits(bits)
        ref = ref_of(bits)
        i = data.draw(st.integers(min_value=0, max_value=len(bits)))
        j = data.draw(st.integers(min_value=i, max_value=len(bits)))
        assert str(bs[i:j]) == ref[i:j]

    @given(bit_lists, bit_lists)
    def test_prefix_matches_reference(self, a, b):
        got = BitString.from_bits(a).is_prefix_of(BitString.from_bits(b))
        assert got == ref_of(b).startswith(ref_of(a))

    @given(bit_lists)
    def test_value_matches_reference(self, bits):
        expected = int(ref_of(bits), 2) if bits else 0
        assert BitString.from_bits(bits).value == expected

    @given(bit_lists, st.integers(min_value=0, max_value=16))
    def test_fills_match_reference(self, bits, pad):
        bs = BitString.from_bits(bits)
        ell = len(bits) + pad
        ref = ref_of(bits)
        min_ref = int(ref + "0" * pad, 2) if ell else 0
        max_ref = int(ref + "1" * pad, 2) if ell else 0
        assert bs.min_fill(ell) == min_ref
        assert bs.max_fill(ell) == max_ref

    @given(bit_lists, st.integers(min_value=0, max_value=63))
    def test_indexing_matches_reference(self, bits, index):
        if index >= len(bits):
            return
        assert BitString.from_bits(bits)[index] == bits[index]


# ---------------------------------------------------------------------------
# Reed-Solomon vs naive per-chunk polynomial evaluation over GF256
# ---------------------------------------------------------------------------


def naive_encode(code: ReedSolomonCode, data: bytes) -> list[bytes]:
    """Reference: frame like the codec, then evaluate chunk polynomials
    point by point with scalar GF ops."""
    framed = len(data).to_bytes(4, "big") + data
    stride = code.k  # one byte per symbol in GF256
    framed += b"\x00" * ((-len(framed)) % stride)
    chunks = [
        list(framed[i:i + stride]) for i in range(0, len(framed), stride)
    ]
    shares = []
    for i in range(code.n):
        x = i + 1
        out = bytearray()
        for chunk in chunks:
            acc = 0
            for power, coefficient in enumerate(chunk):
                acc ^= GF256.mul(coefficient, GF256.pow(x, power))
            out.append(acc)
        shares.append(bytes(out))
    return shares


class TestReedSolomonModel:
    @given(st.binary(max_size=60))
    @settings(max_examples=30)
    def test_encode_matches_naive(self, data):
        code = ReedSolomonCode(6, 4, field=GF256)
        assert code.encode(data) == naive_encode(code, data)

    @given(st.binary(max_size=60), st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_naive_shares_decode(self, data, rnd):
        code = ReedSolomonCode(6, 4, field=GF256)
        shares = naive_encode(code, data)
        subset = rnd.sample(range(6), 4)
        assert code.decode({i: shares[i] for i in subset}) == data


# ---------------------------------------------------------------------------
# Protocol-level invariants, fuzzed
# ---------------------------------------------------------------------------


class TestProtocolInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=1),
                 min_size=7, max_size=7),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=15, deadline=None)
    def test_binary_phase_king_outputs_honest_bit(self, inputs, seed):
        """The property Lemmas 2/3 rely on: binary BA output is always
        a bit some honest party held."""
        from repro.ba import BIT_DOMAIN, phase_king
        from repro.sim import RandomGarbageAdversary, run_protocol

        result = run_protocol(
            lambda ctx, v: phase_king(ctx, v, BIT_DOMAIN),
            inputs, 7, 2, kappa=64,
            adversary=RandomGarbageAdversary(seed),
        )
        out = result.common_output()
        honest_bits = {
            inputs[p] for p in range(7) if p not in result.corrupted
        }
        assert out in honest_bits

    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=10, deadline=None)
    def test_ext_ba_plus_it_and_bpa_fuzzed(self, duplicates, seed):
        """Random pre-agreement level x random adversary seed: Intrusion
        Tolerance always; Bounded Pre-Agreement when the pre-agreement
        threshold is met by honest parties."""
        from repro.ba import ext_ba_plus
        from repro.sim import RandomGarbageAdversary, run_protocol

        common = b"C" * 40
        inputs = [common] * duplicates + [
            bytes([50 + i]) * 40 for i in range(7 - duplicates)
        ]
        result = run_protocol(
            lambda ctx, v: ext_ba_plus(ctx, v), inputs, 7, 2, kappa=64,
            adversary=RandomGarbageAdversary(seed),
        )
        out = result.common_output()
        honest = {inputs[p] for p in range(7) if p not in result.corrupted}
        assert out is None or out in honest
        honest_common = sum(
            1 for p in range(7)
            if p not in result.corrupted and inputs[p] == common
        )
        if honest_common >= 3:  # n - 2t
            assert out is not None

    @given(
        st.lists(st.integers(min_value=-(2**24), max_value=2**24),
                 min_size=5, max_size=5),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=8, deadline=None)
    def test_authenticated_ca_fuzzed(self, inputs, seed):
        from repro.authenticated import authenticated_ca
        from repro.crypto.signatures import SignatureScheme
        from repro.sim import RandomGarbageAdversary, run_protocol

        scheme = SignatureScheme(64, 5, seed=b"fuzz")
        result = run_protocol(
            lambda ctx, v: authenticated_ca(ctx, v, scheme),
            inputs, 5, 2, kappa=64,
            adversary=RandomGarbageAdversary(seed),
        )
        result.assert_convex_valid(inputs)


# ---------------------------------------------------------------------------
# Wire sizing totality over protocol-shaped payloads
# ---------------------------------------------------------------------------

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**64), max_value=2**64),
        st.binary(max_size=32),
        st.sampled_from(["VOTE", "PROP", "NOPROP"]),
        st.builds(
            BitString,
            st.integers(min_value=0, max_value=255),
            st.just(8),
        ),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3),
        st.dictionaries(st.integers(0, 3), children, max_size=3),
    ),
    max_leaves=10,
)


class TestSizingTotality:
    @given(payloads)
    def test_every_protocol_payload_is_sizable(self, payload):
        size = bit_size(payload)
        assert isinstance(size, int) and size >= 0

    @given(payloads)
    def test_sizing_deterministic(self, payload):
        assert bit_size(payload) == bit_size(payload)
