"""Every example script must run green (they are executable docs)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sensor_fusion.py",
    "blockchain_oracle.py",
    "transaction_ordering.py",
    "approximate_vs_convex.py",
    "asynchronous_agreement.py",
    "authenticated_minority.py",
]


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert "communication_scaling.py" in present


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_quickstart_output_contract():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "convex validity holds." in completed.stdout


def test_sensor_fusion_shows_the_gap():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "sensor_fusion.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "OUTSIDE" in completed.stdout   # plain BA hijacked
    assert "INSIDE" in completed.stdout    # CA safe
