"""The adversary-search engine and its resumable campaign manifests.

Four layers:

1. Manifest mechanics -- the crash-safe JSONL journal: round trips,
   torn-tail truncation, digest/interior-corruption detection,
   configuration locking.
2. Search components -- fitness, novelty signatures, mutation, cells.
3. The planted-outlier canary: the acceptance bar from the issue.
   A trap protocol blows its bit envelope only under fault
   compositions that uniform sampling essentially never draws (rates
   past the sampling grid, or two concurrent round-1 crash windows).
   Guided search must find it in >= 5x fewer executions than the
   uniform baseline at the same seed budget.
4. Resume semantics -- a killed-then-resumed campaign reports
   byte-identically to the uninterrupted run, including across a torn
   journal tail and across worker counts.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.high_cost_ca import high_cost_ca
from repro.analysis import search_document
from repro.sim.faults import FaultSpec
from repro.sim.fuzz import (
    ARTIFACT_FORMAT,
    ARTIFACT_SCHEMA_VERSION,
    FuzzCase,
    ProtocolSpec,
)
from repro.sim.manifest import (
    MANIFEST_FORMAT,
    CampaignJournal,
    JournalCorrupt,
    record_digest,
)
from repro.sim.party import broadcast_round
from repro.sim.search import (
    BUDGETED_FITNESS,
    VIOLATION_FITNESS,
    SearchCell,
    SearchConfig,
    SearchEngine,
    case_fitness,
    default_cells,
    mutate_case,
    run_search,
    seed_corpus_from_artifacts,
)


# ---------------------------------------------------------------------------
# the trap: a planted budget-envelope outlier (module level so that the
# registry builder pickles into pool workers by qualified name)
# ---------------------------------------------------------------------------

MARKER = b"\xa5"
PAD_UNIT = 4096


def trap_protocol(ctx, v, ell):
    """HighCostCA plus a fault-sensitive padding round.

    Each party broadcasts a one-byte marker, counts garbled (``wrong``)
    and missing peers, then pads proportionally -- with an extra jump
    when *two or more* markers went missing (two concurrent round-1
    crash windows, or byzantine drops at rates only mutation reaches).
    The bit budget admits up to 6 padding units, so the trap fires only
    past that cliff: uniform sampling (drop <= 0.5, crash windows
    rarely overlapping round 1) averages ~4 units and stays inside the
    envelope, while the guided engine climbs the wrong/missing fitness
    gradient to the over-budget corner.
    """
    inbox = yield from broadcast_round(ctx, "trap/marker", MARKER)
    wrong = sum(
        1 for p in range(ctx.n)
        if p != ctx.party_id and inbox.get(p) not in (None, MARKER)
    )
    missing = sum(1 for p in range(ctx.n) if inbox.get(p) is None)
    out = yield from high_cost_ca(ctx, v)
    units = wrong + 2 * missing + (8 if missing >= 2 else 0)
    scale = (ell // 64) ** 2
    pad = b"\x00" * (scale * units * PAD_UNIT)
    if pad:
        yield from broadcast_round(ctx, "trap/pad", pad)
    return out


def trap_bit_budget(n, t, ell, kappa):
    scale = (ell // 64) ** 2
    unit = (n - 1) * n * 8 * PAD_UNIT
    return 400_000 + scale * 6 * unit


def trap_round_budget(n, t, ell):
    return 8 * (2 + 4 * (t + 1)) + 48


def trap_registry():
    return {
        "trap": ProtocolSpec(
            name="trap",
            build=lambda ell: (lambda ctx, v: trap_protocol(ctx, v, ell)),
            bit_budget=trap_bit_budget,
            round_budget=trap_round_budget,
        )
    }


TRAP_CELLS = [
    SearchCell("trap", 4, 1, 16),
    SearchCell("trap", 4, 1, 64),
    SearchCell("trap", 7, 1, 16),
    SearchCell("trap", 7, 1, 64),
    SearchCell("trap", 7, 2, 16),
    SearchCell("trap", 7, 2, 64),
]


def trap_config(seed, guided, **overrides):
    kwargs = dict(
        seed=seed,
        guided=guided,
        batch=8,
        cells=list(TRAP_CELLS),
        crash=True,
        partition=False,
        registry_builder=trap_registry,
    )
    kwargs.update(overrides)
    return SearchConfig(**kwargs)


#: a single cheap cell for the resume/worker tests.
CHEAP_CELLS = [SearchCell("trap", 4, 1, 16)]


def canonical(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# manifest mechanics
# ---------------------------------------------------------------------------


class TestManifest:
    CONFIG = {"engine": "repro-search/1", "seed": 3, "batch": 8}

    def record(self, index):
        case = {"protocol": "trap", "n": 4, "seed": index}
        outcome = {"kind": None, "stats": {"bits": 100 + index}}
        return case, outcome

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        journal = CampaignJournal.create(path, self.CONFIG)
        for index in range(3):
            journal.append(*self.record(index))
        reopened = CampaignJournal.open_(path)
        assert reopened.config == self.CONFIG
        assert len(reopened) == 3
        for index, record in enumerate(reopened):
            case, outcome = self.record(index)
            assert (record.index, record.case, record.outcome) == (
                index, case, outcome
            )
            assert record.digest == record_digest(index, case, outcome)

    def test_torn_tail_truncated(self, tmp_path):
        """A crash mid-append leaves a partial line; open_ drops it,
        truncates the file, and the next append lands cleanly."""
        path = str(tmp_path / "campaign.jsonl")
        journal = CampaignJournal.create(path, self.CONFIG)
        journal.append(*self.record(0))
        intact = open(path, "rb").read()
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "case", "index": 1, "ca')
        reopened = CampaignJournal.open_(path)
        assert len(reopened) == 1
        assert open(path, "rb").read() == intact
        reopened.append(*self.record(1))
        assert len(CampaignJournal.open_(path)) == 2

    def test_digest_tamper_is_fatal(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        journal = CampaignJournal.create(path, self.CONFIG)
        journal.append(*self.record(0))
        lines = open(path).read().splitlines()
        lines[1] = lines[1].replace('"bits":100', '"bits":999')
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt, match="digest"):
            CampaignJournal.open_(path)

    def test_interior_corruption_is_fatal(self, tmp_path):
        """A torn *tail* heals; a corrupt *interior* line must not --
        skipping it would desynchronise resumed engine state."""
        path = str(tmp_path / "campaign.jsonl")
        journal = CampaignJournal.create(path, self.CONFIG)
        journal.append(*self.record(0))
        journal.append(*self.record(1))
        lines = open(path).read().splitlines()
        lines[1] = "not json at all"
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt, match="unparseable"):
            CampaignJournal.open_(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "format": "other/9"}\n')
        with pytest.raises(JournalCorrupt, match=MANIFEST_FORMAT):
            CampaignJournal.open_(str(path))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(JournalCorrupt, match="empty"):
            CampaignJournal.open_(str(empty))

    def test_require_config_names_mismatches(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        journal = CampaignJournal.create(path, self.CONFIG)
        changed = dict(self.CONFIG, seed=4, batch=16)
        with pytest.raises(ValueError, match=r"\['batch', 'seed'\]"):
            journal.require_config(changed)
        journal.require_config(dict(self.CONFIG))  # identical: fine


# ---------------------------------------------------------------------------
# search components
# ---------------------------------------------------------------------------


def make_case(seed=7):
    return FuzzCase(
        protocol="trap", n=4, t=1, ell=16, kappa=64, spread=8,
        adversaries=("passive",), faults=FaultSpec(), seed=seed,
    )


class TestComponents:
    def test_fitness_ladder(self):
        violation = {"kind": "ConvexValidityMonitor", "budgeted": False}
        budgeted = {"kind": "LivenessMonitor", "budgeted": True}
        lost = {"kind": "ExecutionEngine", "budgeted": False}
        clean = {
            "kind": None,
            "stats": {"bits": 600, "bit_budget": 1000,
                      "rounds": 5, "round_budget": 100,
                      "rung": "high_cost_ca", "resyncs": 2},
        }
        assert case_fitness(violation) == VIOLATION_FITNESS
        assert case_fitness(budgeted) == BUDGETED_FITNESS
        assert case_fitness(lost) == 0.0
        # 0.6 pressure + 0.25 rung + 0.04 resyncs
        assert case_fitness(clean) == pytest.approx(0.89)
        assert case_fitness(violation) > case_fitness(budgeted) > \
            case_fitness(clean) > case_fitness(lost)

    def test_mutation_is_deterministic_and_cell_preserving(self):
        parent = make_case()
        children = [
            mutate_case(parent, random.Random(9), crash=True)
            for _ in range(2)
        ]
        assert children[0] == children[1]
        mutated = False
        for seed in range(20):
            child = mutate_case(parent, random.Random(seed), crash=True)
            assert (child.protocol, child.n, child.t, child.ell) == (
                "trap", 4, 1, 16
            )
            mutated |= child != parent
        assert mutated

    def test_default_cells_cover_registry(self):
        cells = default_cells(trap_registry(), ells=(16, 64))
        assert cells == TRAP_CELLS
        # the stock grid: small/large n, loose/tight t, short/long ell.
        assert default_cells(trap_registry()) == [
            SearchCell("trap", n, t, ell)
            for n, ts in ((4, (1,)), (7, (1, 2)))
            for t in ts
            for ell in (16, 128)
        ]

    def test_unknown_cell_protocol_rejected(self):
        config = trap_config(0, True, cells=[SearchCell("ghost", 4, 1, 16)])
        with pytest.raises(ValueError, match="ghost"):
            SearchEngine(config)

    def test_seed_corpus_from_artifacts(self, tmp_path):
        case = make_case()
        artifact = {
            "format": ARTIFACT_FORMAT,
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "case": case.to_dict(),
        }
        path = tmp_path / "seed.json"
        path.write_text(json.dumps(artifact))
        seeds = seed_corpus_from_artifacts([str(path)])
        assert seeds == [case.to_dict()]
        engine = SearchEngine(trap_config(0, True, seed_corpus=seeds))
        assert engine.corpus == [(0, case.to_dict())]
        # a seed outside the campaign's cells is ignored, not fatal:
        engine = SearchEngine(
            trap_config(0, True, cells=[SearchCell("trap", 7, 2, 64)],
                        seed_corpus=seeds)
        )
        assert engine.corpus == []


# ---------------------------------------------------------------------------
# the canary: guided search must beat uniform sampling >= 5x
# ---------------------------------------------------------------------------


class TestPlantedOutlierCanary:
    BUDGET = 300  # executions given to each mode

    def test_guided_finds_planted_outlier_5x_faster(self):
        guided = run_search(
            trap_config(0, guided=True), executions=self.BUDGET,
            stop_on_violation=True,
        )
        assert guided.first_violation_at is not None, \
            "guided search never fired the trap"
        assert guided.violations
        # budget-monitor kinds carry their envelope: BitBudgetMonitor(total=N)
        assert all(
            v["kind"].startswith("BitBudgetMonitor")
            for v in guided.violations
        )
        # pinned seed 0 finds it at execution 53; leave slack for
        # platform-independent-but-future-tuning drift.
        assert guided.first_violation_at <= 120

        uniform = run_search(
            trap_config(0, guided=False), executions=self.BUDGET,
        )
        assert uniform.first_violation_at is None, (
            "uniform sampling found the trap at execution "
            f"{uniform.first_violation_at}; the canary no longer "
            "separates guided from random"
        )
        # the issue's acceptance bar: >= 5x fewer executions.
        assert self.BUDGET >= 5 * (guided.first_violation_at + 1)

    def test_violation_artifact_archived_and_reported(self, tmp_path):
        report = run_search(
            trap_config(0, guided=True, artifact_dir=str(tmp_path)),
            executions=self.BUDGET, stop_on_violation=True,
        )
        assert report.artifacts
        artifact = json.loads(open(report.artifacts[0]).read())
        assert artifact["case"]["protocol"] == "trap"
        assert artifact["violation"]["kind"].startswith("BitBudgetMonitor")
        document = search_document(report)
        deterministic = document["deterministic"]
        assert deterministic["first_violation_at"] == \
            report.first_violation_at
        top = deterministic["outliers"][0]
        assert top["fitness"] == VIOLATION_FITNESS
        assert top["kind"].startswith("BitBudgetMonitor")
        # every outlier row carries ready-made envelope fractions
        # (violations abort before stats are collected, so theirs is 0).
        for entry in deterministic["outliers"]:
            assert "bit_fraction" in entry and "round_fraction" in entry
        # artifact paths are environment, not campaign content:
        assert document["environment"]["artifacts"] == report.artifacts
        assert "artifacts" not in deterministic


# ---------------------------------------------------------------------------
# resume semantics: byte-identical reports
# ---------------------------------------------------------------------------


class TestResume:
    TOTAL = 20
    KILL_AT = 12

    def config(self, **overrides):
        return trap_config(5, True, cells=list(CHEAP_CELLS), batch=4,
                           **overrides)

    def test_killed_then_resumed_is_byte_identical(self, tmp_path):
        uninterrupted = run_search(self.config(), executions=self.TOTAL)

        manifest = str(tmp_path / "campaign.jsonl")
        partial = run_search(
            self.config(), executions=self.KILL_AT, manifest=manifest
        )
        assert partial.executions == self.KILL_AT
        resumed = run_search(
            self.config(), executions=self.TOTAL, manifest=manifest,
            resume=True,
        )
        assert canonical(resumed) == canonical(uninterrupted)
        # the journal now holds every case exactly once:
        assert len(CampaignJournal.open_(manifest)) == self.TOTAL

        # resuming a *complete* journal replays without re-execution
        # and still reports identically:
        replayed = run_search(
            self.config(), executions=self.TOTAL, manifest=manifest,
            resume=True,
        )
        assert canonical(replayed) == canonical(uninterrupted)

    def test_resume_after_torn_tail(self, tmp_path):
        """A crash mid-append costs exactly the torn record: the resumed
        campaign re-executes it and still matches the uninterrupted run."""
        uninterrupted = run_search(self.config(), executions=self.TOTAL)
        manifest = str(tmp_path / "campaign.jsonl")
        run_search(self.config(), executions=self.KILL_AT,
                   manifest=manifest)
        with open(manifest, "ab") as handle:
            handle.write(b'{"kind": "case", "index": 12, "case": {"pro')
        resumed = run_search(
            self.config(), executions=self.TOTAL, manifest=manifest,
            resume=True,
        )
        assert canonical(resumed) == canonical(uninterrupted)

    def test_fresh_run_refuses_to_clobber(self, tmp_path):
        manifest = str(tmp_path / "campaign.jsonl")
        run_search(self.config(), executions=4, manifest=manifest)
        with pytest.raises(FileExistsError, match="resume=True"):
            run_search(self.config(), executions=4, manifest=manifest)

    def test_resume_locks_campaign_configuration(self, tmp_path):
        manifest = str(tmp_path / "campaign.jsonl")
        run_search(self.config(), executions=4, manifest=manifest)
        with pytest.raises(ValueError, match="seed"):
            run_search(
                trap_config(6, True, cells=list(CHEAP_CELLS), batch=4),
                executions=8, manifest=manifest, resume=True,
            )

    def test_resume_detects_foreign_journal(self, tmp_path):
        """Same configuration, different records: a journal whose cases
        do not replan identically is rejected, not silently absorbed."""
        manifest = str(tmp_path / "campaign.jsonl")
        run_search(self.config(), executions=4, manifest=manifest)
        journal = CampaignJournal.open_(manifest)
        record = journal.records[0]
        tampered_case = dict(record.case, seed=record.case["seed"] ^ 1)
        rewritten = CampaignJournal.create(
            str(tmp_path / "foreign.jsonl"), journal.config
        )
        rewritten.append(tampered_case, record.outcome)
        config = self.config()
        engine = SearchEngine(config)
        foreign = CampaignJournal.open_(str(tmp_path / "foreign.jsonl"))
        with pytest.raises(ValueError, match="different campaign"):
            engine.run(4, journal=foreign)


# ---------------------------------------------------------------------------
# worker independence
# ---------------------------------------------------------------------------


class TestWorkerIndependence:
    def test_parallel_campaign_matches_serial(self, tmp_path):
        serial = run_search(
            trap_config(5, True, cells=list(CHEAP_CELLS), batch=4,
                        workers=1),
            executions=12,
        )
        parallel = run_search(
            trap_config(5, True, cells=list(CHEAP_CELLS), batch=4,
                        workers=2),
            executions=12,
        )
        assert canonical(parallel) == canonical(serial)
        assert parallel.workers == 2
