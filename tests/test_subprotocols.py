"""``AddLastBit``/``AddLastBlock`` (Lemmas 2, 5) and ``GetOutput`` (Lemma 3)."""

from __future__ import annotations

import pytest

from repro.core.add_last import add_last_bit, add_last_block
from repro.core.bitstrings import BitString, bits_fixed
from repro.core.get_output import get_output
from repro.sim import Context, ScriptedAdversary, run_protocol

from conftest import adversary_params

KAPPA = 64
ELL = 16


class TestAddLastBit:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_agreed_bit_is_honest(self, adversary):
        """Lemma 2: the extended prefix is a valid value's prefix."""
        prefix = BitString.from_str("1010")
        # honest values extend the prefix with either 0 or 1
        inputs = [0b10100_000 + i for i in range(4)] + [
            0b10101_000 + i for i in range(3)
        ]
        ell = 8

        def factory(ctx, v):
            return add_last_bit(ctx, prefix, v, ell)

        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        out = result.common_output()
        assert out.length == 5
        assert out.prefix(4) == prefix
        # the added bit must match at least one honest party's bit
        honest_bits = {
            bits_fixed(inputs[p], ell)[4]
            for p in range(7)
            if p not in result.corrupted
        }
        assert out[4] in honest_bits

    def test_unanimous_bit(self):
        prefix = BitString.from_str("11")
        inputs = [0b1101] * 4

        def factory(ctx, v):
            return add_last_bit(ctx, prefix, v, 4)

        result = run_protocol(factory, inputs, 4, 1, kappa=KAPPA)
        assert str(result.common_output()) == "110"

    def test_full_prefix_rejected(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(add_last_bit(ctx, BitString.from_str("11"), 3, 2))


class TestAddLastBlock:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_agreed_block_in_honest_range(self, adversary):
        """Lemma 5: the added block is within the honest block range."""
        prefix = BitString.from_str("1010")  # one 4-bit block
        block_bits = 4
        ell = 12
        # honest values share the prefix; second blocks differ
        inputs = [(0b1010 << 8) | (i << 4) | 3 for i in range(7)]

        def factory(ctx, v):
            return add_last_block(ctx, prefix, v, ell, block_bits)

        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        out = result.common_output()
        assert out.length == 8
        assert out.prefix(4) == prefix
        block_value = out.suffix_from(4).value
        honest_blocks = [
            (inputs[p] >> 4) & 0xF
            for p in range(7)
            if p not in result.corrupted
        ]
        assert min(honest_blocks) <= block_value <= max(honest_blocks)

    def test_alignment_validation(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(add_last_block(ctx, BitString.from_str("101"), 0, 12, 4))

    def test_overflow_validation(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(add_last_block(ctx, BitString.from_str("1010"), 0, 6, 4))


class TestGetOutput:
    def make_inputs(self, prefix: BitString, ell: int):
        """Inputs where >= t+1 honest values avoid the prefix from both
        conceivable sides."""
        below = prefix.min_fill(ell) - 1
        above = prefix.max_fill(ell)
        inside = prefix.min_fill(ell)
        return below, above, inside

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_output_is_min_or_max_and_valid(self, adversary):
        prefix = BitString.from_str("0110")
        ell = 8
        below, above, inside = self.make_inputs(prefix, ell)
        inputs = [below] * 3 + [inside] * 2 + [above] * 2

        def factory(ctx, v):
            return get_output(ctx, prefix, v, ell)

        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        out = result.common_output()
        assert out in (prefix.min_fill(ell), prefix.max_fill(ell))
        honest = [inputs[p] for p in range(7) if p not in result.corrupted]
        assert min(honest) <= out <= max(honest)

    def test_all_below_choose_min(self):
        prefix = BitString.from_str("1000")
        ell = 8
        below = prefix.min_fill(ell) - 5
        inputs = [below] * 7

        def factory(ctx, v):
            return get_output(ctx, prefix, v, ell)

        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() == prefix.min_fill(ell)

    def test_all_above_choose_max(self):
        prefix = BitString.from_str("0100")
        ell = 8
        above = prefix.max_fill(ell) + 5
        inputs = [above] * 7

        def factory(ctx, v):
            return get_output(ctx, prefix, v, ell)

        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() == prefix.max_fill(ell)

    def test_byzantine_announcements_cannot_flip_unanimous_witnesses(self):
        """All t+1 honest witnesses are below; byzantine parties vote 1.
        The t+1 honest zeros must win the majority-of-received rule."""
        prefix = BitString.from_str("1111")
        ell = 8
        below = prefix.min_fill(ell) - 1
        inputs = [below] * 7

        def handler(view, src, dst, spec):
            if view.channel.endswith("/announce"):
                return 1
            return spec

        def factory(ctx, v):
            return get_output(ctx, prefix, v, ell)

        result = run_protocol(
            factory, inputs, 7, 2, kappa=KAPPA,
            adversary=ScriptedAdversary(handler),
        )
        # MAX would be invalid here (all honest are below the prefix).
        assert result.common_output() == prefix.min_fill(ell)

    def test_full_length_prefix_degenerates(self):
        prefix = BitString.from_str("10101010")
        ell = 8
        inputs = [prefix.value] * 4

        def factory(ctx, v):
            return get_output(ctx, prefix, v, ell)

        result = run_protocol(factory, inputs, 4, 1, kappa=KAPPA)
        assert result.common_output() == prefix.value

    def test_prefix_length_validation(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(get_output(ctx, BitString.empty(), 0, 8))
        with pytest.raises(ValueError):
            next(get_output(ctx, BitString.from_str("101010101"), 0, 8))
