"""Partial-synchrony resilience plane: GST transport, PBFT-style
timeout escalation, the supervisor's failover ladder (optimal CA ->
escalated retry -> HighCostCA -> async AA), the liveness envelope, and
the partition/GST fuzz campaign with shrinking repro artifacts."""

from __future__ import annotations

import json
import random
from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro import convex_agreement
from repro.cli import main
from repro.core.fixed_length import fixed_length_ca
from repro.errors import (
    ConfigurationError,
    ProtocolViolation,
    SimulationError,
)
from repro.sim import (
    BEACON_BITS,
    BitBudgetMonitor,
    FallbackRecord,
    FaultSpec,
    LivenessMonitor,
    LossyTransport,
    PartialSyncTransport,
    TimeoutEscalation,
    run_protocol,
    run_with_escalation,
    stabilization_time_of,
)
from repro.sim.fuzz import (
    FuzzCase,
    fuzz,
    load_artifact,
    replay_artifact,
    sample_case,
    sample_case_at,
    standard_registry,
)

KAPPA = 64
INPUTS7 = [3, 5, 7, 11, 13, 17, 19]


def flca_factory(ell=8):
    return lambda ctx, v: fixed_length_ca(ctx, v, ell)


# ---------------------------------------------------------------------------
# escalation policy and transport construction
# ---------------------------------------------------------------------------


class TestTimeoutEscalation:
    def test_defaults_are_valid(self):
        policy = TimeoutEscalation()
        assert policy.max_attempts >= 2
        assert policy.growth >= 2

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"growth": 1},
        {"budget_cap": 0},
        {"beacon_slots": -1},
        {"max_attempts": True},
        {"growth": 2.5},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TimeoutEscalation(**kwargs)

    def test_budget_grows_exponentially_up_to_cap(self):
        policy = TimeoutEscalation(growth=2, budget_cap=100)
        assert policy.next_budget(16) == 32
        assert policy.next_budget(64) == 100
        # a budget already above the cap never shrinks.
        assert policy.next_budget(200) == 200


class TestTransportConstruction:
    def test_partition_window_validation(self):
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(partitions=((10, 5, (0,)),))
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(partitions=((-1, 5, (0,)),))
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(partitions=((0, 5, ()),))

    def test_gst_validation(self):
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(gst=-1)
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(gst=True)
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(pre_gst_drop=0.5)  # needs a gst
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(gst=10, pre_gst_drop=1.0)

    def test_churn_window_validation(self):
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(churn=((5, 5, 0.3),))
        with pytest.raises(ConfigurationError):
            PartialSyncTransport(churn=((0, 10, 1.0),))

    def test_escalation_armed_by_default(self):
        transport = PartialSyncTransport(gst=10)
        assert isinstance(transport.escalation, TimeoutEscalation)

    def test_lossy_type_validation(self):
        with pytest.raises(ConfigurationError):
            LossyTransport(slot_budget="many")
        with pytest.raises(ConfigurationError):
            LossyTransport(max_backoff=2.5)
        with pytest.raises(ConfigurationError):
            LossyTransport(slot_budget=True)
        with pytest.raises(ConfigurationError):
            LossyTransport(escalation=42)

    def test_backoff_exponent_is_capped_before_exponentiation(self):
        transport = LossyTransport(max_backoff=16)
        # attempt counts far beyond the cap return the cap directly --
        # the old code built a 2**300 intermediate first.
        assert transport._backoff(300) == 16
        assert transport._backoff(4) == 16
        assert transport._backoff(2) == 4

    def test_stabilization_time(self):
        assert stabilization_time_of(None, (), ()) == 0
        assert stabilization_time_of(100, (), ()) == 100
        assert stabilization_time_of(100, ((0, 250, (0,)),), ()) == 250
        assert stabilization_time_of(100, (), ((0, 300, 0.3),)) == 300
        assert stabilization_time_of(100, ((0, -1, (0,)),), ()) is None
        transport = PartialSyncTransport(gst=50)
        assert transport.stabilization_time == 50
        assert not transport.stabilized()
        assert transport.stabilized(at=50)
        assert LossyTransport().stabilization_time == 0

    def test_describe_names_the_axes(self):
        transport = PartialSyncTransport(
            gst=10, pre_gst_drop=0.3, partitions=((0, 5, (1,)),),
        )
        text = transport.describe()
        assert "gst=10" in text and "partitions=1" in text


class TestFromSpec:
    def test_spec_with_partial_sync_builds_psync_transport(self):
        spec = FaultSpec(gst=100, pre_gst_drop=0.3, seed=9)
        transport = LossyTransport.from_spec(spec)
        assert isinstance(transport, PartialSyncTransport)
        assert transport.gst == 100
        assert transport.seed != spec.seed

    def test_partition_only_spec_builds_psync_transport(self):
        spec = FaultSpec(partitions=((0, 50, (1, 2)),))
        transport = LossyTransport.from_spec(spec)
        assert isinstance(transport, PartialSyncTransport)
        assert transport.stabilization_time == 50

    def test_link_only_spec_still_builds_plain_lossy(self):
        transport = LossyTransport.from_spec(FaultSpec(link_drop=0.2))
        assert type(transport) is LossyTransport


# ---------------------------------------------------------------------------
# fault-spec axes
# ---------------------------------------------------------------------------


class TestFaultSpecAxes:
    def test_partial_sync_round_trips_through_json(self):
        spec = FaultSpec(
            gst=120, pre_gst_drop=0.3,
            partitions=((0, 200, (0, 2)), (50, -1, (1,))),
            link_churn=((10, 90, 0.6),),
            link_drop=0.05, seed=3,
        )
        data = json.loads(json.dumps(spec.to_dict()))
        again = FaultSpec.from_dict(data)
        assert again == spec
        assert again.has_partial_sync
        assert not again.heals  # one window never heals

    def test_axis_predicates(self):
        assert not FaultSpec().has_partial_sync
        assert FaultSpec(gst=0).has_partial_sync
        assert FaultSpec(partitions=((0, 9, (1,)),)).heals
        assert not FaultSpec(gst=5).is_noop

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(gst=-1)
        with pytest.raises(ValueError):
            FaultSpec(pre_gst_drop=0.5)
        with pytest.raises(ValueError):
            FaultSpec(partitions=((5, 2, (0,)),))
        with pytest.raises(ValueError):
            FaultSpec(link_churn=((5, 5, 0.3),))


# ---------------------------------------------------------------------------
# canary (a): a healing partition costs overhead, never bytes
# ---------------------------------------------------------------------------


class TestHealingPartition:
    def test_outputs_and_honest_bits_byte_identical(self):
        baseline = run_protocol(
            flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
        )
        transport = PartialSyncTransport(
            partitions=((0, 400, (0,)),), seed=5,
        )
        resilient = run_with_escalation(
            flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
            transport=transport,
        )
        # the escalated retries resolved the partition inside the
        # primary: no rung was descended...
        assert resilient.fallback is None
        # ...and the logical execution is byte-identical.
        assert resilient.outputs == baseline.outputs
        assert resilient.stats.honest_bits == baseline.stats.honest_bits
        assert resilient.stats.rounds == baseline.stats.rounds
        # the waiting shows up only in the overhead fields.
        stats = resilient.stats
        assert stats.resync_attempts > 0
        assert stats.escalated_rounds > 0
        assert stats.beacon_messages > 0
        assert stats.beacon_bits == stats.beacon_messages * BEACON_BITS
        assert stats.resilience_overhead_bits == (
            stats.retrans_bits + stats.ack_bits + stats.beacon_bits
        )
        assert transport.total_resyncs == stats.resync_attempts
        assert transport.clock >= 400  # waited past the heal

    def test_pre_gst_loss_with_liveness_monitor(self):
        transport = PartialSyncTransport(gst=200, pre_gst_drop=0.6, seed=8)
        baseline = run_protocol(
            flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
        )
        result = run_protocol(
            flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
            transport=transport,
            monitors=[LivenessMonitor(500, transport)],
        )
        assert result.outputs == baseline.outputs
        assert result.stats.honest_bits == baseline.stats.honest_bits

    def test_api_accepts_the_transport(self):
        plain = convex_agreement(INPUTS7, t=2, kappa=KAPPA)
        resilient = convex_agreement(
            INPUTS7, t=2, kappa=KAPPA,
            transport=PartialSyncTransport(gst=80, pre_gst_drop=0.3, seed=2),
        )
        assert resilient.value == plain.value
        assert resilient.stats.honest_bits == plain.stats.honest_bits


# ---------------------------------------------------------------------------
# canary (b): a never-healing partition descends the full ladder
# ---------------------------------------------------------------------------


def _never_healing(seed=5, members=(0, 1)):
    return PartialSyncTransport(
        partitions=((0, -1, tuple(members)),), seed=seed,
        slot_budget=16, escalation=TimeoutEscalation(max_attempts=3),
    )


class TestFailoverLadder:
    def test_never_healing_partition_lands_on_async_aa(self):
        inputs = [3, 5, 7, 9, 11, 13, 15]
        result = run_with_escalation(
            flca_factory(), inputs, n=7, t=1, kappa=KAPPA,
            transport=_never_healing(), epsilon=1,
        )
        record = result.fallback
        assert isinstance(record, FallbackRecord)
        assert record.rung == "async_aa"
        assert record.epsilon == str(Fraction(1))
        assert record.trigger == "SimulationError"
        assert "asynchronous AA" in record.describe()
        # every rung tried at most once, in ladder order.
        rungs = [entry.split(":")[0] for entry in record.history]
        assert rungs[0] == "primary"
        for rung in ("primary", "high_cost_ca", "async_aa"):
            assert rungs.count(rung) == 1
        assert (
            rungs.index("primary")
            < rungs.index("high_cost_ca")
            < rungs.index("async_aa")
        )
        # the HighCostCA rung ran over the SAME broken transport -- it
        # must have failed, not been skipped.
        hc_entry = next(e for e in record.history if e.startswith("high_cost_ca"))
        assert "decided" not in hc_entry
        # outputs: epsilon-agreement inside the honest hull.
        values = [result.outputs[p] for p in result.honest_parties]
        assert max(values) - min(values) <= 1
        assert min(inputs) <= min(values)
        assert max(values) <= max(inputs)
        # the primary's escalation effort is preserved on the record.
        assert record.resyncs > 0
        assert record.primary_stats is not None
        assert record.primary_stats.resync_attempts == record.resyncs

    def test_exhausted_ladder_raises_budgeted_simulation_error(self):
        # n=4, t=1: async AA needs 5t < n, so the last rung is skipped
        # and the ladder ends in the recorded, budgeted failure.
        with pytest.raises(SimulationError, match="escalation ladder exhausted") as exc:
            run_with_escalation(
                flca_factory(), [1, 2, 3, 4], n=4, t=1, kappa=KAPPA,
                transport=_never_healing(members=(0,)),
            )
        message = str(exc.value)
        assert "primary:" in message
        assert "high_cost_ca:" in message
        assert "async_aa: skipped" in message

    def test_monitor_violation_stays_fatal_when_excluded(self):
        with pytest.raises(ProtocolViolation):
            run_with_escalation(
                flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
                monitors=[BitBudgetMonitor(total=1)],
                escalate_on=(SimulationError,),
            )

    def test_monitor_violation_degrades_by_default(self):
        result = run_with_escalation(
            flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
            monitors=[BitBudgetMonitor(total=1)],
        )
        result.assert_convex_valid(INPUTS7)
        assert result.fallback.rung == "high_cost_ca"
        assert "high_cost_ca: decided" in result.fallback.history

    def test_clean_run_has_no_fallback(self):
        result = run_with_escalation(
            flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA,
        )
        assert result.fallback is None
        result.assert_convex_valid(INPUTS7)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_escalation(
                flca_factory(), INPUTS7, n=7, t=2, kappa=KAPPA, epsilon=0,
            )


class TestFallbackRecordSerialization:
    def _record(self):
        result = run_with_escalation(
            flca_factory(), [3, 5, 7, 9, 11, 13, 15], n=7, t=1,
            kappa=KAPPA, transport=_never_healing(), epsilon=1,
        )
        return result.fallback

    def test_round_trips_through_json(self):
        record = self._record()
        data = json.loads(json.dumps(record.to_dict()))
        again = FallbackRecord.from_dict(data)
        assert again.trigger == record.trigger
        assert again.rung == record.rung
        assert again.history == record.history
        assert again.epsilon == record.epsilon
        assert again.resyncs == record.resyncs
        assert again.offset == record.offset
        assert (
            again.primary_stats.resync_attempts
            == record.primary_stats.resync_attempts
        )
        assert (
            again.primary_stats.beacon_bits
            == record.primary_stats.beacon_bits
        )

    def test_missing_optional_fields_default(self):
        record = FallbackRecord.from_dict({
            "trigger": "SimulationError", "detail": "x",
            "monitor": None, "offset": 0,
        })
        assert record.rung == "high_cost_ca"
        assert record.history == ()
        assert record.primary_stats is None


# ---------------------------------------------------------------------------
# liveness envelope
# ---------------------------------------------------------------------------


class TestLivenessMonitor:
    def test_envelope_must_be_positive(self):
        with pytest.raises(ValueError):
            LivenessMonitor(0)

    def test_counts_from_stabilization(self):
        # horizon 0 (plain lossy transport): behaves like a round budget.
        monitor = LivenessMonitor(2, LossyTransport())
        monitor.on_round(SimpleNamespace(round_index=1), None)
        with pytest.raises(ProtocolViolation):
            monitor.on_round(SimpleNamespace(round_index=2), None)

    def test_pre_stabilization_rounds_are_discounted(self):
        transport = PartialSyncTransport(gst=1_000_000)
        monitor = LivenessMonitor(2, transport)
        # the clock never reaches the horizon: every round is pre-GST.
        for round_index in range(10):
            monitor.on_round(SimpleNamespace(round_index=round_index), None)

    def test_silent_on_never_stabilizing_network(self):
        transport = PartialSyncTransport(partitions=((0, -1, (0,)),))
        monitor = LivenessMonitor(1, transport)
        # liveness is not guaranteed without stabilization: no failure.
        monitor.on_round(SimpleNamespace(round_index=500), None)


# ---------------------------------------------------------------------------
# partition-plane fuzzing
# ---------------------------------------------------------------------------


class TestPartitionSampling:
    def test_partition_false_sampling_is_unchanged(self):
        """Adding the partial-sync axes must not perturb existing
        campaigns: the extra draws are gated behind the flag."""
        registry = standard_registry()
        baseline = sample_case(random.Random(5), registry)
        again = sample_case(random.Random(5), registry, partition=False)
        assert baseline == again
        assert not baseline.faults.has_partial_sync
        crash_a = sample_case(random.Random(5), registry, crash=True)
        crash_b = sample_case(
            random.Random(5), registry, crash=True, partition=False
        )
        assert crash_a == crash_b

    def test_partition_sampling_widens_the_fault_space(self):
        registry = standard_registry()
        rng = random.Random(17)
        cases = [
            sample_case(rng, registry, partition=True) for _ in range(30)
        ]
        assert any(c.faults.gst is not None for c in cases)
        assert any(c.faults.partitions for c in cases)
        assert any(c.faults.link_churn for c in cases)
        assert any(not c.faults.heals for c in cases)
        for case in cases:
            for start, heal, members in case.faults.partitions:
                assert start >= 0
                assert heal == -1 or heal > start
                assert members
                assert all(0 <= p < case.n for p in members)

    def test_partition_case_round_trips_through_json(self):
        registry = standard_registry()
        rng = random.Random(23)
        for _ in range(10):
            case = sample_case(rng, registry, partition=True)
            data = json.loads(json.dumps(case.to_dict()))
            assert FuzzCase.from_dict(data) == case

    def test_sample_case_at_is_deterministic(self):
        registry = standard_registry()
        a = sample_case_at(9, 4, registry, partition=True)
        b = sample_case_at(9, 4, registry, partition=True)
        assert a == b


@pytest.fixture(scope="module")
def campaign200(tmp_path_factory):
    """The acceptance sweep, run once and shared across its checks."""
    artifact_dir = tmp_path_factory.mktemp("psync-artifacts")
    report = fuzz(
        runs=200, seed=11, partition=True, artifact_dir=str(artifact_dir),
    )
    return report


class TestPartitionCampaign:
    def test_200_case_campaign_has_no_unhandled_exceptions(self, campaign200):
        """The acceptance sweep: every sampled GST/partition schedule
        ends in a decision, a recorded degradation, or a budgeted
        SimulationError whose shrunk artifact replays -- never an
        unhandled exception or an invariant violation."""
        report = campaign200
        assert report.partition
        assert len(report.cases) == 200
        # the escalation plane actually exercised itself.
        assert report.resyncs > 0
        assert report.escalated_cases > 0
        assert report.degradations.get("async_aa", 0) > 0
        assert "escalation:" in report.summary()
        # no monitor ever fired: the only acceptable failures are the
        # budgeted ladder-exhausted SimulationErrors of never-healing
        # partitions too small for the async rung.
        assert {f.kind for f in report.failures} <= {"SimulationError"}
        for failure in report.failures:
            assert "escalation ladder exhausted" in failure.message
            assert not failure.case.faults.heals
        # every failure shrank and replays from its artifact.
        assert len(report.artifacts) == len(report.failures)
        for failure, path in zip(report.failures, report.artifacts):
            assert failure.shrunk
            artifact = load_artifact(path)
            outcome = replay_artifact(artifact)
            assert outcome.violated and outcome.matches(artifact)

    def test_campaign_is_deterministic(self):
        a = fuzz(runs=8, seed=0, partition=True)
        b = fuzz(runs=8, seed=0, partition=True)
        assert [c.to_dict() for c in a.cases] == [
            c.to_dict() for c in b.cases
        ]
        assert a.summary() == b.summary()
        assert (a.resyncs, a.escalated_cases, a.degradations) == (
            b.resyncs, b.escalated_cases, b.degradations
        )

    def test_parallel_campaign_matches_serial(self):
        serial = fuzz(runs=8, seed=0, partition=True, workers=1)
        fanned = fuzz(runs=8, seed=0, partition=True, workers=3)
        assert serial.summary() == fanned.summary()
        assert serial.resyncs == fanned.resyncs
        assert serial.degradations == fanned.degradations

    def test_shrinking_keeps_the_load_bearing_window(self, campaign200):
        """The 4th ddmin axis removes partition/churn windows that do
        not matter -- but never the one the violation needs."""
        report = campaign200
        assert report.failures
        for failure in report.failures:
            # a ladder-exhausted failure needs its never-healing
            # window; shrinking must keep at least that one.
            assert failure.case.faults.partitions
            assert not failure.case.faults.heals


class TestCliPartition:
    def test_partition_flag_runs_and_reports(self, capsys):
        # seed 0 x 8 runs is clean (asserted deterministic above), so
        # the CLI exits 0 and labels the plane.
        code = main([
            "fuzz", "--runs", "8", "--seed", "0", "--partition", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "partition plane" in out
        assert "escalation:" in out

    def test_allow_budgeted_tolerates_ladder_exhaustion(self, capsys):
        # seed 2 x 20 runs contains budgeted ladder exhaustions and
        # nothing else: fatal by default, tolerated with the flag.
        argv = ["fuzz", "--runs", "20", "--seed", "2", "--partition",
                "--quiet"]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "(budgeted)" in out
        assert main(argv + ["--allow-budgeted"]) == 0
        out = capsys.readouterr().out
        assert "tolerated (--allow-budgeted)" in out

    def test_budgeted_predicate_matches_only_ladder_exhaustion(self):
        report = fuzz(runs=20, seed=2, partition=True)
        assert report.failures
        assert not report.unbudgeted_failures
        for failure in report.failures:
            assert failure.budgeted
            assert failure.kind == "SimulationError"

    def test_replay_prints_psync_line(self, campaign200, capsys):
        report = campaign200
        assert report.artifacts
        assert main(["replay", report.artifacts[0]]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "psync" in out
