"""Public API tests: ``convex_agreement`` and the outcome object."""

from __future__ import annotations

import pytest

from repro import (
    ConfigurationError,
    CrashAdversary,
    OutlierAdversary,
    convex_agreement,
    default_threshold,
)

from conftest import adversary_params


class TestDefaultThreshold:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (2, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (13, 4)],
    )
    def test_values(self, n, expected):
        assert default_threshold(n) == expected


class TestConvexAgreementAPI:
    def test_basic(self):
        outcome = convex_agreement([1, 2, 3, 4], kappa=64)
        honest = [v for i, v in enumerate([1, 2, 3, 4])
                  if i not in outcome.corrupted]
        assert min(honest) <= outcome.value <= max(honest)

    def test_dict_inputs(self):
        outcome = convex_agreement({0: 5, 1: 6, 2: 7, 3: 8}, kappa=64)
        assert 5 <= outcome.value <= 8

    def test_dict_inputs_must_cover(self):
        with pytest.raises(ConfigurationError):
            convex_agreement({0: 5, 2: 7})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            convex_agreement([])

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            convex_agreement([1, 2.5, 3, 4])
        with pytest.raises(ConfigurationError):
            convex_agreement([1, True, 3, 4])

    def test_explicit_t(self):
        outcome = convex_agreement([1, 2, 3, 4, 5, 6, 7], t=1, kappa=64)
        assert 1 <= outcome.value <= 7

    def test_t_out_of_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            convex_agreement([1, 2, 3], t=1)

    def test_outputs_all_agree(self):
        outcome = convex_agreement([10, 20, 30, 40], kappa=64,
                                   adversary=CrashAdversary(0))
        assert len(set(outcome.outputs.values())) == 1
        assert outcome.value in set(outcome.outputs.values())

    def test_stats_populated(self):
        outcome = convex_agreement([10, 20, 30, 40], kappa=64)
        assert outcome.stats.honest_bits > 0
        assert outcome.stats.rounds > 0
        assert outcome.stats.bits_by_channel

    def test_single_party(self):
        outcome = convex_agreement([42], kappa=64)
        assert outcome.value == 42

    def test_three_parties_no_corruption(self):
        outcome = convex_agreement([1, 2, 3], kappa=64)
        assert 1 <= outcome.value <= 3
        assert outcome.corrupted == frozenset()

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_motivating_example(self, adversary):
        """The cooling-room sensors from the paper's introduction."""
        readings = [-1005, -1004, -1003, -1003, -1005, -1004, -1004]
        outcome = convex_agreement(readings, kappa=64, adversary=adversary)
        honest = [
            v for i, v in enumerate(readings) if i not in outcome.corrupted
        ]
        assert min(honest) <= outcome.value <= max(honest)

    def test_outlier_attack_cannot_pull_output(self):
        readings = [-1005, -1004, -1003, -1003, -1005, -1004, -1004]
        outcome = convex_agreement(
            readings, kappa=64, adversary=OutlierAdversary(high=100)
        )
        assert -1005 <= outcome.value <= -1003
