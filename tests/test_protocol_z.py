"""``PI_Z`` tests (Corollaries 1-2): the final integer CA protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.protocol_z import protocol_z
from repro.sim import Context, RandomGarbageAdversary, run_protocol

from conftest import CONFIGS, adversary_params, assert_convex

KAPPA = 64


def factory(ctx, v):
    return protocol_z(ctx, v)


class TestConvexAgreement:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_positive_inputs(self, n, t, adversary):
        inputs = [100 + 13 * i for i in range(n)]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_negative_inputs(self, adversary):
        inputs = [-100 - 13 * i for i in range(7)]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_mixed_signs(self, adversary):
        inputs = [-30, -20, -10, 0, 10, 20, 30]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_unanimous_negative(self, adversary):
        result = run_protocol(factory, [-424242] * 7, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == -424242

    def test_zero_crossing_pairs(self):
        inputs = [-1, 1, -1, 1, -1, 1, -1]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() in (-1, 0, 1)

    def test_all_zero(self):
        result = run_protocol(factory, [0] * 4, 4, 1, kappa=KAPPA)
        assert result.common_output() == 0

    def test_long_negative_values(self):
        n, t = 4, 1
        inputs = [-(2**100) - i for i in range(n)]
        result = run_protocol(factory, inputs, n, t, kappa=KAPPA)
        assert_convex(inputs, result)

    def test_asymmetric_magnitudes(self):
        inputs = [-5, 2**80, -7, 2**80 + 4]
        result = run_protocol(factory, inputs, 4, 1, kappa=KAPPA)
        assert_convex(inputs, result)


class TestSignAgreement:
    def test_agreed_sign_has_honest_support(self):
        """If the output is negative, some honest input was negative; if
        positive, some honest input was >= 0 (Corollary 1's argument)."""
        inputs = [-10, -20, 30, 40, -50, 60, -70]
        result = run_protocol(factory, inputs, 7, 2, kappa=KAPPA)
        out = result.common_output()
        honest = [inputs[p] for p in range(7) if p not in result.corrupted]
        if out < 0:
            assert any(v < 0 for v in honest)
        if out > 0:
            assert any(v > 0 for v in honest)
        assert_convex(inputs, result)


class TestValidation:
    def test_rejects_non_int(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(protocol_z(ctx, 1.5))
        with pytest.raises(ValueError):
            next(protocol_z(ctx, False))


class TestRandomised:
    @given(
        st.lists(
            st.integers(min_value=-(2**40), max_value=2**40),
            min_size=4,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=12, deadline=None)
    def test_ca_random_integers(self, inputs, seed):
        result = run_protocol(
            factory, inputs, 4, 1, kappa=KAPPA,
            adversary=RandomGarbageAdversary(seed),
        )
        assert_convex(inputs, result)

    @given(
        st.lists(
            st.integers(min_value=-(2**200), max_value=2**200),
            min_size=4,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=6, deadline=None)
    def test_ca_random_huge_integers(self, inputs, seed):
        result = run_protocol(
            factory, inputs, 4, 1, kappa=KAPPA,
            adversary=RandomGarbageAdversary(seed),
        )
        assert_convex(inputs, result)
