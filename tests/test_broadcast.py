"""Byzantine Broadcast extension tests (baseline substrate)."""

from __future__ import annotations

import os

import pytest

from repro.ba.broadcast import byzantine_broadcast
from repro.crypto import merkle
from repro.sim import Adversary, Context, run_protocol

from conftest import CONFIGS, adversary_params

KAPPA = 64


def bb_factory(sender):
    def factory(ctx, v):
        return byzantine_broadcast(
            ctx, sender, v if ctx.party_id == sender else None
        )

    return factory


class TestHonestSender:
    @pytest.mark.parametrize("n,t", CONFIGS)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_delivery(self, n, t, adversary):
        data = b"broadcast me" * 20
        result = run_protocol(bb_factory(0), [data] * n, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == data

    def test_every_honest_sender_position(self):
        n, t = 4, 1
        for sender in range(n - t):  # honest senders under default corruption
            data = bytes([sender]) * 50
            result = run_protocol(
                bb_factory(sender), [data] * n, n, t, kappa=KAPPA
            )
            assert result.common_output() == data

    def test_long_payload(self):
        data = os.urandom(5000)
        result = run_protocol(bb_factory(0), [data] * 7, 7, 2, kappa=KAPPA)
        assert result.common_output() == data

    def test_sender_requires_bytes(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        gen = byzantine_broadcast(ctx, 0, 12345)
        with pytest.raises(TypeError):
            next(gen)


class TestByzantineSender:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_agreement_with_byzantine_sender(self, adversary):
        # Sender 6 is corrupted under the default pattern (n=7, t=2).
        result = run_protocol(
            bb_factory(6), [b"x" * 40] * 7, 7, 2, kappa=KAPPA,
            adversary=adversary,
        )
        result.common_output()  # agreement, value may be anything/bottom

    def test_silent_sender_yields_bottom(self):
        from repro.sim import CrashAdversary

        result = run_protocol(
            bb_factory(6), [b"x" * 40] * 7, 7, 2, kappa=KAPPA,
            adversary=CrashAdversary(0),
        )
        assert result.common_output() is None

    def test_equivocating_sender_still_agrees(self):
        """The sender sends entirely different valid dispersals to the
        two halves of the network; agreement must survive."""
        payload_a = b"A" * 100
        payload_b = b"B" * 100

        class EquivocatingSender(Adversary):
            def select_corruptions(self, n, t):
                return {0}

            def deliver(self, view):
                from repro.ba.distribution import encode_and_accumulate

                out = {}
                ctx = Context(party_id=0, n=view.n, t=view.t, kappa=KAPPA)
                if view.channel.endswith("/disperse"):
                    for dst in range(view.n):
                        data = payload_a if dst < view.n // 2 else payload_b
                        _, shares, root, wits = encode_and_accumulate(
                            ctx, data
                        )
                        out[(0, dst)] = (root, dst, shares[dst], wits[dst])
                return out

        result = run_protocol(
            bb_factory(0), [b""] * 7, 7, 2, kappa=KAPPA,
            adversary=EquivocatingSender(),
        )
        out = result.common_output()
        assert out in (payload_a, payload_b, None)

    def test_non_codeword_commitment_rejected_consistently(self):
        """The sender commits to a NON-codeword share vector and disperses
        valid witnesses for it; the re-encode check must make all honest
        parties output the same thing (here: bottom)."""
        from repro.coding.reed_solomon import rs_code

        class NonCodewordSender(Adversary):
            def select_corruptions(self, n, t):
                return {0}

            def deliver(self, view):
                out = {}
                if view.channel.endswith("/disperse"):
                    code = rs_code(view.n, view.n - view.t)
                    shares = code.encode(b"committed value")
                    shares[2] = shares[2][:-1] + b"\x77"  # break codeword
                    root, wits = merkle.build(KAPPA, shares)
                    for dst in range(view.n):
                        out[(0, dst)] = (root, dst, shares[dst], wits[dst])
                elif view.channel.endswith(("/forward1", "/forward2")):
                    pass  # stay silent; honest parties forward their own
                return out

        result = run_protocol(
            bb_factory(0), [b""] * 7, 7, 2, kappa=KAPPA,
            adversary=NonCodewordSender(),
        )
        assert result.common_output() is None

    def test_selective_dispersal_cannot_split_outputs(self):
        """The sender gives valid tuples to only SOME honest parties and
        plays games in the forwarding rounds; the confirm-BA + re-dispersal
        round must keep honest outputs identical."""
        from repro.ba.distribution import encode_and_accumulate

        data = b"partially dispersed"

        class Selective(Adversary):
            def select_corruptions(self, n, t):
                return {0, 1}

            def deliver(self, view):
                out = {}
                ctx = Context(party_id=0, n=view.n, t=view.t, kappa=KAPPA)
                _, shares, root, wits = encode_and_accumulate(ctx, data)
                if view.channel.endswith("/disperse"):
                    # give valid tuples only to parties 2 and 3
                    for dst in (2, 3):
                        out[(0, dst)] = (root, dst, shares[dst], wits[dst])
                    # junk root to everyone else
                    for dst in (4, 5, 6):
                        out[(0, dst)] = (b"\x01" * (KAPPA // 8), dst,
                                         b"junk", None)
                return out

        result = run_protocol(
            bb_factory(0), [b""] * 7, 7, 2, kappa=KAPPA,
            adversary=Selective(),
        )
        result.common_output()  # identical at all honest parties


class TestComplexity:
    def test_linear_in_payload(self):
        small = run_protocol(bb_factory(0), [os.urandom(500)] * 7, 7, 2,
                             kappa=KAPPA)
        large = run_protocol(bb_factory(0), [os.urandom(4000)] * 7, 7, 2,
                             kappa=KAPPA)
        assert large.stats.honest_bits / small.stats.honest_bits < 8
