"""``FixedLengthCA`` and ``FixedLengthCABlocks`` tests (Theorems 2, 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixed_length import fixed_length_ca, fixed_length_ca_blocks
from repro.sim import Context, RandomGarbageAdversary, run_protocol

from conftest import adversary_params, assert_convex

KAPPA = 64


def flca(ell):
    def factory(ctx, v):
        return fixed_length_ca(ctx, v, ell)

    return factory


def flcab(ell):
    def factory(ctx, v):
        return fixed_length_ca_blocks(ctx, v, ell)

    return factory


class TestFixedLengthCA:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_spread_inputs(self, adversary):
        ell = 24
        inputs = [1, 2**ell - 1, 2**12, 7777, 2**20, 3, 2**18]
        result = run_protocol(flca(ell), inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_unanimous(self, adversary):
        result = run_protocol(flca(16), [54321] * 7, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == 54321

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_clustered(self, adversary):
        base = 0b1011 << 12
        inputs = [base + i for i in range(7)]
        result = run_protocol(flca(16), inputs, 7, 2, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    def test_ell_one(self):
        result = run_protocol(flca(1), [0, 1, 0, 1], 4, 1, kappa=KAPPA)
        assert result.common_output() in (0, 1)

    def test_ell_one_unanimous(self):
        result = run_protocol(flca(1), [1] * 4, 4, 1, kappa=KAPPA)
        assert result.common_output() == 1

    def test_adjacent_values(self):
        """Values differing in the last bit only."""
        inputs = [100, 101, 100, 101, 100, 101, 100]
        result = run_protocol(flca(8), inputs, 7, 2, kappa=KAPPA)
        assert result.common_output() in (100, 101)

    def test_extremes(self):
        ell = 12
        inputs = [0, 2**ell - 1, 0, 2**ell - 1, 0, 2**ell - 1, 0]
        result = run_protocol(flca(ell), inputs, 7, 2, kappa=KAPPA)
        assert_convex(inputs, result)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**20 - 1),
                 min_size=4, max_size=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_inputs(self, inputs, seed):
        result = run_protocol(
            flca(20), inputs, 4, 1, kappa=KAPPA,
            adversary=RandomGarbageAdversary(seed),
        )
        assert_convex(inputs, result)


class TestFixedLengthCABlocks:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_spread_inputs(self, adversary):
        n, t = 4, 1
        ell = n * n * 4  # 64 bits, 16 blocks
        inputs = [0, 2**ell - 1, 2**30, 12345]
        result = run_protocol(flcab(ell), inputs, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert_convex(inputs, result)

    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_unanimous(self, adversary):
        n, t = 4, 1
        ell = n * n * 2
        value = (1 << ell) - 7
        result = run_protocol(flcab(ell), [value] * n, n, t, kappa=KAPPA,
                              adversary=adversary)
        assert result.common_output() == value

    def test_larger_network(self):
        n, t = 7, 2
        ell = n * n * 2  # 98 bits
        inputs = [(1 << 90) + i * 10**9 for i in range(n)]
        result = run_protocol(flcab(ell), inputs, n, t, kappa=KAPPA)
        assert_convex(inputs, result)

    def test_divisibility_enforced(self):
        ctx = Context(party_id=0, n=4, t=1, kappa=KAPPA)
        with pytest.raises(ValueError):
            next(fixed_length_ca_blocks(ctx, 0, 17))

    def test_agrees_with_bit_variant_semantics(self):
        """Both variants are CA protocols; on identical clustered inputs
        both must return a value in the hull (not necessarily equal)."""
        n, t = 4, 1
        ell = 32
        inputs = [0xABCD0000 + i for i in range(n)]
        bit_result = run_protocol(flca(ell), inputs, n, t, kappa=KAPPA)
        block_result = run_protocol(flcab(ell), inputs, n, t, kappa=KAPPA)
        assert_convex(inputs, bit_result)
        assert_convex(inputs, block_result)


class TestComplexityShape:
    def test_blocks_variant_fewer_iterations_for_long_inputs(self):
        """Section 4's point: block search needs O(log n) iterations
        versus O(log l) for bits, visible in round counts for large l."""
        n, t = 4, 1
        ell = 1024  # n^2 = 16 blocks of 64 bits
        inputs = [(1 << 1000) + i for i in range(n)]
        bit_result = run_protocol(flca(ell), inputs, n, t, kappa=KAPPA)
        block_result = run_protocol(flcab(ell), inputs, n, t, kappa=KAPPA)
        assert block_result.stats.rounds < bit_result.stats.rounds
