"""Full-stack integration tests: cross-module flows and end-to-end
properties that no single-module test covers."""

from __future__ import annotations

import pytest

from repro import (
    AdaptiveCorruptionAdversary,
    CrashAdversary,
    convex_agreement,
    run_protocol,
)
from repro.ba.turpin_coan import turpin_coan
from repro.core import protocol_z
from repro.core.protocol_n import protocol_n
from repro.sim.trace import summarize_trace

from conftest import adversary_params, assert_convex

KAPPA = 64


class TestEndToEndScenarios:
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_sensor_scenario_all_adversaries(self, adversary):
        readings = [-10_050 + i for i in range(10)]
        outcome = convex_agreement(readings, kappa=KAPPA,
                                   adversary=adversary)
        assert outcome.execution.assert_convex_valid(readings) == outcome.value

    def test_deterministic_replay(self):
        """Same inputs + same adversary seed -> bit-identical executions."""
        from repro.sim import RandomGarbageAdversary

        def run():
            return convex_agreement(
                [7, -3, 12, 0], kappa=KAPPA,
                adversary=RandomGarbageAdversary(seed=99),
            )

        a, b = run(), run()
        assert a.value == b.value
        assert a.stats.honest_bits == b.stats.honest_bits
        assert a.stats.rounds == b.stats.rounds
        assert dict(a.stats.bits_by_channel) == dict(b.stats.bits_by_channel)

    def test_channel_accounting_partitions_total(self):
        outcome = convex_agreement([5, 6, 7, 8], kappa=KAPPA)
        assert (
            sum(outcome.stats.bits_by_channel.values())
            == outcome.stats.honest_bits
        )
        assert (
            sum(outcome.stats.bits_by_party.values())
            == outcome.stats.honest_bits
        )

    def test_trace_channels_nest_under_pi_z(self):
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), [3, 1, 4, 1], 4, 1,
            kappa=KAPPA, trace=True,
        )
        assert all(r.channel.startswith("piZ/") for r in result.trace)
        summary = summarize_trace(result.trace)
        assert any("/fp/" in channel for channel in summary)

    def test_sub_ba_cost_is_ell_independent(self):
        """Per-channel accounting: the PI_BA machinery inside PI_Z costs
        the same regardless of ell (only dist/fp input rounds scale)."""
        def bits_on(result, fragment):
            return sum(
                bits
                for channel, bits in result.stats.bits_by_channel.items()
                if fragment in channel
            )

        small = run_protocol(
            lambda ctx, v: protocol_z(ctx, v),
            [(1 << 200) + i for i in range(4)], 4, 1, kappa=KAPPA,
        )
        large = run_protocol(
            lambda ctx, v: protocol_z(ctx, v),
            [(1 << 3200) + i for i in range(4)], 4, 1, kappa=KAPPA,
        )
        # the vote rounds of PI_BA+ carry only kappa-bit digests:
        assert bits_on(large, "/root/vote") == bits_on(small, "/root/vote")


class TestAdaptiveAdversary:
    def test_adaptive_corruption_mid_protocol(self):
        """Corrupting parties mid-run (up to t total) cannot break CA."""
        inputs = [10, 20, 30, 40, 50, 60, 70]
        adversary = AdaptiveCorruptionAdversary(
            schedule=[(5, 1), (40, 3)],
            inner=CrashAdversary(0),
            initial=set(),
        )
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, 7, 2, kappa=KAPPA,
            adversary=adversary,
        )
        assert len(result.corrupted) <= 2
        assert_convex(inputs, result)

    def test_late_corruption_of_prior_contributor(self):
        """A party whose input already shaped the prefix gets corrupted
        later; its earlier contribution remains valid (it was honest
        then), and the output stays in the final honest set's hull is
        NOT required -- the model only guarantees the hull of parties
        honest at the end... we assert the weaker, correct property:
        output within the hull of all initially-honest inputs."""
        inputs = [100, 101, 102, 103, 104, 105, 106]
        adversary = AdaptiveCorruptionAdversary(
            schedule=[(30, 0)], inner=CrashAdversary(0), initial={6},
        )
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), inputs, 7, 2, kappa=KAPPA,
            adversary=adversary,
        )
        value = result.common_output()
        assert 100 <= value <= 106


class TestComposition:
    def test_ca_then_ba_pipeline(self):
        """CA output feeds a follow-up BA round (a realistic pipeline:
        agree on a value, then agree on an action bit)."""
        from repro.ba.domains import BIT_DOMAIN
        from repro.ba.phase_king import phase_king

        def pipeline(ctx, reading):
            value = yield from protocol_z(ctx, reading, channel="stage1")
            alarm = 1 if value < -10_000 else 0
            decision = yield from phase_king(
                ctx, alarm, BIT_DOMAIN, channel="stage2"
            )
            return (value, decision)

        inputs = [-10_050, -10_040, -10_045, -10_043]
        result = run_protocol(pipeline, inputs, 4, 1, kappa=KAPPA)
        value, decision = result.common_output()
        assert -10_050 <= value <= -10_040
        assert decision == 1

    def test_parallel_sequential_instances_are_independent(self):
        """Two CA instances run back-to-back on different inputs do not
        interfere (channel separation)."""

        def double(ctx, pair):
            first = yield from protocol_n(ctx, pair[0], channel="one")
            second = yield from protocol_n(ctx, pair[1], channel="two")
            return (first, second)

        inputs = [(10 + i, 1000 - i) for i in range(4)]
        result = run_protocol(double, inputs, 4, 1, kappa=KAPPA)
        first, second = result.common_output()
        assert 10 <= first <= 13
        assert 997 <= second <= 1000

    def test_custom_ba_injection(self):
        """PI_Z parameterised by Turpin-Coan-over-phase-king still
        satisfies CA (any BA works, per the theorem statements)."""

        def tc_ba(ctx, value, domain, channel="ba"):
            result = yield from turpin_coan(
                ctx, value, domain, channel=channel
            )
            # Plain BA never outputs bottom on unanimous inputs; map
            # bottom to the domain default for the mixed case.
            return result if domain.validate(result) else domain.default

        inputs = [50, 51, 52, 53]
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v, ba=tc_ba),
            inputs, 4, 1, kappa=KAPPA,
        )
        assert_convex(inputs, result)


class TestDegenerateConfigurations:
    """t = 0 and tiny-n configurations must work end to end."""

    def test_pi_z_n1(self):
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), [-7], 1, 0, kappa=KAPPA
        )
        assert result.common_output() == -7

    def test_pi_z_n2_t0(self):
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), [5, 9], 2, 0, kappa=KAPPA
        )
        assert 5 <= result.common_output() <= 9

    def test_pi_z_n3_t0(self):
        result = run_protocol(
            lambda ctx, v: protocol_z(ctx, v), [-1, 0, 1], 3, 0,
            kappa=KAPPA,
        )
        assert -1 <= result.common_output() <= 1

    def test_high_cost_n2_t0(self):
        from repro.core.high_cost_ca import high_cost_ca

        result = run_protocol(
            lambda ctx, v: high_cost_ca(ctx, v), [3, 8], 2, 0, kappa=KAPPA
        )
        assert 3 <= result.common_output() <= 8

    def test_aa_t0(self):
        from repro.aa import approximate_agreement

        result = run_protocol(
            lambda ctx, v: approximate_agreement(ctx, v, 1, 1 << 10),
            [100, 200, 300], 3, 0, kappa=KAPPA,
        )
        outputs = list(result.outputs.values())
        assert max(outputs) - min(outputs) <= 1
        assert all(100 <= out <= 300 for out in outputs)
