"""The hot-path acceleration layer (``repro.perf``).

Two contracts under test:

1. **Correctness neutrality**: every cache (execution-scoped RS-encode +
   Merkle-forest memo, decode-matrix reuse, memoized ``wire_bits``) and
   the zero-fault network fast path are byte-for-byte invisible --
   identical outputs, ``CommunicationStats``, channel traces, and round
   traces with the caches on or off, fast path or general path, honest
   or byzantine runs.  Byzantine garbage must never poison an honest
   party's cache.
2. **Deterministic observability**: the operation counters are pure
   functions of the executed config (reproducible across runs once the
   process-level memos are cleared), and the ``repro profile`` document
   diffs cleanly against itself.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.experiments import make_inputs, measure
from repro.ba.distribution import _encode_and_build, encode_and_accumulate
from repro.coding.reed_solomon import ReedSolomonCode
from repro.core.fixed_length import fixed_length_ca
from repro.crypto import merkle
from repro.errors import CodingError
from repro.perf import config, counters
from repro.perf.profile import (
    QUICK_CONFIGS,
    check_counters,
    config_key,
    hotpath_document,
)
from repro.sim.adversary import RandomGarbageAdversary
from repro.sim.party import Context
from repro.sim.runner import run_protocol


def _run_fixed(ell=2048, *, adversary=None, recovery=None, seed=4):
    inputs = make_inputs(7, ell, seed=seed, spread="clustered")
    return run_protocol(
        lambda ctx, v: fixed_length_ca(ctx, v, ell),
        inputs,
        n=7,
        t=2,
        adversary=adversary,
        trace=True,
        recovery=recovery,
    )


def _comparable(result):
    """Everything observable about an execution except wall time."""
    return (
        result.outputs,
        result.corrupted,
        result.channel_trace,
        result.trace,
        dataclasses.replace(result.stats, wall_s=0.0),
    )


# -- correctness neutrality ------------------------------------------------


def test_caches_do_not_change_any_observable_byte():
    with config.caches(True):
        warm = _run_fixed()
    with config.caches(False):
        cold = _run_fixed()
    assert _comparable(warm) == _comparable(cold)


def test_caches_neutral_under_byzantine_garbage():
    with config.caches(True):
        warm = _run_fixed(adversary=RandomGarbageAdversary(seed=11))
    with config.caches(False):
        cold = _run_fixed(adversary=RandomGarbageAdversary(seed=11))
    assert _comparable(warm) == _comparable(cold)


def test_fast_path_matches_general_path():
    """recovery=True arms the WAL plane, forcing the general path."""
    fast = _run_fixed()
    slow = _run_fixed(recovery=True)
    assert _comparable(fast) == _comparable(slow)


def test_fast_path_flag():
    from repro.sim.network import SynchronousNetwork

    def factory(ctx, v):
        return fixed_length_ca(ctx, v, 16)

    inputs = make_inputs(4, 16, seed=0)
    assert SynchronousNetwork(factory, inputs, n=4, t=1)._fast_path
    assert not SynchronousNetwork(
        factory, inputs, n=4, t=1, adversary=RandomGarbageAdversary(seed=0)
    )._fast_path
    assert not SynchronousNetwork(
        factory, inputs, n=4, t=1, recovery=True
    )._fast_path


# -- cache poisoning -------------------------------------------------------


def test_garbled_payloads_cannot_poison_the_encode_cache():
    """The memo maps a payload to *its own* encoding only."""
    ctx = Context(party_id=0, n=4, t=1)
    honest = b"honest value bytes"
    garbled = b"byzantine garbage!"
    with config.caches(True):
        # Garbage first: whatever a byzantine sender makes us decode and
        # re-encode lands under *its* key, not the honest payload's.
        _encode_and_build(ctx, garbled)
        _, shares, root, _ = encode_and_accumulate(ctx, honest)
    with config.caches(False):
        _, ref_shares, ref_root, _ = encode_and_accumulate(ctx, honest)
    assert shares == ref_shares
    assert root == ref_root
    # Distinct payloads occupy distinct entries.
    keys = {key for key in ctx.cache if key[0] == "rs+mt"}
    assert len(keys) == 2


def test_encode_cache_is_execution_scoped():
    a = Context(party_id=0, n=4, t=1)
    b = Context(party_id=0, n=4, t=1)
    with config.caches(True):
        _encode_and_build(a, b"payload")
    assert a.cache and not b.cache
    # cache contents never affect Context identity.
    assert a == b


def test_decode_matrix_cache_survives_garbled_shares():
    code = ReedSolomonCode(5, 3)
    shares = code.encode(b"some value to protect")
    subset = {0: shares[0], 2: shares[2], 4: shares[4]}
    with config.caches(True):
        assert code.decode(subset) == b"some value to protect"
        # Same index set, garbled contents: the cached inverse depends
        # only on the indices, so decoding still inverts correctly and
        # the re-encode check upstream rejects the junk value.
        garbled = dict(subset)
        garbled[2] = bytes(len(shares[2]))
        try:
            junk = code.decode(garbled)
        except CodingError:
            pass  # junk framing is rejected outright -- equally fine
        else:
            assert junk != b"some value to protect"
        # The honest subset still decodes through the cached matrix.
        assert code.decode(subset) == b"some value to protect"


def test_decode_matrix_cached_per_index_tuple():
    # The decode-matrix memo is process-wide; start from a cold cache so
    # a decode earlier in the test session cannot pre-warm this key.
    config.reset_process_caches()
    code = ReedSolomonCode(5, 3)
    shares = code.encode(b"abc")
    subset = {0: shares[0], 1: shares[1], 3: shares[3]}
    with config.caches(True):
        with counters.capture() as first:
            code.decode(subset)
        with counters.capture() as second:
            code.decode(subset)
    assert first.get("gf_matrix_invert", 0) == 1
    assert second.get("gf_matrix_invert", 0) == 0
    with config.caches(False):
        with counters.capture() as uncached:
            code.decode(subset)
    assert uncached.get("gf_matrix_invert", 0) == 1


def test_decode_matrix_cache_lru_eviction(monkeypatch):
    from repro.coding import reed_solomon as rs

    config.reset_process_caches()
    monkeypatch.setattr(rs, "_DECODE_MATRIX_CACHE_MAX", 2)
    code = ReedSolomonCode(5, 3)
    shares = code.encode(b"abc")

    def decode(indices) -> int:
        """Decode from the given share indices; inversions performed."""
        subset = {i: shares[i] for i in indices}
        with counters.capture() as counts:
            assert code.decode(subset) == b"abc"
        return counts.get("gf_matrix_invert", 0)

    with config.caches(True):
        assert decode((0, 1, 2)) == 1
        assert decode((0, 1, 3)) == 1
        # Touch the oldest entry: it becomes most recently used.
        assert decode((0, 1, 2)) == 0
        # At capacity, a new key evicts the true LRU -- (0,1,3), not
        # the refreshed (0,1,2).
        assert decode((0, 1, 4)) == 1
        assert decode((0, 1, 2)) == 0
        assert decode((0, 1, 3)) == 1
    assert len(rs._DECODE_MATRIX_CACHE) == 2
    rs.clear_decode_matrix_cache()
    assert len(rs._DECODE_MATRIX_CACHE) == 0


def test_decode_matrix_cache_cap_from_environment(monkeypatch):
    from repro.coding import reed_solomon as rs

    monkeypatch.delenv("REPRO_DECODE_MATRIX_CACHE_MAX", raising=False)
    assert rs._cache_cap() == 512
    monkeypatch.setenv("REPRO_DECODE_MATRIX_CACHE_MAX", "7")
    assert rs._cache_cap() == 7
    # Unparsable settings disable memoization instead of crashing.
    monkeypatch.setenv("REPRO_DECODE_MATRIX_CACHE_MAX", "lots")
    assert rs._cache_cap() == 0


def test_decode_matrix_cache_disabled_by_nonpositive_cap(monkeypatch):
    from repro.coding import reed_solomon as rs

    config.reset_process_caches()
    monkeypatch.setattr(rs, "_DECODE_MATRIX_CACHE_MAX", 0)
    code = ReedSolomonCode(5, 3)
    shares = code.encode(b"xyz")
    subset = {0: shares[0], 1: shares[1], 2: shares[2]}
    with config.caches(True):
        for _ in range(2):
            with counters.capture() as counts:
                assert code.decode(subset) == b"xyz"
            assert counts.get("gf_matrix_invert", 0) == 1
    assert len(rs._DECODE_MATRIX_CACHE) == 0


# -- memoized wire_bits ----------------------------------------------------


def test_merkle_witness_wire_bits_memoized():
    _, witnesses = merkle.build(128, [b"a", b"b", b"c"])
    witness = witnesses[0]
    assert witness._wire_bits_memo is None
    first = witness.wire_bits()
    assert witness._wire_bits_memo == first
    assert witness.wire_bits() == first
    # slots=True: the memo lives in a declared slot, not a __dict__.
    assert not hasattr(witness, "__dict__")
    assert witness == type(witness)(
        index=witness.index, siblings=witness.siblings
    )


def test_merkle_roundtrip_and_defensive_verify():
    root, witnesses = merkle.build(128, [b"x", b"y", b"z"])
    assert merkle.verify(128, root, 1, b"y", witnesses[1])
    assert not merkle.verify(128, root, 1, b"wrong", witnesses[1])
    assert not merkle.verify(128, root, 1, b"y", "not a witness")


# -- deterministic counters ------------------------------------------------


def test_counters_deterministic_across_runs():
    def run_once():
        config.reset_process_caches()
        counters.reset()
        measure("fixed_length_ca", 4, 1, 256, seed=0, spread="spread")
        return counters.snapshot()

    first, second = run_once(), run_once()
    assert first == second
    assert first["net_rounds"] > 0
    assert first["rs_encode"] > 0
    assert first["sha256"] > 0


def test_capture_reports_block_deltas():
    with counters.capture() as ops:
        counters.bump("example", 3)
        with counters.capture() as inner:
            counters.bump("example")
    assert inner == {"example": 1}
    assert ops == {"example": 4}


def test_rs_decode_raises_on_malformed_share_sets():
    code = ReedSolomonCode(5, 3)
    shares = code.encode(b"value")
    with pytest.raises(CodingError):
        code.decode({0: shares[0]})
    with pytest.raises(CodingError):
        code.decode({0: shares[0], 1: shares[1][:-1], 2: shares[2]})


# -- the profile document --------------------------------------------------


def test_hotpath_document_self_checks_clean():
    tiny = [dict(QUICK_CONFIGS[0])]
    doc = hotpath_document(cprofile=False, configs=tiny)
    key = config_key(tiny[0])
    assert key in doc["deterministic"]
    assert doc["deterministic"][key]["counters"]["net_rounds"] > 0
    errors, notes = check_counters(doc, doc)
    assert errors == [] and notes == []


def test_check_counters_flags_regressions_and_improvements():
    tiny = [dict(QUICK_CONFIGS[0])]
    doc = hotpath_document(cprofile=False, configs=tiny)
    key = config_key(tiny[0])
    worse = {
        "deterministic": {
            key: {
                **doc["deterministic"][key],
                "counters": {
                    **doc["deterministic"][key]["counters"],
                    "sha256":
                        doc["deterministic"][key]["counters"]["sha256"] + 1,
                },
            }
        }
    }
    errors, _ = check_counters(worse, doc)
    assert any("sha256 regressed" in e for e in errors)
    improved, notes = check_counters(doc, worse)
    assert improved == []
    assert any("sha256 improved" in n for n in notes)
