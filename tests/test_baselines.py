"""Baseline protocol tests: both broadcast-based CAs are correct CAs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    broadcast_ca,
    decode_int,
    encode_int,
    naive_broadcast_ca,
    trimmed_median,
)
from repro.sim import RandomGarbageAdversary, run_protocol

from conftest import adversary_params, assert_convex

KAPPA = 64

BASELINES = [
    pytest.param(broadcast_ca, id="broadcast_ca"),
    pytest.param(naive_broadcast_ca, id="naive_broadcast_ca"),
]


class TestIntCodec:
    @given(st.integers(min_value=-(2**200), max_value=2**200))
    def test_roundtrip(self, v):
        assert decode_int(encode_int(v)) == v

    def test_malformed_rejected(self):
        assert decode_int(b"") is None
        assert decode_int(b"\x05\x01") is None
        assert decode_int("junk") is None
        assert decode_int(b"\x00") is None

    def test_negative_zero_rejected(self):
        assert decode_int(b"\x01\x00") is None


class TestTrimmedMedian:
    def test_plain_median(self):
        assert trimmed_median([1, 2, 3, 4, 5], 0) == 3

    def test_trims_outliers(self):
        assert trimmed_median([-(10**9), 10, 11, 12, 10**9], 1) == 11

    def test_ignores_bottom(self):
        assert trimmed_median([None, 5, 6, 7, None], 1) == 6

    def test_insufficient_values(self):
        with pytest.raises(ValueError):
            trimmed_median([1, 2], 1)

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000),
                 min_size=5, max_size=9),
    )
    def test_result_within_trimmed_range(self, values):
        t = (len(values) - 1) // 3
        if len(values) <= 2 * t:
            return
        out = trimmed_median(list(values), t)
        ordered = sorted(values)
        assert ordered[t] <= out <= ordered[len(values) - 1 - t]


class TestBaselineCA:
    @pytest.mark.parametrize("proto", BASELINES)
    @pytest.mark.parametrize("adversary", adversary_params())
    def test_ca_properties(self, proto, adversary):
        inputs = [100, 105, 103, 101, 104, 102, 106]
        result = run_protocol(
            lambda ctx, v: proto(ctx, v), inputs, 7, 2, kappa=KAPPA,
            adversary=adversary,
        )
        assert_convex(inputs, result)

    @pytest.mark.parametrize("proto", BASELINES)
    def test_unanimous(self, proto):
        result = run_protocol(
            lambda ctx, v: proto(ctx, v), [77] * 7, 7, 2, kappa=KAPPA
        )
        assert result.common_output() == 77

    @pytest.mark.parametrize("proto", BASELINES)
    def test_negative_values(self, proto):
        inputs = [-5, -10, -7, -3, -8, -6, -9]
        result = run_protocol(
            lambda ctx, v: proto(ctx, v), inputs, 7, 2, kappa=KAPPA
        )
        assert_convex(inputs, result)

    @pytest.mark.parametrize("proto", BASELINES)
    def test_small_network(self, proto):
        inputs = [1, 2, 3, 4]
        result = run_protocol(
            lambda ctx, v: proto(ctx, v), inputs, 4, 1, kappa=KAPPA
        )
        assert_convex(inputs, result)

    @pytest.mark.parametrize("proto", BASELINES)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=5, deadline=None)
    def test_garbage_robustness(self, proto, seed):
        inputs = [10, 20, 30, 40]
        result = run_protocol(
            lambda ctx, v: proto(ctx, v), inputs, 4, 1, kappa=KAPPA,
            adversary=RandomGarbageAdversary(seed),
        )
        assert_convex(inputs, result)


class TestBaselineComplexity:
    def test_broadcast_ca_quadratic_vs_pi_z_linear(self):
        """The headline gap: for long inputs broadcast_ca pays a factor
        ~n more than PI_Z on the l-dependent term."""
        from repro.core.protocol_z import protocol_z

        ell = 4096
        value = (1 << (ell - 1)) + 12345
        inputs = [value + i for i in range(7)]

        def measure(factory):
            small = run_protocol(factory, [v >> 2048 for v in inputs],
                                 7, 2, kappa=KAPPA).stats.honest_bits
            large = run_protocol(factory, inputs, 7, 2,
                                 kappa=KAPPA).stats.honest_bits
            return (large - small) / (8 * 2048 // 8)  # per-bit slope-ish

        pi_z_slope = measure(lambda ctx, v: protocol_z(ctx, v))
        bc_slope = measure(lambda ctx, v: broadcast_ca(ctx, v))
        assert bc_slope > 3 * pi_z_slope
