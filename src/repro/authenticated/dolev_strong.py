"""Dolev-Strong broadcast: synchronous BB with signatures, ``t < n``.

The paper's conclusions raise the "synchronous model with t < n/2
corruptions assuming cryptographic setup" as an open direction.  The
classic tool in that setting is the Dolev-Strong protocol: with an
idealized signature scheme (see :mod:`repro.crypto.signatures`) it
achieves Byzantine Broadcast for *any* number of corruptions in
``t + 1`` rounds.

Round ``1``: the sender signs its value and sends ``(v, chain)`` with a
1-signature chain to everyone.  Round ``r``: a party *accepts* a value
carried by a valid chain of at least ``r`` distinct signatures starting
with the sender's, and forwards every newly accepted value with its own
signature appended.  A party tracks at most two accepted values (two
distinct accepted values already prove the sender byzantine).  After
round ``t + 1``: output the unique accepted value, or bottom.

Why agreement holds: if an honest party accepts ``v`` in round
``r <= t`` it re-broadcasts a longer chain, so every honest party
accepts ``v`` by round ``r + 1``; if it first accepts in round
``t + 1``, the chain carries ``t + 1`` distinct signers, one of whom is
honest and already forwarded ``v`` earlier.  Signed payloads are framed
with the (per-instance) channel tag, so chains cannot be replayed
across broadcast instances.
"""

from __future__ import annotations

from typing import Any

from ..crypto.signatures import SignatureScheme
from ..sim.party import Context, Proto, exchange

__all__ = ["dolev_strong_broadcast", "signed_payload"]


def signed_payload(channel: str, value: bytes) -> bytes:
    """The byte string every chain signature covers (instance-framed)."""
    tag = channel.encode()
    return len(tag).to_bytes(2, "big") + tag + value


def _valid_chain(
    ctx: Context,
    scheme: SignatureScheme,
    sender: int,
    channel: str,
    message: Any,
    min_length: int,
) -> tuple[bytes, tuple[tuple[int, bytes], ...]] | None:
    """Validate one ``(value, chain)`` message; None if malformed."""
    if not (isinstance(message, tuple) and len(message) == 2):
        return None
    value, chain = message
    if not isinstance(value, bytes) or not isinstance(chain, tuple):
        return None
    if len(chain) < min_length or len(chain) > ctx.n:
        return None
    signers = []
    payload = signed_payload(channel, value)
    for link in chain:
        if not (isinstance(link, tuple) and len(link) == 2):
            return None
        signer, signature = link
        if not scheme.verify(signer, payload, signature):
            return None
        signers.append(signer)
    if len(set(signers)) != len(signers) or signers[0] != sender:
        return None
    return value, chain


def dolev_strong_broadcast(
    ctx: Context,
    sender: int,
    v_in: bytes | None,
    scheme: SignatureScheme,
    channel: str = "ds",
) -> Proto[bytes | None]:
    """Broadcast ``v_in`` from ``sender``; tolerates any ``t < n``.

    Returns the common output: the sender's value if the sender is
    honest, otherwise some common value or ``None`` (bottom).
    Runs exactly ``t + 1`` communication rounds.
    """
    accepted: dict[bytes, tuple] = {}
    to_forward: list[tuple] = []

    # Round 1: the sender signs and disperses.
    if ctx.party_id == sender:
        if not isinstance(v_in, bytes):
            raise TypeError("Dolev-Strong sender input must be bytes")
        signature = scheme.sign(sender, signed_payload(channel, v_in))
        message = (v_in, ((sender, signature),))
        outgoing = {dest: [message] for dest in ctx.all_parties}
    else:
        outgoing = {}
    inbox = yield from exchange(f"{channel}/r1", outgoing)
    _ingest(ctx, scheme, sender, channel, inbox, 1, accepted, to_forward)

    # Rounds 2 .. t+1: forward newly accepted values.
    for round_index in range(2, ctx.t + 2):
        outgoing = (
            {dest: list(to_forward) for dest in ctx.all_parties}
            if to_forward
            else {}
        )
        to_forward = []
        inbox = yield from exchange(f"{channel}/r{round_index}", outgoing)
        _ingest(
            ctx, scheme, sender, channel, inbox, round_index, accepted,
            to_forward,
        )

    if len(accepted) == 1:
        return next(iter(accepted))
    return None


def _ingest(
    ctx: Context,
    scheme: SignatureScheme,
    sender: int,
    channel: str,
    inbox: dict[int, Any],
    round_index: int,
    accepted: dict[bytes, tuple],
    to_forward: list[tuple],
) -> None:
    """Process one round's inbox: accept and queue forwards."""
    for messages in inbox.values():
        if not isinstance(messages, list):
            continue
        for message in messages[:4]:  # honest parties send at most 2
            if len(accepted) >= 2:
                return
            checked = _valid_chain(
                ctx, scheme, sender, channel, message, round_index
            )
            if checked is None:
                continue
            value, chain = checked
            if value in accepted:
                continue
            accepted[value] = chain
            if ctx.party_id not in {signer for signer, _ in chain}:
                signature = scheme.sign(
                    ctx.party_id, signed_payload(channel, value)
                )
                to_forward.append(
                    (value, chain + ((ctx.party_id, signature),))
                )
