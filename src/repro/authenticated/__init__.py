"""The authenticated setting: ``t < n/2`` with cryptographic setup.

Explores the feasibility side of the paper's open problem (Section 8):
Dolev-Strong broadcast over idealized signatures, and a broadcast-based
CA that tolerates a minority of corruptions.
"""

from .auth_ca import authenticated_ca
from .dolev_strong import dolev_strong_broadcast, signed_payload

__all__ = ["authenticated_ca", "dolev_strong_broadcast", "signed_payload"]
