"""Convex Agreement with ``t < n/2`` under cryptographic setup.

The paper's conclusions ask whether communication-optimal CA extends to
"the synchronous model with t < n/2 corruptions assuming cryptographic
setup".  This module settles the *feasibility* half of that question in
the classic, communication-heavy way (the optimal-communication half
remains open, as in the paper): every party Dolev-Strong-broadcasts its
input, giving identical views, and a deterministic trimmed rule maps
the view to a common output.

The interesting wrinkle versus the ``t < n/3`` baseline is the trimming
amount.  With ``n = 2t + 1`` the view may contain as few as ``t + 1``
values (byzantine senders can abort), which is too few to trim ``t``
per side -- but every bottom entry *identifies* a corrupted sender
(honest broadcasts never abort), so with ``b`` bottoms at most
``t - b`` byzantine values hide among the ``n - b`` real ones and
trimming ``t - b`` per side suffices:

    survivors = (n - b) - 2(t - b) = n + b - 2t >= 1   (n >= 2t + 1).

Validity: after trimming ``t - b`` from below, the smallest survivor is
at least the honest minimum (at most ``t - b`` byzantine values can sit
below it); symmetrically above; the median of the survivors is
therefore in the honest inputs' range.  Agreement follows from the
identical views.  Communication is ``O(n^3 (l + kappa t))`` --
feasibility, not optimality.
"""

from __future__ import annotations

from ..baselines.common import decode_int, encode_int, trimmed_median
from ..crypto.signatures import SignatureScheme
from ..sim.party import Context, Proto
from .dolev_strong import dolev_strong_broadcast

__all__ = ["authenticated_ca"]


def authenticated_ca(
    ctx: Context,
    v_in: int,
    scheme: SignatureScheme,
    channel: str = "authca",
) -> Proto[int]:
    """CA on integers tolerating ``t < n/2`` (with signatures).

    Guarantees: Termination (``n (t + 1)`` rounds), Agreement, Convex
    Validity -- for up to ``t < n/2`` corruptions, beyond the plain
    model's ``t < n/3`` barrier.
    """
    ctx.require_resilience(2)
    if not isinstance(v_in, int) or isinstance(v_in, bool):
        raise ValueError(f"input must be an integer, got {v_in!r}")
    payload = encode_int(v_in)

    view: list[int | None] = []
    for sender in range(ctx.n):
        delivered = yield from dolev_strong_broadcast(
            ctx,
            sender,
            payload if sender == ctx.party_id else None,
            scheme,
            channel=f"{channel}/bb{sender}",
        )
        view.append(decode_int(delivered) if delivered is not None else None)

    # Every bottom (or undecodable) entry certifies a corrupted sender.
    identified = sum(1 for entry in view if entry is None)
    effective_t = max(0, ctx.t - identified)
    return trimmed_median(view, effective_t)
