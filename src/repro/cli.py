"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``     -- run Convex Agreement on a list of integer inputs under a
  chosen adversary and print the outcome + communication stats.
* ``sweep``   -- sweep one protocol over an ``ns x ells`` grid (optionally
  on a worker pool) and print the measurement table; ``--bench-json``
  emits the machine-readable ``BENCH_sweep.json`` document.
* ``compare`` -- the F1 comparison (PI_Z vs baselines) at chosen sizes.
* ``report``  -- regenerate the quick experiment report (T/F battery).
* ``fuzz``    -- chaos campaign: random configs under invariant monitors,
  failing cases shrunk to minimal JSON repro artifacts.
* ``replay``  -- re-execute a fuzz artifact and check it still reproduces.
* ``profile`` -- run the hot-path battery under deterministic operation
  counters (plus cProfile hotspots) and emit ``BENCH_hotpath.json``;
  ``--check`` diffs the counters against a committed baseline at zero
  tolerance (the CI perf gate).

Examples::

    python -m repro run -1005 -1004 -1003 --adversary outlier
    python -m repro profile --quick --check benchmarks/BENCH_hotpath.json
    python -m repro sweep --protocol pi_z --n 7 --ells 256,1024,4096
    python -m repro sweep --protocol fixed_length_ca --ns 4,7,10 \
        --ells 256,4096 --workers auto --compare-serial \
        --bench-json BENCH_sweep.json
    python -m repro compare --n 7 --ells 1024,16384
    python -m repro report --scale quick
    python -m repro fuzz --runs 50 --seed 0 --artifact-dir artifacts
    python -m repro replay artifacts/repro-0-0012.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .errors import ReproError
from .analysis import (
    PROTOCOLS,
    comparison_series,
    format_measurements,
    marginal_slope,
    save_measurements,
    series_chart,
)
from .analysis.report import FULL, QUICK, generate_report
from .core.api import convex_agreement
from .sim.adversary import (
    Adversary,
    CrashAdversary,
    EquivocatingAdversary,
    OutlierAdversary,
    PassiveAdversary,
    RandomGarbageAdversary,
    SplitVoteAdversary,
)

__all__ = ["main", "build_parser"]

ADVERSARIES: dict[str, type[Adversary]] = {
    "passive": PassiveAdversary,
    "crash": CrashAdversary,
    "garbage": RandomGarbageAdversary,
    "equivocate": EquivocatingAdversary,
    "outlier": OutlierAdversary,
    "splitvote": SplitVoteAdversary,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Communication-Optimal Convex Agreement (PODC 2024) "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run convex agreement on inputs")
    run.add_argument("inputs", nargs="+", type=int,
                     help="one integer input per party")
    run.add_argument("--t", type=int, default=None,
                     help="corruption bound (default: floor((n-1)/3))")
    run.add_argument("--kappa", type=int, default=128)
    run.add_argument("--adversary", choices=sorted(ADVERSARIES),
                     default="passive")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--channels", action="store_true",
                     help="print the per-channel cost breakdown")
    run.add_argument(
        "--setting", choices=["plain", "authenticated"], default="plain",
        help="plain model (t < n/3) or signatures (t < n/2)",
    )

    sweep = sub.add_parser(
        "sweep", help="sweep a protocol over an ns x ells grid"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOLS),
                       default="pi_z")
    sweep.add_argument("--n", type=int, default=7)
    sweep.add_argument("--ns", type=_int_list, default=None,
                       help="sweep these party counts (overrides --n)")
    sweep.add_argument("--t", type=int, default=None)
    sweep.add_argument("--ells", type=_int_list, default=[256, 1024, 4096])
    sweep.add_argument("--kappa", type=int, default=128)
    sweep.add_argument("--spread",
                       choices=["spread", "clustered", "identical"],
                       default="clustered")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", default="1",
                       help="worker processes: a count, or 'auto' for all "
                            "cpus (results are identical regardless)")
    sweep.add_argument("--multiplex", type=int, default=1,
                       help="grid points interleaved per interpreter loop "
                            "(cooperative scheduler; results are identical "
                            "regardless)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-grid-point wall-clock budget in seconds")
    sweep.add_argument("--save", default=None,
                       help="write the measurements to a JSON file")
    sweep.add_argument("--bench-json", default=None,
                       help="write the machine-readable sweep document "
                            "(grid + timing) to this path")
    sweep.add_argument("--compare-serial", action="store_true",
                       help="also run the grid serially and record the "
                            "speedup in the sweep document")

    compare = sub.add_parser("compare", help="PI_Z vs the baselines (F1)")
    compare.add_argument("--n", type=int, default=7)
    compare.add_argument("--ells", type=_int_list, default=[1024, 16384])
    compare.add_argument(
        "--protocols", type=_str_list,
        default=["pi_z", "broadcast_ca", "high_cost_ca"],
    )
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--chart", action="store_true",
                         help="render an ASCII log-log chart")
    compare.add_argument("--save", default=None,
                         help="write the measurements to a JSON file")

    report = sub.add_parser("report", help="regenerate the experiment report")
    report.add_argument("--scale", choices=["quick", "full"],
                        default="quick")
    report.add_argument("--output", default=None,
                        help="write the report to a file instead of stdout")

    fuzz = sub.add_parser(
        "fuzz", help="chaos campaign under invariant monitors"
    )
    fuzz.add_argument("--runs", type=int, default=50,
                      help="number of random cases to execute")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (fully determines every case)")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="directory for shrunk JSON repro artifacts")
    fuzz.add_argument("--protocols", type=_str_list, default=None,
                      help="restrict to these registry protocols")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="keep full failing scripts (skip delta-debugging)")
    fuzz.add_argument("--max-shrink-runs", type=int, default=400,
                      help="replay budget per shrink")
    fuzz.add_argument("--workers", default="1",
                      help="worker processes: a count, or 'auto' for all "
                           "cpus (the report is identical regardless)")
    fuzz.add_argument("--multiplex", type=int, default=1,
                      help="cooperative instances per interpreter loop "
                           "(forwarded to the execution engine; campaign "
                           "results are identical regardless)")
    fuzz.add_argument("--case-timeout", type=float, default=None,
                      help="per-case wall-clock budget in seconds; an "
                           "over-budget case becomes a recorded failure")
    fuzz.add_argument("--crash", action="store_true",
                      help="also sample the resilience planes: lossy "
                           "honest links (drop/delay/reorder under the "
                           "round synchronizer) and crash/restart "
                           "windows recovered by WAL replay")
    fuzz.add_argument("--partition", action="store_true",
                      help="additionally sample the partial-synchrony "
                           "axes: GST with pre-GST loss, healing and "
                           "never-healing partitions, link churn -- "
                           "executed through the supervisor's "
                           "escalation ladder")
    fuzz.add_argument("--bombs", action="store_true",
                      help="also sample the payload-bomb adversaries "
                           "(oversize blobs, deep nesting, type "
                           "confusion, near-valid mutants) with the "
                           "honest wire guards armed; an honest-party "
                           "crash on hostile input is a shrinkable "
                           "HonestPartyError failure")
    fuzz.add_argument("--allow-budgeted", action="store_true",
                      help="exit 0 when every failure is a budgeted "
                           "escalation-ladder exhaustion (still shrunk "
                           "and archived); genuine violations stay "
                           "fatal -- for soak campaigns over random "
                           "partition schedules")
    fuzz.add_argument("--backend", choices=["python", "numpy"],
                      default=None,
                      help="pin the GF/RS/Merkle kernel backend for the "
                           "campaign (workers inherit it); results are "
                           "byte-identical either way")
    fuzz.add_argument("--quiet", action="store_true",
                      help="only print the final summary")

    replay = sub.add_parser(
        "replay", help="re-execute a fuzz repro artifact"
    )
    replay.add_argument("artifact", help="path to a repro-fuzz JSON file")
    replay.add_argument("--verify-counters", action="store_true",
                        help="also diff the replay's deterministic "
                             "counter block against the one recorded in "
                             "the artifact; exit 1 on any drift")

    search = sub.add_parser(
        "search",
        help="coverage-guided adversary search with a resumable manifest",
    )
    search.add_argument("--runs", type=int, default=200,
                        help="total campaign executions (including any "
                             "already journaled when resuming)")
    search.add_argument("--seed", type=int, default=0,
                        help="campaign seed (content-determining)")
    search.add_argument("--manifest", default=None,
                        help="campaign journal path (JSON lines); "
                             "required for --resume")
    search.add_argument("--resume", action="store_true",
                        help="continue an interrupted campaign from its "
                             "manifest (byte-identical to an "
                             "uninterrupted run)")
    search.add_argument("--random", action="store_true",
                        help="uniform-random baseline instead of the "
                             "guided engine (same cells, same evaluator)")
    search.add_argument("--batch", type=int, default=8,
                        help="planning batch size (campaign identity: a "
                             "resume must use the same value)")
    search.add_argument("--protocols", type=_str_list, default=None,
                        help="restrict the cell grid to these protocols")
    search.add_argument("--no-crash-plane", action="store_true",
                        help="exclude the lossy-link/crash axes from "
                             "sampling and mutation")
    search.add_argument("--partition", action="store_true",
                        help="include the partial-synchrony axes (GST, "
                             "partitions, churn)")
    search.add_argument("--bombs", action="store_true",
                        help="include the payload-bomb adversaries in "
                             "sampling and mutation (honest wire guards "
                             "armed on bomb cases)")
    search.add_argument("--corpus-size", type=int, default=64,
                        help="novelty corpus capacity")
    search.add_argument("--seed-corpus", default=None,
                        help="directory of fuzz/ddmin repro artifacts to "
                             "pre-seed the mutation corpus from")
    search.add_argument("--artifact-dir", default=None,
                        help="archive violating cases as repro artifacts "
                             "here")
    search.add_argument("--shrink-artifacts", action="store_true",
                        help="ddmin-shrink violating cases before "
                             "archiving (slow)")
    search.add_argument("--workers", default="1",
                        help="worker processes (or 'auto'); campaign "
                             "content is identical for any value")
    search.add_argument("--case-timeout", type=float, default=None,
                        help="per-case wall-clock budget in seconds")
    search.add_argument("--stop-on-violation", action="store_true",
                        help="end the campaign at the first batch with a "
                             "genuine violation")
    search.add_argument("--bench-out", default=None,
                        help="write the BENCH_search.json outlier "
                             "document to this path")
    search.add_argument("--fail-on-violation", action="store_true",
                        help="exit 1 if the campaign found any genuine "
                             "violation")

    profile = sub.add_parser(
        "profile", help="hot-path benchmark + deterministic counter gate"
    )
    profile.add_argument("--quick", action="store_true",
                         help="CI-sized config battery (seconds, not "
                              "minutes)")
    profile.add_argument("--output", default=None,
                         help="write BENCH_hotpath.json to this path")
    profile.add_argument("--check", default=None,
                         help="diff deterministic counters against this "
                              "baseline document; exit 1 on any regression")
    profile.add_argument("--no-cprofile", action="store_true",
                         help="skip the cProfile hotspot pass")
    profile.add_argument("--top", type=int, default=15,
                         help="number of cProfile hotspots to record")
    profile.add_argument("--backend", choices=["python", "numpy"],
                         default=None,
                         help="pin the kernel backend for the battery "
                              "(default: REPRO_BACKEND or auto)")
    profile.add_argument("--no-backend-compare", action="store_true",
                         help="skip the backend A/B section (the long-ell "
                              "comparison case run on every backend)")

    return parser


def _int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def _str_list(text: str) -> list[str]:
    return [part for part in text.split(",") if part]


def _cmd_run(args) -> int:
    adversary = ADVERSARIES[args.adversary](seed=args.seed)
    if args.setting == "authenticated":
        outcome = _run_authenticated(args, adversary)
    else:
        outcome = convex_agreement(
            args.inputs, t=args.t, kappa=args.kappa, adversary=adversary
        )
    honest = [
        v for i, v in enumerate(args.inputs) if i not in outcome.corrupted
    ]
    print(f"inputs           : {args.inputs}")
    print(f"corrupted parties: {sorted(outcome.corrupted)}")
    print(f"adversary        : {adversary.describe()}")
    print(f"agreed output    : {outcome.value}")
    print(f"honest range     : [{min(honest)}, {max(honest)}]")
    print(f"honest bits sent : {outcome.stats.honest_bits:,}")
    print(f"rounds           : {outcome.stats.rounds}")
    if args.channels:
        print("\nper-channel breakdown (top 15):")
        for channel, bits, msgs in outcome.stats.channel_report()[:15]:
            print(f"  {channel:<44} {bits:>10,} bits {msgs:>7,} msgs")
    return 0


def _cmd_sweep(args) -> int:
    from .analysis.sweeps import (
        GridSpec,
        run_grid,
        save_sweep_document,
        sweep_document,
    )
    from .sim.parallel import resolve_workers

    ns = tuple(args.ns) if args.ns else (args.n,)
    spec = GridSpec(
        protocol=args.protocol,
        ns=ns,
        ells=tuple(args.ells),
        t=args.t,
        kappa=args.kappa,
        seed=args.seed,
        spread=args.spread,
    )
    workers = resolve_workers(args.workers)
    try:
        measurements, wall_s = run_grid(
            spec, workers=workers, timeout_s=args.timeout,
            multiplex=args.multiplex,
        )
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    label = (
        f"n={ns[0]}" if len(ns) == 1 else f"ns={','.join(map(str, ns))}"
    )
    print(
        format_measurements(
            measurements,
            title=f"{args.protocol}: bits vs ell ({label})",
        )
    )
    if len(ns) == 1 and len(measurements) >= 2:
        slope = marginal_slope(
            [m.ell for m in measurements], [m.bits for m in measurements]
        )
        print(f"\nmarginal cost: {slope:.1f} bits per extra input bit")
    print(f"\nwall time: {wall_s:.2f}s on {workers} worker(s)")

    serial_wall_s = None
    if args.compare_serial and workers > 1:
        serial_measurements, serial_wall_s = run_grid(
            spec, workers=1, timeout_s=args.timeout
        )
        if serial_measurements != measurements:
            print(
                "error: serial and parallel sweeps disagree -- "
                "determinism contract violated",
                file=sys.stderr,
            )
            return 1
        print(
            f"serial reference: {serial_wall_s:.2f}s "
            f"(speedup {serial_wall_s / max(wall_s, 1e-9):.2f}x, "
            "results identical)"
        )
    if args.save:
        save_measurements(args.save, measurements)
        print(f"measurements saved to {args.save}")
    if args.bench_json:
        document = sweep_document(
            spec,
            measurements,
            workers=workers,
            wall_s=wall_s,
            serial_wall_s=serial_wall_s,
        )
        path = save_sweep_document(document, args.bench_json)
        print(f"sweep document written to {path}")
    return 0


def _cmd_compare(args) -> int:
    series = comparison_series(
        args.protocols, n=args.n, ells=args.ells, seed=args.seed
    )
    for protocol in args.protocols:
        print(format_measurements(series[protocol], title=protocol))
        ms = series[protocol]
        if len(ms) >= 2:
            slope = marginal_slope(
                [m.ell for m in ms], [m.bits for m in ms]
            )
            print(f"marginal slope: {slope:.1f} bits/input-bit\n")
    print(
        f"paper's prediction: ~n={args.n}, ~n^2={args.n ** 2}, "
        f"~n^3={args.n ** 3}"
    )
    if args.chart and len(args.ells) >= 2:
        print()
        print(series_chart(series))
    if args.save:
        flat = [m for ms in series.values() for m in ms]
        save_measurements(args.save, flat)
        print(f"measurements saved to {args.save}")
    return 0


def _cmd_report(args) -> int:
    scale = QUICK if args.scale == "quick" else FULL
    text = generate_report(scale)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_fuzz(args) -> int:
    from .perf import config as perf_config
    from .sim.fuzz import fuzz

    if args.backend is not None:
        try:
            perf_config.set_backend(args.backend)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    progress = None if args.quiet else (
        lambda index, case: print(f"[{index + 1}/{args.runs}] "
                                  f"{case.describe()}")
    )
    try:
        report = fuzz(
            runs=args.runs,
            seed=args.seed,
            protocols=args.protocols,
            artifact_dir=args.artifact_dir,
            shrink=not args.no_shrink,
            max_shrink_runs=args.max_shrink_runs,
            progress=progress,
            workers=args.workers,
            case_timeout_s=args.case_timeout,
            crash=args.crash,
            partition=args.partition,
            bombs=args.bombs,
            multiplex=args.multiplex,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    if report.worker_crashes or report.case_timeouts:
        print(
            f"engine incidents: {report.worker_crashes} worker "
            f"crash(es), {report.case_timeouts} case timeout(s)"
        )
    if report.clean:
        return 0
    if args.allow_budgeted and not report.unbudgeted_failures:
        print(
            f"{len(report.failures)} budgeted ladder exhaustion(s) "
            "tolerated (--allow-budgeted)"
        )
        return 0
    return 1


def _cmd_replay(args) -> int:
    import warnings as warnings_module

    from .sim.fuzz import load_artifact, replay_artifact, replay_counters

    try:
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            artifact = load_artifact(args.artifact)
    except FileNotFoundError:
        print(f"error: no such artifact: {args.artifact}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as error:
        # truncated/corrupt JSON and stale-schema artifacts both land
        # here: path + reason, exit 2, no traceback.
        print(
            f"error: cannot load artifact {args.artifact}: {error}",
            file=sys.stderr,
        )
        return 2
    for warning in caught:
        print(f"warning  : {warning.message}")
    case = artifact["case"]
    print(f"artifact : {args.artifact}")
    print(f"case     : {case['protocol']} n={case['n']} t={case['t']} "
          f"ell={case['ell']} seed={case['seed']}")
    faults = case.get("faults", {})
    if (
        faults.get("gst") is not None
        or faults.get("partitions")
        or faults.get("link_churn")
    ):
        print(f"psync    : gst={faults.get('gst')} "
              f"partitions={len(faults.get('partitions') or ())} "
              f"churn={len(faults.get('link_churn') or ())}")
    print(f"recorded : {artifact['violation']['message']}")
    try:
        outcome = replay_artifact(artifact)
    except KeyError:
        print(f"error    : protocol {case['protocol']!r} is not in the "
              "standard registry (artifact from a custom registry?)")
        return 2
    except ReproError as error:
        print(f"error    : inconsistent artifact: {error}")
        return 2
    if outcome.violated:
        print(f"replayed : {outcome.message}")
    else:
        print("replayed : no violation")
    if not outcome.matches(artifact):
        print("verdict  : DID NOT REPRODUCE")
        return 1
    if args.verify_counters:
        recorded = artifact.get("counters")
        if recorded is None:
            print("counters : none recorded in artifact "
                  "(re-save with a current toolchain)")
            return 2
        observed = replay_counters(artifact)
        drift = {
            name: (recorded.get(name, 0), observed.get(name, 0))
            for name in sorted(set(recorded) | set(observed))
            if recorded.get(name, 0) != observed.get(name, 0)
        }
        if drift:
            print("counters : DRIFT DETECTED")
            for name, (was, now) in drift.items():
                print(f"  {name:<20} recorded {was:>12,} now {now:>12,}")
            return 1
        print(f"counters : {len(recorded)} counter(s) verified")
    print("verdict  : REPRODUCED")
    return 0


def _cmd_search(args) -> int:
    from .analysis.outliers import save_search_document
    from .sim.search import (
        SearchConfig,
        run_search,
        seed_corpus_from_artifacts,
    )

    seeds: list[dict] = []
    if args.seed_corpus:
        import glob

        paths = sorted(glob.glob(os.path.join(args.seed_corpus, "*.json")))
        try:
            seeds = seed_corpus_from_artifacts(paths)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"seed corpus: {len(seeds)} case(s) from {args.seed_corpus}")
    config = SearchConfig(
        seed=args.seed,
        guided=not args.random,
        batch=args.batch,
        protocols=args.protocols,
        crash=not args.no_crash_plane,
        partition=args.partition,
        bombs=args.bombs,
        corpus_size=args.corpus_size,
        seed_corpus=seeds,
        workers=args.workers,
        case_timeout_s=args.case_timeout,
        artifact_dir=args.artifact_dir,
        shrink_artifacts=args.shrink_artifacts,
    )
    try:
        report = run_search(
            config,
            executions=args.runs,
            manifest=args.manifest,
            resume=args.resume,
            stop_on_violation=args.stop_on_violation,
        )
    except (ValueError, FileExistsError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.bench_out:
        save_search_document(args.bench_out, report)
        print(f"outlier document: {args.bench_out}")
    if args.fail_on_violation and report.violations:
        return 1
    return 0


def _cmd_profile(args) -> int:
    from .perf import config as perf_config
    from .perf import profile as perf_profile

    try:
        document = perf_profile.hotpath_document(
            quick=args.quick,
            cprofile=not args.no_cprofile,
            top=args.top,
            backend=args.backend,
            compare_backends=not args.no_backend_compare,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    wall = document["timing"]["wall_s"]
    print(f"hot-path battery ({'quick' if args.quick else 'full'}, "
          f"backend={document['timing']['backend']}):")
    for key, entry in document["deterministic"].items():
        ops = entry["counters"]
        print(
            f"  {key:<52} {wall[key]:>8.3f}s  "
            f"{entry['bits']:>10,} bits {entry['rounds']:>6,} rounds  "
            f"sha256={ops.get('sha256', 0):,}"
        )
    hotspots = document["timing"].get("hotspots")
    if hotspots:
        print(f"\ncProfile hotspots ({hotspots['config']}):")
        for row in hotspots["top"]:
            print(
                f"  {row['cumtime_s']:>8.3f}s cum "
                f"{row['tottime_s']:>8.3f}s tot  {row['function']}"
            )
    comparison = document.get("backend_comparison")
    if comparison:
        times = "  ".join(
            f"{name}={comparison['wall_s'][name]:.3f}s"
            for name in comparison["backends"]
        )
        speedup = comparison.get("speedup_numpy_over_python")
        print(f"\nbackend comparison ({comparison['config']}): {times}"
              + (f"  speedup {speedup}x" if speedup else ""))
        if not comparison["identical"]:
            print(
                "BACKEND MISMATCH: deterministic entries differ across "
                f"backends ({comparison.get('mismatching_backends')})",
                file=sys.stderr,
            )
    if args.output:
        path = perf_profile.save_document(document, args.output)
        print(f"\nbenchmark document written to {path}")
    if args.check:
        try:
            baseline = perf_profile.load_document(args.check)
        except FileNotFoundError:
            print(f"error: no baseline at {args.check}", file=sys.stderr)
            return 2
        errors, notes = perf_profile.check_counters(document, baseline)
        for note in notes:
            print(f"note: {note}")
        for error in errors:
            print(f"REGRESSION: {error}", file=sys.stderr)
        if errors:
            return 1
        print(
            f"\ncounter gate: {len(document['deterministic'])} config(s) "
            f"match the baseline ({args.check})"
        )
    if comparison and not comparison["identical"]:
        return 1
    return 0


def _run_authenticated(args, adversary):
    from .authenticated import authenticated_ca
    from .core.api import ConvexAgreementOutcome
    from .crypto.signatures import SignatureScheme
    from .sim.runner import run_protocol

    n = len(args.inputs)
    t = args.t if args.t is not None else (n - 1) // 2
    scheme = SignatureScheme(args.kappa, n)
    execution = run_protocol(
        lambda ctx, v: authenticated_ca(ctx, v, scheme),
        args.inputs, n=n, t=t, kappa=args.kappa, adversary=adversary,
    )
    return ConvexAgreementOutcome(
        value=execution.common_output(), execution=execution
    )


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "fuzz": _cmd_fuzz,
    "replay": _cmd_replay,
    "search": _cmd_search,
    "profile": _cmd_profile,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
