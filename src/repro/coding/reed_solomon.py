"""Reed-Solomon erasure codes with parameters ``(n, k = n - t)``.

Section 7: ``RS.ENCODE(v)`` splits a value into ``n`` codewords of
``O(|BITS(v)|/n)`` bits each such that any ``n - t`` of them reconstruct
``v`` (``RS.DECODE``).  Corrupted codewords are filtered *upstream* by
Merkle witnesses, so pure erasure decoding suffices -- exactly the
structure of ``PI_lBA+``'s distributing step.

Construction (classic polynomial-evaluation RS over ``GF(2^a)``):

* the payload bytes are framed with a 4-byte length header, padded, and
  read as field symbols ``d_0 .. d_{m-1}``,
* symbols are grouped into chunks of ``k``; chunk ``c`` defines the
  polynomial ``p_c(x) = sum_j d_{ck+j} x^j`` of degree ``< k``,
* codeword ``i`` is the evaluation vector ``(p_0(x_i), p_1(x_i), ...)``
  at the distinct non-zero point ``x_i = i + 1``,
* decoding from any ``k`` codewords inverts the corresponding ``k x k``
  Vandermonde submatrix (Gauss-Jordan over GF) and recovers all chunks
  with one vectorised matrix product.

The codec object precomputes the generator matrix once per ``(n, k)``
pair; encode/decode are then numpy-bound, which keeps the very-long-input
experiments (hundreds of kilobits) fast.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import CodingError
from ..perf import config, counters
from .gf import GF65536, BinaryField

__all__ = ["ReedSolomonCode", "rs_code"]

_LENGTH_HEADER_BYTES = 4


class ReedSolomonCode:
    """An ``(n, k)`` erasure code over ``GF(2^a)`` (default ``a = 16``)."""

    def __init__(
        self, n: int, k: int, field: BinaryField = GF65536
    ) -> None:
        if not 1 <= k <= n:
            raise CodingError(f"need 1 <= k <= n, got n={n}, k={k}")
        if n >= field.order:
            raise CodingError(
                f"field GF(2^{field.degree}) supports at most "
                f"{field.order - 1} codewords, asked for {n}"
            )
        self.n = n
        self.k = k
        self.field = field
        self.symbol_bytes = field.degree // 8
        if field.degree % 8:
            raise CodingError("field degree must be a multiple of 8")
        self.points = [i + 1 for i in range(n)]
        self.generator = field.vandermonde(self.points, k)
        # Inverted Vandermonde submatrices keyed by the sorted index
        # tuple: FindPrefix-style loops decode from the same share set
        # over and over, and the inversion is a pure function of the
        # indices -- adversarial share *contents* never enter the key.
        self._decode_matrix = lru_cache(maxsize=128)(
            self._invert_submatrix
        )

    def _invert_submatrix(
        self, indices: tuple[int, ...]
    ) -> list[list[int]]:
        counters.bump("gf_matrix_invert")
        return self.field.invert_matrix(
            [self.generator[i] for i in indices]
        )

    # -- byte <-> symbol plumbing -----------------------------------------
    def _frame(self, data: bytes) -> np.ndarray:
        """Length-frame, pad, and read ``data`` as a (k, chunks) array."""
        framed = len(data).to_bytes(_LENGTH_HEADER_BYTES, "big") + data
        stride = self.symbol_bytes * self.k
        padding = (-len(framed)) % stride
        framed += b"\x00" * padding
        dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
        symbols = np.frombuffer(framed, dtype=dtype).astype(np.int64)
        return symbols.reshape(-1, self.k).T  # (k, chunks)

    def _unframe(self, symbols: np.ndarray) -> bytes:
        """Inverse of :meth:`_frame`; raises :class:`CodingError` on junk."""
        dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
        flat = symbols.T.reshape(-1).astype(dtype)
        framed = flat.tobytes()
        if len(framed) < _LENGTH_HEADER_BYTES:
            raise CodingError("decoded payload shorter than length header")
        length = int.from_bytes(framed[:_LENGTH_HEADER_BYTES], "big")
        body = framed[_LENGTH_HEADER_BYTES:]
        if length > len(body):
            raise CodingError(
                f"framed length {length} exceeds decoded payload {len(body)}"
            )
        if any(body[length:]):
            raise CodingError("non-zero padding in decoded payload")
        return body[:length]

    # -- public API ---------------------------------------------------------
    def encode(self, data: bytes) -> list[bytes]:
        """``RS.ENCODE``: return the ``n`` codewords of ``data``."""
        counters.bump("rs_encode")
        chunks = self._frame(data)                      # (k, c)
        evaluations = self.field.matmul(self.generator, chunks)  # (n, c)
        dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
        return [
            evaluations[i].astype(dtype).tobytes() for i in range(self.n)
        ]

    def share_length(self, data_len: int) -> int:
        """Byte length every codeword of a ``data_len``-byte value has."""
        framed = data_len + _LENGTH_HEADER_BYTES
        stride = self.symbol_bytes * self.k
        chunks = (framed + stride - 1) // stride
        return chunks * self.symbol_bytes

    def decode(self, shares: dict[int, bytes]) -> bytes:
        """``RS.DECODE``: reconstruct from >= k erasure-free codewords.

        ``shares`` maps codeword index -> codeword bytes.  Exactly the
        first ``k`` indices (sorted) are used.  Raises
        :class:`~repro.errors.CodingError` for malformed share sets.
        """
        counters.bump("rs_decode")
        if len(shares) < self.k:
            raise CodingError(
                f"need at least k={self.k} shares, got {len(shares)}"
            )
        indices = tuple(sorted(shares)[: self.k])
        if any(not 0 <= i < self.n for i in indices):
            raise CodingError(f"share index out of range in {indices}")
        lengths = {len(shares[i]) for i in indices}
        if len(lengths) != 1:
            raise CodingError(f"inconsistent share lengths {sorted(lengths)}")
        (length,) = lengths
        if length == 0 or length % self.symbol_bytes:
            raise CodingError(f"share length {length} not a symbol multiple")

        dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
        # Fill the (k, c) symbol matrix row by row, upcasting straight
        # into the preallocated array -- no per-share list, no stack copy.
        received = np.empty(
            (self.k, length // self.symbol_bytes), dtype=np.int64
        )
        for row, i in enumerate(indices):
            received[row] = np.frombuffer(shares[i], dtype=dtype)
        if config.caches_enabled():
            decode_matrix = self._decode_matrix(indices)
        else:
            decode_matrix = self._invert_submatrix(indices)
        chunks = self.field.matmul(decode_matrix, received)  # (k, c)
        return self._unframe(chunks)


@lru_cache(maxsize=64)
def rs_code(n: int, k: int) -> ReedSolomonCode:
    """Cached ``(n, k)`` codec over the production field ``GF(2^16)``."""
    return ReedSolomonCode(n, k)
