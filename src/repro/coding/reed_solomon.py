"""Reed-Solomon erasure codes with parameters ``(n, k = n - t)``.

Section 7: ``RS.ENCODE(v)`` splits a value into ``n`` codewords of
``O(|BITS(v)|/n)`` bits each such that any ``n - t`` of them reconstruct
``v`` (``RS.DECODE``).  Corrupted codewords are filtered *upstream* by
Merkle witnesses, so pure erasure decoding suffices -- exactly the
structure of ``PI_lBA+``'s distributing step.

Construction (classic polynomial-evaluation RS over ``GF(2^a)``):

* the payload bytes are framed with a 4-byte length header, padded, and
  read as field symbols ``d_0 .. d_{m-1}``,
* symbols are grouped into chunks of ``k``; chunk ``c`` defines the
  polynomial ``p_c(x) = sum_j d_{ck+j} x^j`` of degree ``< k``,
* codeword ``i`` is the evaluation vector ``(p_0(x_i), p_1(x_i), ...)``
  at the distinct non-zero point ``x_i = i + 1``,
* decoding from any ``k`` codewords inverts the corresponding ``k x k``
  Vandermonde submatrix (Gauss-Jordan over GF) and recovers all chunks
  with one matrix product.

The codec precomputes the generator matrix once per ``(n, k)`` pair.
The symbol plumbing and the Vandermonde application come in two
byte-identical kernels selected by :func:`repro.perf.config.backend`:
the ``"numpy"`` backend frames via ``frombuffer``/``reshape`` and
evaluates with batched exp/log gathers (keeping the very-long-input
experiments at hundreds of kilobits fast), the ``"python"`` backend is
the dependency-free ``struct``-based scalar reference.

Inverted decode submatrices are memoized **process-wide**, keyed by the
full code parameters ``(field degree, field modulus, n, k, indices)``
-- never by the index tuple alone, because distinct codes routinely
decode from identical index tuples (the regression suite pins this).
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from functools import lru_cache

try:  # numpy is an optional extra; the python backend needs none of it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised in no-numpy installs
    np = None  # type: ignore[assignment]

from ..errors import CodingError
from ..perf import config, counters
from .gf import GF65536, BinaryField

__all__ = ["ReedSolomonCode", "rs_code", "clear_decode_matrix_cache"]

_LENGTH_HEADER_BYTES = 4

#: Process-wide inverted-Vandermonde memo.  FindPrefix-style loops
#: decode from the same share set over and over, and the inversion is a
#: pure function of the code parameters and the indices -- adversarial
#: share *contents* never enter the key.  Keyed on the full
#: ``(degree, modulus, n, k, indices)`` tuple: two codes with different
#: parameters (or fields) frequently share index tuples and must never
#: share inverses.
#:
#: Bounded LRU: a hit refreshes its entry, an insert at capacity evicts
#: the least recently used one, so long multi-code soaks (fuzz
#: campaigns rotating through many ``(n, k)`` shapes) keep their hot
#: working set instead of the old clear-everything overflow behaviour.
_DECODE_MATRIX_CACHE: OrderedDict[tuple, list[list[int]]] = OrderedDict()


def _cache_cap() -> int:
    """The cache capacity: ``REPRO_DECODE_MATRIX_CACHE_MAX`` or 512.

    Read once at import (the simulator's hot loop should not pay a
    ``getenv`` per decode); a non-positive or unparsable setting
    disables memoization entirely, which is the memory-floor escape
    hatch for embedded runs.
    """
    raw = os.environ.get("REPRO_DECODE_MATRIX_CACHE_MAX")
    if raw is None:
        return 512
    try:
        return int(raw)
    except ValueError:
        return 0


_DECODE_MATRIX_CACHE_MAX = _cache_cap()


def clear_decode_matrix_cache() -> None:
    """Drop every memoized decode matrix (profiling cold-start hook)."""
    _DECODE_MATRIX_CACHE.clear()


class ReedSolomonCode:
    """An ``(n, k)`` erasure code over ``GF(2^a)`` (default ``a = 16``)."""

    def __init__(
        self, n: int, k: int, field: BinaryField = GF65536
    ) -> None:
        if not 1 <= k <= n:
            raise CodingError(f"need 1 <= k <= n, got n={n}, k={k}")
        if n >= field.order:
            raise CodingError(
                f"field GF(2^{field.degree}) supports at most "
                f"{field.order - 1} codewords, asked for {n}"
            )
        self.n = n
        self.k = k
        self.field = field
        self.symbol_bytes = field.degree // 8
        if field.degree % 8:
            raise CodingError("field degree must be a multiple of 8")
        self.points = [i + 1 for i in range(n)]
        self.generator = field.vandermonde(self.points, k)

    def _invert_submatrix(
        self, indices: tuple[int, ...]
    ) -> list[list[int]]:
        counters.bump("gf_matrix_invert")
        return self.field.invert_matrix(
            [self.generator[i] for i in indices]
        )

    def _decode_matrix(self, indices: tuple[int, ...]) -> list[list[int]]:
        """The cached inverse for this code's share-index tuple."""
        key = (
            self.field.degree,
            self.field.modulus,
            self.n,
            self.k,
            indices,
        )
        cap = _DECODE_MATRIX_CACHE_MAX
        if cap <= 0:
            return self._invert_submatrix(indices)
        hit = _DECODE_MATRIX_CACHE.get(key)
        if hit is None:
            hit = self._invert_submatrix(indices)
            if len(_DECODE_MATRIX_CACHE) >= cap:
                _DECODE_MATRIX_CACHE.popitem(last=False)
            _DECODE_MATRIX_CACHE[key] = hit
        else:
            _DECODE_MATRIX_CACHE.move_to_end(key)
        return hit

    # -- byte <-> symbol plumbing -----------------------------------------
    def _framed(self, data: bytes) -> bytes:
        """Length-frame and pad ``data`` to a whole number of chunks."""
        framed = len(data).to_bytes(_LENGTH_HEADER_BYTES, "big") + data
        stride = self.symbol_bytes * self.k
        padding = (-len(framed)) % stride
        return framed + b"\x00" * padding

    def _frame_numpy(self, data: bytes):
        """Read the framed payload as a ``(k, chunks)`` int64 array."""
        dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
        symbols = np.frombuffer(self._framed(data), dtype=dtype)
        return symbols.astype(np.int64).reshape(-1, self.k).T

    def _frame_python(self, data: bytes) -> list[list[int]]:
        """Read the framed payload as ``k`` rows of chunk symbols."""
        framed = self._framed(data)
        if self.symbol_bytes == 2:
            symbols = struct.unpack(f">{len(framed) // 2}H", framed)
        else:
            symbols = framed  # bytes already iterate as ints
        # Row j of reshape(-1, k).T is every k-th symbol starting at j.
        return [list(symbols[j::self.k]) for j in range(self.k)]

    def _unframe_bytes(self, framed: bytes) -> bytes:
        """Strip framing; raises :class:`CodingError` on junk."""
        if len(framed) < _LENGTH_HEADER_BYTES:
            raise CodingError("decoded payload shorter than length header")
        length = int.from_bytes(framed[:_LENGTH_HEADER_BYTES], "big")
        body = framed[_LENGTH_HEADER_BYTES:]
        if length > len(body):
            raise CodingError(
                f"framed length {length} exceeds decoded payload {len(body)}"
            )
        if any(body[length:]):
            raise CodingError("non-zero padding in decoded payload")
        return body[:length]

    def _symbols_to_bytes(self, row) -> bytes:
        """One codeword row (chunk symbols) back to wire bytes."""
        if np is not None and isinstance(row, np.ndarray):
            dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
            return row.astype(dtype).tobytes()
        if self.symbol_bytes == 2:
            return struct.pack(f">{len(row)}H", *row)
        return bytes(row)

    # -- public API ---------------------------------------------------------
    def encode(self, data: bytes) -> list[bytes]:
        """``RS.ENCODE``: return the ``n`` codewords of ``data``."""
        counters.bump("rs_encode")
        if config.backend() == "numpy":
            chunks = self._frame_numpy(data)                 # (k, c)
        else:
            chunks = self._frame_python(data)
        evaluations = self.field.matmul(self.generator, chunks)  # (n, c)
        return [
            self._symbols_to_bytes(evaluations[i]) for i in range(self.n)
        ]

    def share_length(self, data_len: int) -> int:
        """Byte length every codeword of a ``data_len``-byte value has."""
        framed = data_len + _LENGTH_HEADER_BYTES
        stride = self.symbol_bytes * self.k
        chunks = (framed + stride - 1) // stride
        return chunks * self.symbol_bytes

    def decode(self, shares: dict[int, bytes]) -> bytes:
        """``RS.DECODE``: reconstruct from >= k erasure-free codewords.

        ``shares`` maps codeword index -> codeword bytes.  Exactly the
        first ``k`` indices (sorted) are used.  Raises
        :class:`~repro.errors.CodingError` for malformed share sets.
        """
        counters.bump("rs_decode")
        if len(shares) < self.k:
            raise CodingError(
                f"need at least k={self.k} shares, got {len(shares)}"
            )
        indices = tuple(sorted(shares)[: self.k])
        if any(not 0 <= i < self.n for i in indices):
            raise CodingError(f"share index out of range in {indices}")
        lengths = {len(shares[i]) for i in indices}
        if len(lengths) != 1:
            raise CodingError(f"inconsistent share lengths {sorted(lengths)}")
        (length,) = lengths
        if length == 0 or length % self.symbol_bytes:
            raise CodingError(f"share length {length} not a symbol multiple")

        if config.caches_enabled():
            decode_matrix = self._decode_matrix(indices)
        else:
            decode_matrix = self._invert_submatrix(indices)

        if config.backend() == "numpy":
            dtype = ">u2" if self.symbol_bytes == 2 else ">u1"
            # Fill the (k, c) symbol matrix row by row, upcasting
            # straight into the preallocated array -- no per-share
            # list, no stack copy.
            received = np.empty(
                (self.k, length // self.symbol_bytes), dtype=np.int64
            )
            for row, i in enumerate(indices):
                received[row] = np.frombuffer(shares[i], dtype=dtype)
            chunks = self.field.matmul(decode_matrix, received)  # (k, c)
            flat = chunks.T.reshape(-1).astype(dtype)
            return self._unframe_bytes(flat.tobytes())

        if self.symbol_bytes == 2:
            received = [
                list(struct.unpack(f">{length // 2}H", shares[i]))
                for i in indices
            ]
        else:
            received = [list(shares[i]) for i in indices]
        chunks = self.field.matmul(decode_matrix, received)  # (k, c)
        cols = len(chunks[0]) if chunks else 0
        flat = [chunks[j][c] for c in range(cols) for j in range(self.k)]
        return self._unframe_bytes(self._symbols_to_bytes(flat))


@lru_cache(maxsize=64)
def rs_code(n: int, k: int) -> ReedSolomonCode:
    """Cached ``(n, k)`` codec over the production field ``GF(2^16)``."""
    return ReedSolomonCode(n, k)
