"""Binary Galois field arithmetic ``GF(2^a)``.

Section 7 of the paper requires Reed-Solomon codewords to be elements of
a Galois field ``GF(2^a)`` with ``n <= 2^a - 1``.  We provide a generic
:class:`BinaryField` with log/antilog tables plus numpy-vectorised bulk
operations (the long-message benchmarks encode hundreds of kilobits, so
the per-symbol hot path must be array-based, not per-element Python).

Two standard instantiations are exported:

* :data:`GF256` -- ``GF(2^8)``, used in unit tests (small, fast tables),
* :data:`GF65536` -- ``GF(2^16)``, the production field (supports up to
  65535 parties, far beyond any simulated ``n``).
"""

from __future__ import annotations

import numpy as np

from ..perf import counters

__all__ = ["BinaryField", "GF256", "GF65536"]


class BinaryField:
    """``GF(2^degree)`` with the given irreducible modulus polynomial."""

    def __init__(self, degree: int, modulus: int) -> None:
        if not 1 <= degree <= 16:
            raise ValueError(f"unsupported field degree {degree}")
        self.degree = degree
        self.modulus = modulus
        self.order = 1 << degree          # field size q
        self.mul_group_order = self.order - 1

        # exp table doubled so exp[log a + log b] never needs a modulo.
        exp = np.zeros(2 * self.mul_group_order, dtype=np.int64)
        log = np.zeros(self.order, dtype=np.int64)
        x = 1
        for i in range(self.mul_group_order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= modulus
            if x == 1 and i < self.mul_group_order - 1:
                raise ValueError(
                    f"0x{modulus:X} is not primitive for degree {degree}"
                )
        if x != 1:
            raise ValueError(
                f"0x{modulus:X} is not primitive for degree {degree}"
            )
        exp[self.mul_group_order:] = exp[: self.mul_group_order]
        self._exp = exp
        self._log = log

    # -- scalar ops -------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Addition = subtraction = XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """GF product of two field elements."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on 0."""
        if a == 0:
            raise ZeroDivisionError("no inverse of 0 in a field")
        return int(self._exp[self.mul_group_order - self._log[a]])

    def div(self, a: int, b: int) -> int:
        """GF quotient ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        """GF exponentiation via the log table."""
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        idx = (self._log[a] * exponent) % self.mul_group_order
        return int(self._exp[idx])

    # -- vectorised ops ---------------------------------------------------
    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise GF product of two broadcastable int arrays."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        zero = (a == 0) | (b == 0)
        # 0 has no discrete log: look up on a zero-safe copy (log 1 = 0)
        # so no out-of-domain table access happens, then mask.
        safe_a = np.where(a == 0, 1, a)
        safe_b = np.where(b == 0, 1, b)
        result = self._exp[self._log[safe_a] + self._log[safe_b]]
        return np.where(zero, 0, result)

    def scalar_mul_vec(self, scalar: int, vec: np.ndarray) -> np.ndarray:
        """GF product of one scalar with an int array."""
        if scalar == 0:
            return np.zeros_like(np.asarray(vec, dtype=np.int64))
        vec = np.asarray(vec, dtype=np.int64)
        zero = vec == 0
        safe = np.where(zero, 1, vec)
        result = self._exp[self._log[scalar] + self._log[safe]]
        return np.where(zero, 0, result)

    def matmul(self, matrix: list[list[int]], data: np.ndarray) -> np.ndarray:
        """GF matrix product ``matrix (r x k) @ data (k x c) -> (r x c)``.

        ``k`` is small (<= n parties), so the row loop stays Python while
        everything over the chunk dimension ``c`` (message length / k) is
        vectorised.  The discrete logs of ``data`` are looked up *once*
        per call (not once per matrix coefficient); each output row is
        then one fused exp-table gather plus an XOR reduction.
        """
        counters.bump("gf_matmul")
        data = np.asarray(data, dtype=np.int64)
        rows = len(matrix)
        cols = data.shape[1]
        out = np.zeros((rows, cols), dtype=np.int64)
        if not rows or not cols:
            return out
        mat = np.asarray(matrix, dtype=np.int64)
        data_zero = data == 0
        log_data = self._log[np.where(data_zero, 1, data)]
        for r in range(rows):
            row = mat[r]
            nonzero = np.flatnonzero(row)
            if nonzero.size == 0:
                continue
            products = self._exp[
                self._log[row[nonzero, None]] + log_data[nonzero]
            ]
            products[data_zero[nonzero]] = 0
            out[r] = np.bitwise_xor.reduce(products, axis=0)
        return out

    # -- linear algebra -----------------------------------------------------
    def invert_matrix(self, matrix: list[list[int]]) -> list[list[int]]:
        """Invert a square GF matrix by Gauss-Jordan elimination."""
        size = len(matrix)
        work = [list(row) for row in matrix]
        if any(len(row) != size for row in work):
            raise ValueError("matrix must be square")
        inverse = [
            [1 if r == c else 0 for c in range(size)] for r in range(size)
        ]
        for col in range(size):
            pivot_row = next(
                (r for r in range(col, size) if work[r][col]), None
            )
            if pivot_row is None:
                raise ValueError("matrix is singular over GF")
            work[col], work[pivot_row] = work[pivot_row], work[col]
            inverse[col], inverse[pivot_row] = (
                inverse[pivot_row],
                inverse[col],
            )
            pivot_inv = self.inv(work[col][col])
            work[col] = [self.mul(pivot_inv, x) for x in work[col]]
            inverse[col] = [self.mul(pivot_inv, x) for x in inverse[col]]
            for r in range(size):
                if r == col or not work[r][col]:
                    continue
                factor = work[r][col]
                work[r] = [
                    x ^ self.mul(factor, y)
                    for x, y in zip(work[r], work[col])
                ]
                inverse[r] = [
                    x ^ self.mul(factor, y)
                    for x, y in zip(inverse[r], inverse[col])
                ]
        return inverse

    def vandermonde(self, points: list[int], width: int) -> list[list[int]]:
        """Rows ``[x^0, x^1, ..., x^{width-1}]`` for each evaluation point."""
        return [
            [self.pow(x, j) for j in range(width)] for x in points
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinaryField(GF(2^{self.degree}))"


GF256 = BinaryField(8, 0x11D)
GF65536 = BinaryField(16, 0x1100B)
