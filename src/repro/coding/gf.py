"""Binary Galois field arithmetic ``GF(2^a)``.

Section 7 of the paper requires Reed-Solomon codewords to be elements of
a Galois field ``GF(2^a)`` with ``n <= 2^a - 1``.  We provide a generic
:class:`BinaryField` with log/antilog tables whose bulk operations come
in two byte-identical kernel implementations, selected at runtime by
:func:`repro.perf.config.backend`:

* ``"python"`` -- pure-python scalar reference: per-element log/exp
  table lookups over plain lists.  No third-party dependencies.
* ``"numpy"`` -- table-batched: one fused log-gather + exp-gather + XOR
  reduction over contiguous ``int64`` arrays (the long-message
  benchmarks encode hundreds of kilobits, so the per-symbol hot path
  must be array-based, not per-element Python).

Both kernels are exact GF arithmetic over the same tables, so outputs
are bit-identical by construction; ``tests/test_backend_conformance.py``
proves it differentially across the whole protocol stack.

Two standard instantiations are exported:

* :data:`GF256` -- ``GF(2^8)``, used in unit tests (small, fast tables),
* :data:`GF65536` -- ``GF(2^16)``, the production field (supports up to
  65535 parties, far beyond any simulated ``n``).
"""

from __future__ import annotations

from typing import Sequence

try:  # numpy is an optional extra; the python backend needs none of it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised in no-numpy installs
    np = None  # type: ignore[assignment]

from ..perf import config, counters

__all__ = ["BinaryField", "GF256", "GF65536"]


def _as_rows(data) -> list[list[int]]:
    """Normalise matrix-shaped input to a list of int lists."""
    if np is not None and isinstance(data, np.ndarray):
        return data.tolist()
    return [list(row) for row in data]


def _as_flat(vec) -> list[int]:
    """Normalise vector-shaped input to a list of ints."""
    if np is not None and isinstance(vec, np.ndarray):
        return vec.tolist()
    return list(vec)


class BinaryField:
    """``GF(2^degree)`` with the given irreducible modulus polynomial."""

    def __init__(self, degree: int, modulus: int) -> None:
        if not 1 <= degree <= 16:
            raise ValueError(f"unsupported field degree {degree}")
        self.degree = degree
        self.modulus = modulus
        self.order = 1 << degree          # field size q
        self.mul_group_order = self.order - 1

        # exp table doubled so exp[log a + log b] never needs a modulo.
        # Built as plain lists (the python backend's native format and
        # the fastest container for the scalar ops); the numpy views are
        # materialised lazily on first batched-kernel use.
        exp = [0] * (2 * self.mul_group_order)
        log = [0] * self.order
        x = 1
        for i in range(self.mul_group_order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= modulus
            if x == 1 and i < self.mul_group_order - 1:
                raise ValueError(
                    f"0x{modulus:X} is not primitive for degree {degree}"
                )
        if x != 1:
            raise ValueError(
                f"0x{modulus:X} is not primitive for degree {degree}"
            )
        exp[self.mul_group_order:] = exp[: self.mul_group_order]
        self._exp_list = exp
        self._log_list = log
        self._exp = None  # numpy views, built on demand
        self._log = None

    def _numpy_tables(self):
        """The exp/log tables as ``int64`` arrays (numpy backend only)."""
        if self._exp is None:
            self._exp = np.array(self._exp_list, dtype=np.int64)
            self._log = np.array(self._log_list, dtype=np.int64)
        return self._exp, self._log

    # -- scalar ops -------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Addition = subtraction = XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """GF product of two field elements."""
        if a == 0 or b == 0:
            return 0
        return self._exp_list[self._log_list[a] + self._log_list[b]]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on 0."""
        if a == 0:
            raise ZeroDivisionError("no inverse of 0 in a field")
        return self._exp_list[self.mul_group_order - self._log_list[a]]

    def div(self, a: int, b: int) -> int:
        """GF quotient ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        """GF exponentiation via the log table."""
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        idx = (self._log_list[a] * exponent) % self.mul_group_order
        return self._exp_list[idx]

    # -- vectorised ops ---------------------------------------------------
    def mul_vec(self, a, b):
        """Element-wise GF product of two same-length int sequences.

        Returns an ``int64`` array on the numpy backend, a list on the
        python backend; the element values are identical either way.
        """
        if config.backend() == "numpy":
            return self._mul_vec_numpy(a, b)
        return [self.mul(x, y) for x, y in zip(_as_flat(a), _as_flat(b))]

    def _mul_vec_numpy(self, a, b):
        exp, log = self._numpy_tables()
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        zero = (a == 0) | (b == 0)
        # 0 has no discrete log: look up on a zero-safe copy (log 1 = 0)
        # so no out-of-domain table access happens, then mask.
        safe_a = np.where(a == 0, 1, a)
        safe_b = np.where(b == 0, 1, b)
        result = exp[log[safe_a] + log[safe_b]]
        return np.where(zero, 0, result)

    def scalar_mul_vec(self, scalar: int, vec):
        """GF product of one scalar with an int sequence."""
        if config.backend() == "numpy":
            return self._scalar_mul_vec_numpy(scalar, vec)
        return [self.mul(scalar, x) for x in _as_flat(vec)]

    def _scalar_mul_vec_numpy(self, scalar: int, vec):
        exp, log = self._numpy_tables()
        if scalar == 0:
            return np.zeros_like(np.asarray(vec, dtype=np.int64))
        vec = np.asarray(vec, dtype=np.int64)
        zero = vec == 0
        safe = np.where(zero, 1, vec)
        result = exp[log[scalar] + log[safe]]
        return np.where(zero, 0, result)

    def matmul(self, matrix: Sequence[Sequence[int]], data):
        """GF matrix product ``matrix (r x k) @ data (k x c) -> (r x c)``.

        The single entry point both backends share, so the
        ``gf_matmul`` counter is bumped identically no matter which
        kernel runs.  ``k`` is small (<= n parties); everything over the
        chunk dimension ``c`` (message length / k) is the hot axis.
        """
        counters.bump("gf_matmul")
        if config.backend() == "numpy":
            return self._matmul_numpy(matrix, data)
        return self._matmul_python(matrix, data)

    def _matmul_python(self, matrix, data) -> list[list[int]]:
        """Scalar reference kernel: the textbook triple loop.

        Deliberately written element by element through the public
        :meth:`mul`/:meth:`add` scalar API -- this kernel is the
        conformance *oracle* the batched backend is differentially
        tested against, so it favours line-by-line obviousness over
        throughput.
        """
        rows = _as_rows(matrix)
        data = _as_rows(data)
        cols = len(data[0]) if data else 0
        out = []
        for row in rows:
            acc = [0] * cols
            for coeff, src in zip(row, data):
                if not coeff:
                    continue
                for j in range(cols):
                    acc[j] = self.add(acc[j], self.mul(coeff, src[j]))
            out.append(acc)
        return out

    #: cube-size ceiling (elements) below which the fully-vectorized 3D
    #: kernel runs; above it the per-row loop keeps peak memory at one
    #: row's working set.  2^22 int64 elements = 32 MiB of products.
    _MATMUL_CUBE_LIMIT = 1 << 22

    def _matmul_numpy(self, matrix, data):
        """Table-batched kernel: the discrete logs of ``data`` are
        looked up *once* per call (not once per matrix coefficient).

        Small products run as one fused 3D gather --
        ``exp[log_mat[:, :, None] + log_data[None, :, :]]`` XOR-reduced
        over the shared ``k`` axis -- which removes the per-output-row
        python loop entirely (the dominant call shape is many tiny
        ``(n x k) @ (k x c)`` products per execution).  Oversized
        products fall back to the per-row loop, bounding peak memory;
        both shapes are byte-identical to the scalar oracle.
        """
        exp, log = self._numpy_tables()
        data = np.asarray(data, dtype=np.int64)
        rows = len(matrix)
        cols = data.shape[1]
        out = np.zeros((rows, cols), dtype=np.int64)
        if not rows or not cols:
            return out
        mat = np.asarray(matrix, dtype=np.int64)
        data_zero = data == 0
        log_data = log[np.where(data_zero, 1, data)]
        if rows * data.shape[0] * cols <= self._MATMUL_CUBE_LIMIT:
            mat_zero = mat == 0
            log_mat = log[np.where(mat_zero, 1, mat)]
            products = exp[log_mat[:, :, None] + log_data[None, :, :]]
            products[mat_zero[:, :, None] | data_zero[None, :, :]] = 0
            np.bitwise_xor.reduce(products, axis=1, out=out)
            return out
        for r in range(rows):
            row = mat[r]
            nonzero = np.flatnonzero(row)
            if nonzero.size == 0:
                continue
            products = exp[
                log[row[nonzero, None]] + log_data[nonzero]
            ]
            products[data_zero[nonzero]] = 0
            out[r] = np.bitwise_xor.reduce(products, axis=0)
        return out

    # -- linear algebra -----------------------------------------------------
    def invert_matrix(self, matrix: list[list[int]]) -> list[list[int]]:
        """Invert a square GF matrix by Gauss-Jordan elimination."""
        size = len(matrix)
        work = [list(row) for row in matrix]
        if any(len(row) != size for row in work):
            raise ValueError("matrix must be square")
        inverse = [
            [1 if r == c else 0 for c in range(size)] for r in range(size)
        ]
        for col in range(size):
            pivot_row = next(
                (r for r in range(col, size) if work[r][col]), None
            )
            if pivot_row is None:
                raise ValueError("matrix is singular over GF")
            work[col], work[pivot_row] = work[pivot_row], work[col]
            inverse[col], inverse[pivot_row] = (
                inverse[pivot_row],
                inverse[col],
            )
            pivot_inv = self.inv(work[col][col])
            work[col] = [self.mul(pivot_inv, x) for x in work[col]]
            inverse[col] = [self.mul(pivot_inv, x) for x in inverse[col]]
            for r in range(size):
                if r == col or not work[r][col]:
                    continue
                factor = work[r][col]
                work[r] = [
                    x ^ self.mul(factor, y)
                    for x, y in zip(work[r], work[col])
                ]
                inverse[r] = [
                    x ^ self.mul(factor, y)
                    for x, y in zip(inverse[r], inverse[col])
                ]
        return inverse

    def vandermonde(self, points: list[int], width: int) -> list[list[int]]:
        """Rows ``[x^0, x^1, ..., x^{width-1}]`` for each evaluation point."""
        return [
            [self.pow(x, j) for j in range(width)] for x in points
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinaryField(GF(2^{self.degree}))"


GF256 = BinaryField(8, 0x11D)
GF65536 = BinaryField(16, 0x1100B)
