"""Coding substrate: Galois fields and Reed-Solomon erasure codes."""

from .gf import GF256, GF65536, BinaryField
from .reed_solomon import ReedSolomonCode, rs_code

__all__ = [
    "BinaryField",
    "GF256",
    "GF65536",
    "ReedSolomonCode",
    "rs_code",
]
