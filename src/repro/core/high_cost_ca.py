"""``HighCostCA`` (Appendix A.4): king-based CA with ``O(l n^3)`` bits.

The paper adapts the Median Validity protocol of Stolz and Wattenhofer
[47] (itself a variant of the Berman-Garay-Perry king protocol [7]) into
a CA protocol used in three places:

* ``AddLastBlock`` runs it once on single blocks of ``l / n^2`` bits,
* ``PI_N`` runs it on block-size estimates (``O(log l)``-bit values),
* it doubles as the ``O(l n^3)`` / ``O(n)``-round existing-protocol
  baseline in the comparison benchmarks.

Structure (all on values in N; anything else is ignored, as the paper
prescribes -- "honest parties may ignore any values outside N"):

* **Setup stage**: exchange inputs; with ``n - t + k`` values received,
  the interval between the (k+1)-th lowest and (k+1)-th highest received
  values is trusted -- it always sits inside the honest inputs' range
  (Lemma 10).  Exchange intervals and pick a ``SUGGESTION`` covered by
  ``n - t`` received intervals (exists by Helly's theorem in 1D,
  Corollary 4).
* **Search stage**: ``t + 1`` king phases.  A phase with an honest king
  establishes agreement (Lemma 14) and agreement persists (Lemma 13);
  every value an honest party ever adopts stays inside some honest
  trusted interval (Lemma 11), giving Convex Validity.
"""

from __future__ import annotations

from typing import Any

from ..sim.party import Context, Proto, broadcast_round, exchange

__all__ = ["high_cost_ca"]

_PROPOSE = "PROP"
_VOTE = "VOTE"


def _is_nat(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _count_nat_values(inbox: dict[int, Any]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for value in inbox.values():
        if _is_nat(value):
            counts[value] = counts.get(value, 0) + 1
    return counts


def _count_tagged(inbox: dict[int, Any], tag: str) -> dict[int, int]:
    counts: dict[int, int] = {}
    for message in inbox.values():
        if (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == tag
            and _is_nat(message[1])
        ):
            counts[message[1]] = counts.get(message[1], 0) + 1
    return counts


def _best(counts: dict[int, int]) -> tuple[int | None, int]:
    """Value with the highest count (deterministic tie-break), and count."""
    if not counts:
        return None, 0
    value = max(counts, key=lambda v: (counts[v], -v))
    return value, counts[value]


def high_cost_ca(
    ctx: Context,
    v_in: int,
    channel: str = "hc",
) -> Proto[int]:
    """Run ``HighCostCA`` on a natural-number input; returns the output.

    Guarantees (Theorem 3, ``t < n/3``): Termination in ``O(n)`` rounds,
    Agreement, Convex Validity.  Communication ``O(l n^3)`` bits.
    """
    ctx.require_resilience(3)
    if not _is_nat(v_in):
        raise ValueError(f"HighCostCA input must be in N, got {v_in!r}")

    # ---- Setup stage -------------------------------------------------
    inbox = yield from broadcast_round(ctx, f"{channel}/input", v_in)
    values = sorted(v for v in inbox.values() if _is_nat(v))
    # n - t honest values always arrive; k counts the byzantine extras.
    k = max(0, len(values) - ctx.quorum)
    interval_min = values[k]
    interval_max = values[-(k + 1)]

    inbox = yield from broadcast_round(
        ctx, f"{channel}/interval", (interval_min, interval_max)
    )
    intervals = [
        (msg[0], msg[1])
        for msg in inbox.values()
        if isinstance(msg, tuple)
        and len(msg) == 2
        and _is_nat(msg[0])
        and _is_nat(msg[1])
        and msg[0] <= msg[1]
    ]
    # SUGGESTION: the smallest endpoint covered by n - t intervals.  The
    # n - t honest intervals pairwise intersect (each contains the
    # (t+1)-th lowest honest input), so max-of-los is covered by all of
    # them and a valid candidate always exists among the lo endpoints.
    suggestion = None
    for candidate in sorted({lo for lo, _ in intervals}):
        coverage = sum(1 for lo, hi in intervals if lo <= candidate <= hi)
        if coverage >= ctx.quorum:
            suggestion = candidate
            break
    if suggestion is None:
        # Unreachable when t < n/3; keep the party deterministic anyway.
        suggestion = interval_min
    current = suggestion

    # ---- Search stage: t + 1 king phases ------------------------------
    for phase in range(ctx.t + 1):
        king = phase
        tag = f"{channel}/p{phase}"

        # Line 10: exchange CURRENT.
        inbox = yield from broadcast_round(ctx, f"{tag}/cur", current)
        value_counts = _count_nat_values(inbox)
        quorum_value, quorum_count = _best(value_counts)

        # Line 11: propose a value seen from n - t parties (unique:
        # 2(n - t) > n).
        if quorum_count >= ctx.quorum:
            message: Any = (_PROPOSE, quorum_value)
            outgoing = {dest: message for dest in ctx.all_parties}
        else:
            outgoing = {}
        inbox = yield from exchange(f"{tag}/prop", outgoing)
        proposal_counts = _count_tagged(inbox, _PROPOSE)
        proposed, proposal_count = _best(proposal_counts)
        strong_proposal = proposal_count >= ctx.quorum

        # Line 12: adopt a value proposed by t + 1 parties (unique by
        # Lemma 12: all honest proposals of a phase name one value).
        if proposal_count >= ctx.t + 1:
            current = proposed

        # Lines 13-16: the king arbitrates.
        if ctx.party_id == king:
            if proposal_count >= ctx.t + 1:
                king_value = proposed
            else:
                king_value = suggestion
            inbox = yield from broadcast_round(ctx, f"{tag}/king", king_value)
        else:
            inbox = yield from exchange(f"{tag}/king", {})
        king_value = inbox.get(king)
        if not _is_nat(king_value):
            king_value = None

        # Lines 17-18: vote for an acceptable king value.
        if king_value is not None and (
            king_value == current
            or interval_min <= king_value <= interval_max
        ):
            vote: Any = (_VOTE, king_value)
            outgoing = {dest: vote for dest in ctx.all_parties}
        else:
            outgoing = {}
        inbox = yield from exchange(f"{tag}/vote", outgoing)

        # Lines 19-21: without a strong proposal, adopt a t+1-supported
        # king value.
        if not strong_proposal:
            vote_counts = _count_tagged(inbox, _VOTE)
            voted, vote_count = _best(vote_counts)
            if vote_count >= ctx.t + 1:
                current = voted

    return current
