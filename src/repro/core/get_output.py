"""``GetOutput`` (Section 3): decide between ``MIN_l`` and ``MAX_l``.

Preconditions (established by ``FindPrefix`` + ``AddLastBit``/``Block``,
Lemma 3): all honest parties hold the same ``PREFIX*`` that is a prefix
of some valid value, and at least ``t + 1`` honest parties hold valid
values ``v_bot`` whose representations avoid ``PREFIX*``.  Each such
witness value is either below every value with the prefix (so
``MIN_l(PREFIX*)`` is valid) or above all of them (so ``MAX_l(PREFIX*)``
is valid).

One announcement round (a single bit from the witnesses), a majority
pick, and a binary BA produce a common, valid output:

* at least ``t + 1`` bits arrive, so ``m >= t + 1``;
* a bit received from ``ceil(m/2)`` of ``m >= 2t + 1`` received bits was
  sent by at least one honest party (at most ``t`` are byzantine), and
  when ``m <= 2t`` every received bit count below ``ceil(m/2)`` forces
  the majority bit to include an honest sender too (paper Lemma 3);
* binary BA Validity then lands on a bit proposed by an honest party.
"""

from __future__ import annotations

from typing import Any, Callable

from ..ba.domains import BIT_DOMAIN
from ..ba.phase_king import phase_king
from ..sim.party import Context, Proto, broadcast_round, exchange
from .bitstrings import BitString, bits_fixed

__all__ = ["get_output"]


def get_output(
    ctx: Context,
    prefix: BitString,
    v_bot: int,
    ell: int,
    channel: str = "go",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[int]:
    """Return the common valid output ``MIN_l`` or ``MAX_l`` of the prefix."""
    if not 1 <= prefix.length <= ell:
        raise ValueError(
            f"prefix length {prefix.length} out of range for ell={ell}"
        )
    lower = prefix.min_fill(ell)
    upper = prefix.max_fill(ell)

    # Lines 1-3: witnesses announce which side of the prefix they sit on.
    mine = bits_fixed(v_bot, ell)
    if not mine.has_prefix(prefix):
        my_bit = 0 if v_bot < lower else 1
        inbox = yield from broadcast_round(ctx, f"{channel}/announce", my_bit)
    else:
        inbox = yield from exchange(f"{channel}/announce", {})

    # Line 4: CHOICE := a bit received from ceil(m / 2) parties.
    received = [
        b for b in inbox.values() if isinstance(b, int) and b in (0, 1)
    ]
    m = len(received)
    ones = sum(received)
    zeros = m - ones
    threshold = (m + 1) // 2
    if zeros >= threshold:
        choice = 0
    elif ones >= threshold:
        choice = 1
    else:
        # m = 0 is impossible under the preconditions (t + 1 witnesses);
        # stay deterministic regardless.
        choice = 0

    # Line 5: agree on the choice.
    agreed = yield from ba(ctx, choice, BIT_DOMAIN, channel=f"{channel}/ba")
    return lower if agreed == 0 else upper
