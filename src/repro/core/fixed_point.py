"""Fixed-point convex agreement: rational inputs at fixed precision.

Section 1: the protocol "takes as inputs bitstrings interpreted as
integer values.  This is without loss of generality ... (one could
alternatively interpret the inputs being rational numbers with some
arbitrary pre-defined precision)."  This module implements that remark
as a typed adapter so applications with real-valued readings (the
motivating -10.04 C sensors) do not hand-roll scaling:

* inputs may be ``int``, ``Fraction`` or ``Decimal`` (floats are
  rejected -- binary floats silently misrepresent decimal readings, the
  caller should quantise explicitly);
* a :class:`FixedPointCodec` with ``decimals`` digits maps them to
  scaled integers (ties on the half-unit round away from zero, the
  usual metrology convention), runs any integer CA, and maps back;
* convex validity transfers: scaling is monotone, so the integer-level
  hull maps into the (quantised) input hull.

Quantisation means the output is guaranteed to lie in the hull of the
*quantised* honest inputs, which is within half a quantum of the true
hull -- exactly the precision the caller declared acceptable.
"""

from __future__ import annotations

from decimal import Decimal
from fractions import Fraction
from typing import Any, Callable, Union

from ..ba.phase_king import phase_king
from ..sim.party import Context, Proto
from .protocol_z import protocol_z

__all__ = ["FixedPointCodec", "fixed_point_ca"]

Reading = Union[int, Fraction, Decimal]


class FixedPointCodec:
    """Scale rational readings to integers at ``decimals`` digits."""

    def __init__(self, decimals: int) -> None:
        if not 0 <= decimals <= 100:
            raise ValueError(f"decimals out of range: {decimals}")
        self.decimals = decimals
        self.scale = 10 ** decimals

    def to_int(self, reading: Reading) -> int:
        """Quantise a reading (round half away from zero)."""
        if isinstance(reading, bool) or isinstance(reading, float):
            raise TypeError(
                f"readings must be int/Fraction/Decimal, got "
                f"{type(reading).__name__} (quantise floats explicitly)"
            )
        if isinstance(reading, Decimal):
            reading = Fraction(reading)
        elif isinstance(reading, int):
            reading = Fraction(reading)
        if not isinstance(reading, Fraction):
            raise TypeError(f"unsupported reading type {type(reading)}")
        scaled = reading * self.scale
        whole, remainder = divmod(abs(scaled), 1)
        magnitude = int(whole) + (1 if remainder >= Fraction(1, 2) else 0)
        return -magnitude if scaled < 0 else magnitude

    def to_reading(self, value: int) -> Fraction:
        """The exact rational a scaled integer represents."""
        return Fraction(value, self.scale)


def fixed_point_ca(
    ctx: Context,
    reading: Reading,
    decimals: int,
    channel: str = "fpca",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[Fraction]:
    """Convex agreement on rational readings at fixed precision.

    Honest outputs are identical and lie in the convex hull of the
    honest parties' *quantised* readings (hence within half a quantum,
    ``10^-decimals / 2``, of the true honest hull).
    """
    codec = FixedPointCodec(decimals)
    scaled = codec.to_int(reading)
    agreed = yield from protocol_z(ctx, scaled, channel=channel, ba=ba)
    return codec.to_reading(agreed)
