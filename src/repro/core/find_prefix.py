"""``FindPrefix`` (Section 3) and ``FindPrefixBlocks`` (Section 4).

The heart of the paper's CA protocol: a byzantine variant of the longest
common prefix problem.  Honest parties binary-search for the longest
prefix ``PREFIX*`` on which ``PI_lBA+`` still reaches (non-bottom)
agreement:

* a non-bottom answer extends ``PREFIX*`` -- Intrusion Tolerance
  guarantees the agreed segment is some honest (hence valid) value's
  segment, and parties whose value disagrees snap to
  ``MIN_l(PREFIX*)`` / ``MAX_l(PREFIX*)``, which Remark 2 shows stays in
  the honest inputs' range;
* a bottom answer moves the search left -- Bounded Pre-Agreement then
  guarantees that for *any* candidate extension, at least ``t + 1``
  honest parties hold witnesses ``v_bot`` avoiding it, which is exactly
  what ``GetOutput`` later needs.

Both paper variants are the same algorithm at different granularities:
``FindPrefix`` searches over single bits (``unit_bits = 1``, O(log l)
iterations) and ``FindPrefixBlocks`` over ``n^2`` blocks of ``l / n^2``
bits (``unit_bits = l / n^2``, O(log n) iterations); we implement the
loop once, parameterised by ``unit_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..ba.ext_ba_plus import ext_ba_plus
from ..ba.phase_king import phase_king
from ..errors import ProtocolViolation
from ..sim.party import Context, Proto
from .bitstrings import BitString, bits_fixed

__all__ = ["PrefixResult", "find_prefix", "find_prefix_blocks"]


@dataclass(frozen=True, slots=True)
class PrefixResult:
    """Return value of ``FindPrefix``: ``(PREFIX*, v, v_bot)``.

    Lemma 1 / Lemma 4 invariants (established by honest execution):

    * all honest parties hold the same ``prefix``;
    * ``v`` is a valid l-bit value whose representation has ``prefix``
      as a prefix;
    * ``v_bot`` is a valid l-bit value such that for any one-unit
      extension of ``prefix``, at least ``t + 1`` honest parties' values
      ``v_bot`` avoid that extension.
    """

    prefix: BitString
    v: int
    v_bot: int


def find_prefix(
    ctx: Context,
    v_in: int,
    ell: int,
    unit_bits: int = 1,
    channel: str = "fp",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[PrefixResult]:
    """Binary-search the agreed prefix of the honest inputs.

    Args:
        ctx: party context.
        v_in: this party's valid ``ell``-bit input value.
        ell: the publicly known input length in bits.
        unit_bits: search granularity -- 1 for ``FindPrefix``,
            ``ell / n^2`` for ``FindPrefixBlocks``.
        channel: accounting label prefix.
        ba: the assumed ``PI_BA`` used inside ``PI_lBA+``.
    """
    ctx.require_resilience(3)
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    if ell % unit_bits:
        raise ValueError(
            f"unit_bits={unit_bits} must divide ell={ell}"
        )
    if not 0 <= v_in < (1 << ell):
        raise ValueError(f"input {v_in} is not a valid {ell}-bit value")

    num_units = ell // unit_bits
    left, right = 1, num_units + 1
    v = v_in
    v_bot = v_in
    prefix = BitString.empty()
    iteration = 0

    while left != right:
        mid = (left + right) // 2
        bits = bits_fixed(v, ell)
        segment = bits[(left - 1) * unit_bits: mid * unit_bits]

        agreed_bytes = yield from ext_ba_plus(
            ctx,
            segment.to_wire_bytes(),
            channel=f"{channel}/i{iteration}",
            ba=ba,
        )

        if agreed_bytes is None:
            # Bottom: fewer than n - 2t honest parties share this
            # segment; v becomes the avoidance witness v_bot.
            v_bot = v
            right = mid
        else:
            # Intrusion Tolerance: the agreed segment is an honest
            # party's segment, hence well-formed and of the right size.
            try:
                agreed = BitString.from_wire_bytes(agreed_bytes)
            except ValueError as exc:
                raise ProtocolViolation(
                    "PI_lBA+ returned an unparsable segment despite "
                    "Intrusion Tolerance"
                ) from exc
            if agreed.length != segment.length:
                raise ProtocolViolation(
                    f"PI_lBA+ returned {agreed.length} bits, expected "
                    f"{segment.length}"
                )
            new_prefix = prefix.concat(agreed)
            head = bits.prefix(mid * unit_bits)
            # Remark 2: parties on the wrong side of PREFIX* snap to the
            # nearest value with the agreed prefix, staying in the hull.
            if head.value < new_prefix.value:
                v = new_prefix.min_fill(ell)
            elif head.value > new_prefix.value:
                v = new_prefix.max_fill(ell)
            prefix = new_prefix
            left = mid + 1
        iteration += 1

    return PrefixResult(prefix=prefix, v=v, v_bot=v_bot)


def find_prefix_blocks(
    ctx: Context,
    v_in: int,
    ell: int,
    num_blocks: int | None = None,
    channel: str = "fpb",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[PrefixResult]:
    """``FindPrefixBlocks``: block-granularity search (Section 4).

    The paper splits the value into ``n^2`` blocks of ``ell / n^2`` bits;
    ``num_blocks`` defaults accordingly and must divide ``ell``.
    """
    if num_blocks is None:
        num_blocks = ctx.n * ctx.n
    if ell % num_blocks:
        raise ValueError(
            f"ell={ell} must be a multiple of num_blocks={num_blocks}"
        )
    return (
        yield from find_prefix(
            ctx,
            v_in,
            ell,
            unit_bits=ell // num_blocks,
            channel=channel,
            ba=ba,
        )
    )
