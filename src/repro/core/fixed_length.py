"""``FixedLengthCA`` (Section 3) and ``FixedLengthCABlocks`` (Section 4).

Both protocols assume the honest parties hold valid ``ell``-bit inputs in
N with ``ell`` publicly known, and compose the same three phases:

1. ``FindPrefix`` / ``FindPrefixBlocks`` -- agree on ``PREFIX*`` and
   obtain the values ``v`` (prefix-consistent) and ``v_bot`` (avoidance
   witnesses);
2. if ``|PREFIX*| = ell`` all parties hold the same valid ``v``: done;
   otherwise ``AddLastBit`` / ``AddLastBlock`` extends the prefix by one
   unit;
3. ``GetOutput`` turns the ``t + 1`` witnesses into a common choice of
   ``MIN_l(PREFIX*)`` or ``MAX_l(PREFIX*)``.

Complexities (Theorems 2 and 4, with ``PI_BA`` = Phase-King measured
separately):

* ``FixedLengthCA``: ``O(l n + kappa n^2 log n log l)`` bits,
  ``O(log l) * ROUNDS(PI_BA)`` rounds -- optimal for ``l in poly(n)``;
* ``FixedLengthCABlocks``: ``O(l n + kappa n^2 log^2 n)`` bits,
  ``O(n) + O(log n) * ROUNDS(PI_BA)`` rounds -- for ``l >= n^2``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..ba.phase_king import phase_king
from ..sim.party import Context, Proto
from .add_last import add_last_bit, add_last_block
from .find_prefix import find_prefix
from .get_output import get_output

__all__ = ["fixed_length_ca", "fixed_length_ca_blocks"]


def fixed_length_ca(
    ctx: Context,
    v_in: int,
    ell: int,
    channel: str = "flca",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[int]:
    """CA for ``ell``-bit inputs in N with publicly known ``ell``.

    Honest callers must pass ``0 <= v_in < 2**ell``; the caller (``PI_N``)
    establishes this by clamping to ``2**ell - 1``, which Theorem 5's
    argument shows preserves validity.
    """
    result = yield from find_prefix(
        ctx, v_in, ell, unit_bits=1, channel=f"{channel}/fp", ba=ba
    )
    if result.prefix.length == ell:
        return result.v

    prefix = yield from add_last_bit(
        ctx, result.prefix, result.v, ell, channel=f"{channel}/al", ba=ba
    )
    output = yield from get_output(
        ctx, prefix, result.v_bot, ell, channel=f"{channel}/go", ba=ba
    )
    return output


def fixed_length_ca_blocks(
    ctx: Context,
    v_in: int,
    ell: int,
    num_blocks: int | None = None,
    channel: str = "flcab",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[int]:
    """CA for very long ``ell``-bit inputs (``ell`` a multiple of n^2).

    Identical to :func:`fixed_length_ca` but the prefix search works on
    blocks of ``ell / n^2`` bits and the last unit is agreed via
    ``HighCostCA`` on a single block.
    """
    if num_blocks is None:
        num_blocks = ctx.n * ctx.n
    if ell % num_blocks:
        raise ValueError(
            f"ell={ell} must be a multiple of num_blocks={num_blocks}"
        )
    block_bits = ell // num_blocks

    result = yield from find_prefix(
        ctx, v_in, ell, unit_bits=block_bits, channel=f"{channel}/fp", ba=ba
    )
    if result.prefix.length == ell:
        return result.v

    prefix = yield from add_last_block(
        ctx,
        result.prefix,
        result.v,
        ell,
        block_bits,
        channel=f"{channel}/al",
    )
    output = yield from get_output(
        ctx, prefix, result.v_bot, ell, channel=f"{channel}/go", ba=ba
    )
    return output
