"""``PI_N`` (Section 5): the final CA protocol for N with unknown length.

``FixedLengthCA`` is optimal for ``l in poly(n)``; ``FixedLengthCABlocks``
handles arbitrarily long inputs but needs ``l >= n^2``.  ``PI_N`` removes
the publicly-known-length assumption and dispatches between them:

1. one bit-BA decides whether the parties' inputs are short
   (``|BITS(v)| <= n^2``) or long;
2. *short*: parties clamp to ``2^{n^2} - 1`` if needed, then find the
   length estimate ``l_EST`` by comparing against powers of two with
   ``O(log n)`` further bit-BAs, and run ``FixedLengthCA``;
3. *long*: parties agree on a common block size with ``HighCostCA``
   (cheap: block sizes are ``O(log l)``-bit values... the paper notes
   ``O(l / n^2)`` bits suffice), set ``l_EST = BLOCKSIZE' * n^2``, clamp,
   and run ``FixedLengthCABlocks``.

Every clamp in the pseudocode replaces a too-long input with
``2^{l_EST} - 1``; Theorem 5's proof shows the clamped value is always in
the honest inputs' range, so Convex Validity is preserved.

Note on the pseudocode's line 10: the paper clamps when
``|BITS(v)| >= l_EST``, but a value of exactly ``l_EST`` bits already
fits in ``l_EST`` bits, and clamping it to ``2^{l_EST} - 1`` could leave
the honest range (e.g. all honest inputs equal and exactly ``l_EST``
bits long).  We clamp on strict ``>``, consistent with lines 3 and 7 and
with the validity argument in the proof of Theorem 5; DESIGN.md records
this as an erratum.
"""

from __future__ import annotations

from typing import Any, Callable

from ..ba.domains import BIT_DOMAIN
from ..ba.phase_king import phase_king
from ..errors import ProtocolViolation
from ..sim.party import Context, Proto
from .fixed_length import fixed_length_ca, fixed_length_ca_blocks
from .high_cost_ca import high_cost_ca

__all__ = ["protocol_n"]


def protocol_n(
    ctx: Context,
    v_in: int,
    channel: str = "piN",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[int]:
    """Run ``PI_N`` on an arbitrary natural-number input.

    Guarantees (Theorem 5): Termination, Agreement, Convex Validity, with
    ``O(l n + kappa n^2 log^2 n)`` bits beyond the ``PI_BA`` term and
    ``O(n) + O(log n) * ROUNDS(PI_BA)`` rounds.
    """
    ctx.require_resilience(3)
    if not isinstance(v_in, int) or isinstance(v_in, bool) or v_in < 0:
        raise ValueError(f"PI_N input must be in N, got {v_in!r}")

    n_squared = ctx.n * ctx.n
    length = v_in.bit_length()

    # Line 1: classify short vs long inputs.
    long_bit = yield from ba(
        ctx,
        0 if length <= n_squared else 1,
        BIT_DOMAIN,
        channel=f"{channel}/class",
    )

    if long_bit == 0:
        # Lines 2-7: short inputs.
        v = v_in
        if v.bit_length() > n_squared:
            v = (1 << n_squared) - 1
        max_exp = max(1, n_squared).bit_length()
        # i = 0 .. ceil(log2 n^2): compare against 2^i.
        for i in range(max_exp + 1):
            threshold = 1 << i
            short_enough = 0 if v.bit_length() <= threshold else 1
            decided = yield from ba(
                ctx, short_enough, BIT_DOMAIN, channel=f"{channel}/len{i}"
            )
            if decided == 0:
                ell_est = threshold
                if v.bit_length() > ell_est:
                    v = (1 << ell_est) - 1
                output = yield from fixed_length_ca(
                    ctx, v, ell_est, channel=f"{channel}/flca", ba=ba
                )
                return output
        # All honest values fit in 2^{ceil(log2 n^2)} >= n^2 bits after
        # clamping, so BA Validity forces a 0 by the last iteration.
        raise ProtocolViolation("PI_N length estimation never settled")

    # Lines 8-11: long inputs.
    block_size = -(-v_in.bit_length() // n_squared)  # ceil division
    agreed_block_size = yield from high_cost_ca(
        ctx, block_size, channel=f"{channel}/bsize"
    )
    ell_est = agreed_block_size * n_squared
    if ell_est == 0:
        # Convex Validity of HighCostCA: block size 0 implies some honest
        # party held the input 0, so 0 is a valid common output.
        return 0
    v = v_in
    if v.bit_length() > ell_est:
        v = (1 << ell_est) - 1
    output = yield from fixed_length_ca_blocks(
        ctx, v, ell_est, channel=f"{channel}/flcab", ba=ba
    )
    return output
