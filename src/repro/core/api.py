"""High-level public API for running Convex Agreement.

Most users want one call::

    from repro import convex_agreement

    result = convex_agreement([-1005, -1004, -1003, -1003, 99999], t=1)
    result.value          # agreed output, inside the honest inputs' range
    result.stats.honest_bits
    result.stats.rounds

The API simulates the paper's final protocol ``PI_Z`` over the
synchronous network substrate under a pluggable byzantine adversary, and
returns both the agreed value and the full execution metrics.  For
embedding a CA instance inside a larger simulated protocol, use the raw
generator :func:`repro.core.protocol_z.protocol_z` with ``yield from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..ba.phase_king import phase_king
from ..errors import ConfigurationError
from ..sim.adversary import Adversary
from ..sim.metrics import CommunicationStats
from ..sim.network import ExecutionResult
from ..sim.party import Proto
from ..sim.runner import run_protocol
from .protocol_z import protocol_z

__all__ = ["ConvexAgreementOutcome", "convex_agreement", "default_threshold"]


def default_threshold(n: int) -> int:
    """The maximum ``t`` with ``t < n/3``."""
    return (n - 1) // 3


@dataclass(frozen=True)
class ConvexAgreementOutcome:
    """Result of one simulated Convex Agreement execution."""

    value: int
    execution: ExecutionResult

    @property
    def stats(self) -> CommunicationStats:
        """Communication statistics of the execution."""
        return self.execution.stats

    @property
    def outputs(self) -> dict[int, int]:
        """Per-honest-party outputs (all equal by Agreement)."""
        return self.execution.outputs

    @property
    def corrupted(self) -> frozenset[int]:
        """The parties the adversary controlled."""
        return self.execution.corrupted


def convex_agreement(
    inputs: list[int] | dict[int, int],
    t: int | None = None,
    kappa: int = 128,
    adversary: Adversary | None = None,
    ba: Callable[..., Proto[Any]] = phase_king,
    max_rounds: int = 200_000,
    monitors: Any = (),
    degrade: bool = False,
    transport: Any = None,
) -> ConvexAgreementOutcome:
    """Run ``PI_Z`` on integer inputs and return the agreed value.

    Args:
        inputs: one integer per party (list, or dict keyed by party id).
            Length determines ``n``.
        t: corruption bound; defaults to the optimal ``floor((n-1)/3)``.
        kappa: security parameter for hashing/accumulation, in bits.
        adversary: byzantine strategy controlling up to ``t`` parties;
            defaults to spec-following corrupted parties.
        ba: the assumed ``PI_BA`` building block (generator function
            ``ba(ctx, value, domain, channel)``).
        max_rounds: safety cap for the simulator.
        monitors: online invariant monitors
            (:mod:`repro.sim.invariants`) evaluated during the run.
        degrade: supervise the execution and, if a monitor fires or the
            simulation dies, fall back to the self-contained
            ``HighCostCA`` path so the call still ends with a
            convex-valid value; the fallback is recorded on
            ``outcome.execution.fallback``.
        transport: optional lossy / partial-synchrony transport
            (:class:`repro.sim.LossyTransport` or
            :class:`repro.sim.PartialSyncTransport`) the simulated
            rounds synchronize over instead of the perfect network.

    Returns:
        A :class:`ConvexAgreementOutcome`; its ``value`` is the common
        honest output, guaranteed to lie in the convex hull of the honest
        parties' inputs whenever the adversary corrupts at most ``t``
        parties.
    """
    if isinstance(inputs, dict):
        n = len(inputs)
        if set(inputs) != set(range(n)):
            raise ConfigurationError(
                f"inputs must cover parties 0..{n - 1}, got {sorted(inputs)}"
            )
        values = [inputs[i] for i in range(n)]
    else:
        values = list(inputs)
        n = len(values)
    if n == 0:
        raise ConfigurationError("need at least one party")
    if any(not isinstance(v, int) or isinstance(v, bool) for v in values):
        raise ConfigurationError("all inputs must be integers")
    if t is None:
        t = default_threshold(n)

    if degrade:
        from ..sim.supervisor import run_with_fallback

        execution = run_with_fallback(
            lambda ctx, v: protocol_z(ctx, v, ba=ba),
            values,
            n=n,
            t=t,
            kappa=kappa,
            adversary=adversary,
            max_rounds=max_rounds,
            monitors=monitors,
            transport=transport,
        )
    else:
        execution = run_protocol(
            lambda ctx, v: protocol_z(ctx, v, ba=ba),
            values,
            n=n,
            t=t,
            kappa=kappa,
            adversary=adversary,
            max_rounds=max_rounds,
            monitors=monitors,
            transport=transport,
        )
    return ConvexAgreementOutcome(
        value=execution.common_output(), execution=execution
    )
