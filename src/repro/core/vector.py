"""Coordinate-wise Convex Agreement for integer vectors.

The paper's CA is one-dimensional (inputs in Z).  Multidimensional
convex agreement in the Vaidya-Garg sense [50] -- outputs in the convex
hull of the honest input *vectors* -- is listed among the open
directions ("extending our question to input spaces beyond Z").  This
module provides the natural composition that the 1-D protocol already
enables: running ``PI_Z`` independently per coordinate.

Guarantee (strictly weaker than hull validity, clearly documented):
**box validity** -- every coordinate of the common output lies in the
range of the honest parties' values *for that coordinate*.  The output
box is the smallest axis-aligned box containing the honest hull, which
suffices for many of the motivating applications (per-sensor ranges,
per-asset price bounds) but does not place the output inside the hull
itself for d >= 2.

Communication is ``d`` times the 1-D cost; for vectors of total length
``l`` this preserves the ``O(l n)`` headline term.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..ba.phase_king import phase_king
from ..sim.party import Context, Proto
from .protocol_z import protocol_z

__all__ = ["vector_convex_agreement"]


def vector_convex_agreement(
    ctx: Context,
    v_in: Sequence[int],
    dimension: int,
    channel: str = "vec",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[tuple[int, ...]]:
    """Agree on an integer vector with per-coordinate (box) validity.

    Args:
        ctx: party context.
        v_in: this party's input vector; must have exactly ``dimension``
            integer entries.
        dimension: the publicly known vector dimension (all honest
            parties must pass the same value).
        channel: accounting label prefix.
        ba: the assumed ``PI_BA``.

    Returns:
        The common output vector (identical at all honest parties);
        coordinate ``i`` lies in the honest parties' coordinate-``i``
        range.
    """
    values = list(v_in)
    if len(values) != dimension:
        raise ValueError(
            f"input vector has {len(values)} entries, expected {dimension}"
        )
    if any(not isinstance(v, int) or isinstance(v, bool) for v in values):
        raise ValueError("vector entries must be integers")

    output = []
    for coordinate in range(dimension):
        agreed = yield from protocol_z(
            ctx,
            values[coordinate],
            channel=f"{channel}/c{coordinate}",
            ba=ba,
        )
        output.append(agreed)
    return tuple(output)
