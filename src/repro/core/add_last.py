"""``AddLastBit`` (Section 3) and ``AddLastBlock`` (Section 4).

After ``FindPrefix`` the parties hold the same ``PREFIX*`` of ``i*``
units and valid values ``v`` extending it.  Before ``GetOutput`` can
choose between ``MIN_l`` and ``MAX_l``, the prefix must grow by exactly
one unit (so that the ``t + 1`` avoidance witnesses ``v_bot`` really do
avoid it):

* the bit variant agrees on the next bit with one binary ``PI_BA``
  invocation (Validity of binary BA makes the agreed bit an honest
  party's bit, so the extended prefix is still some valid value's
  prefix, Lemma 2);
* the block variant agrees on the next ``l / n^2``-bit block by running
  ``HighCostCA`` on the honest parties' block values -- any block in
  their range extends the prefix of *some* valid value (Lemma 5), and
  since the block is only ``l / n^2`` bits, the ``O(block * n^3)`` cost
  is ``O(l n)`` overall.
"""

from __future__ import annotations

from typing import Any, Callable

from ..ba.domains import BIT_DOMAIN
from ..ba.phase_king import phase_king
from ..sim.party import Context, Proto
from .bitstrings import BitString, bits_fixed
from .high_cost_ca import high_cost_ca

__all__ = ["add_last_bit", "add_last_block"]


def add_last_bit(
    ctx: Context,
    prefix: BitString,
    v: int,
    ell: int,
    channel: str = "alb",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[BitString]:
    """Extend ``prefix`` by one agreed bit of the honest values ``v``."""
    if prefix.length >= ell:
        raise ValueError(
            f"prefix of {prefix.length} bits cannot be extended within "
            f"ell={ell}"
        )
    my_bit = bits_fixed(v, ell)[prefix.length]
    agreed_bit = yield from ba(
        ctx, my_bit, BIT_DOMAIN, channel=f"{channel}/ba"
    )
    if agreed_bit not in (0, 1):
        # The binary domain forces this already; stay deterministic.
        agreed_bit = 0
    return prefix.append_bit(agreed_bit)


def add_last_block(
    ctx: Context,
    prefix: BitString,
    v: int,
    ell: int,
    block_bits: int,
    channel: str = "albk",
) -> Proto[BitString]:
    """Extend ``prefix`` by one agreed block via ``HighCostCA``."""
    if block_bits <= 0 or prefix.length % block_bits:
        raise ValueError(
            f"prefix of {prefix.length} bits is not block-aligned "
            f"(block_bits={block_bits})"
        )
    if prefix.length + block_bits > ell:
        raise ValueError("cannot extend prefix beyond ell bits")
    i_star = prefix.length // block_bits
    block = bits_fixed(v, ell)[
        i_star * block_bits: (i_star + 1) * block_bits
    ]
    agreed_value = yield from high_cost_ca(
        ctx, block.value, channel=f"{channel}/hc"
    )
    # Convex Validity of HighCostCA keeps the agreed value within the
    # honest block range, hence within block_bits bits.
    agreed_block = bits_fixed(agreed_value, block_bits)
    return prefix.concat(agreed_block)
