"""``PI_Z`` (Section 6): CA for integers.

Inputs are represented as ``(-1)^SIGN * magnitude`` with
``magnitude in N``.  One binary BA fixes the common output sign; a party
whose own sign differs resets its magnitude to 0 -- zero is guaranteed to
be in the honest range whenever both signs occur among honest inputs --
and the parties finish with ``PI_N`` on the magnitudes (Corollary 1).

With ``PI_BA`` instantiated by a deterministic quadratic protocol the
paper obtains its headline result (Corollary 2):

    ``BITS_l(PI_Z) = O(l n + kappa n^2 log^2 n)``,
    ``ROUNDS_l(PI_Z) = O(n log n)``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..ba.domains import BIT_DOMAIN
from ..ba.phase_king import phase_king
from ..sim.party import Context, Proto
from .protocol_n import protocol_n

__all__ = ["protocol_z"]


def protocol_z(
    ctx: Context,
    v_in: int,
    channel: str = "piZ",
    ba: Callable[..., Proto[Any]] = phase_king,
) -> Proto[int]:
    """Run ``PI_Z`` on an arbitrary integer input."""
    ctx.require_resilience(3)
    if not isinstance(v_in, int) or isinstance(v_in, bool):
        raise ValueError(f"PI_Z input must be an integer, got {v_in!r}")

    sign_in = 1 if v_in < 0 else 0
    magnitude = abs(v_in)

    # Line 1: agree on the output sign.
    sign_out = yield from ba(
        ctx, sign_in, BIT_DOMAIN, channel=f"{channel}/sign"
    )

    # Line 2: parties on the wrong side of zero reset to 0 (valid
    # whenever the agreed sign was proposed by an honest party, which
    # binary BA Validity guarantees).
    if sign_out != sign_in:
        magnitude = 0
    agreed_magnitude = yield from protocol_n(
        ctx, magnitude, channel=f"{channel}/nat", ba=ba
    )

    # Line 3.
    return -agreed_magnitude if sign_out == 1 else agreed_magnitude
