"""The paper's primary contribution: the Convex Agreement protocol stack."""

from .add_last import add_last_bit, add_last_block
from .api import ConvexAgreementOutcome, convex_agreement, default_threshold
from .bitstrings import (
    BitString,
    bits_fixed,
    bits_of,
    blocks_of,
    join_blocks,
    longest_common_prefix,
    max_fill,
    min_fill,
    val_of,
)
from .find_prefix import PrefixResult, find_prefix, find_prefix_blocks
from .fixed_length import fixed_length_ca, fixed_length_ca_blocks
from .get_output import get_output
from .high_cost_ca import high_cost_ca
from .protocol_n import protocol_n
from .protocol_z import protocol_z

__all__ = [
    "BitString",
    "ConvexAgreementOutcome",
    "PrefixResult",
    "add_last_bit",
    "add_last_block",
    "bits_fixed",
    "bits_of",
    "blocks_of",
    "convex_agreement",
    "default_threshold",
    "find_prefix",
    "find_prefix_blocks",
    "fixed_length_ca",
    "fixed_length_ca_blocks",
    "get_output",
    "high_cost_ca",
    "join_blocks",
    "longest_common_prefix",
    "max_fill",
    "min_fill",
    "protocol_n",
    "protocol_z",
    "val_of",
]
