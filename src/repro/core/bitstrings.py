"""Binary representations: the paper's ``BITS``/``VAL``/``MIN``/``MAX``.

Section 2 of the paper fixes the following notation, all of which this
module implements on an immutable :class:`BitString` value type:

* ``BITS(v)`` -- the minimal binary representation of ``v`` (empty for 0),
* ``BITS_l(v)`` -- the ``l``-bit representation, zero-padded on the left,
* ``B^i_l(v)`` -- the i-th leftmost bit (1-indexed in the paper),
* ``VAL(bits)`` -- the integer value of a bitstring,
* ``MIN_l(bits)`` / ``MAX_l(bits)`` -- the lowest/highest ``l``-bit value
  with the given prefix (pad with zeroes / ones),
* ``BLOCKS(v)`` -- the decomposition of ``BITS_l(v)`` into fixed-size
  blocks (Section 4 uses ``n^2`` blocks of ``l/n^2`` bits).

A :class:`BitString` is stored as ``(value, length)`` -- a Python int plus
an explicit bit length -- so prefixes, concatenation and comparisons are
O(1)-ish big-int operations rather than per-bit loops, which matters for
the very-long-input benchmarks (``l`` up to hundreds of kilobits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..sim.sizing import WireSized

__all__ = [
    "BitString",
    "bits_of",
    "bits_fixed",
    "val_of",
    "min_fill",
    "max_fill",
    "blocks_of",
    "join_blocks",
    "longest_common_prefix",
]

_LENGTH_HEADER_BYTES = 4


@dataclass(frozen=True, slots=True)
class BitString(WireSized):
    """An immutable bitstring: ``length`` bits whose integer value is ``value``.

    Bit 0 is the *leftmost* (most significant) bit, matching the paper's
    ``B_1 B_2 ... B_k`` reading order (the paper indexes from 1; this class
    uses Python's 0-based indexing, so the paper's ``B^i_l(v)`` is
    ``bits_fixed(v, l)[i - 1]``).
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative length {self.length}")
        if self.value < 0:
            raise ValueError(f"negative value {self.value}")
        if self.value.bit_length() > self.length:
            raise ValueError(
                f"value {self.value} does not fit in {self.length} bits"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def empty(cls) -> "BitString":
        """The zero-length bitstring."""
        return cls(0, 0)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 bits, leftmost first."""
        value = 0
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            value = (value << 1) | bit
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, text: str) -> "BitString":
        """Parse a string like ``"0101"``."""
        return cls.from_bits(int(ch) for ch in text)

    # -- conversions ------------------------------------------------------
    def bits(self) -> tuple[int, ...]:
        """The bits as a tuple, leftmost first."""
        return tuple(self)

    def __iter__(self) -> Iterator[int]:
        for i in range(self.length):
            yield (self.value >> (self.length - 1 - i)) & 1

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __str__(self) -> str:
        return "".join(str(b) for b in self)

    def __repr__(self) -> str:
        return f"BitString('{self}')" if self.length <= 64 else (
            f"BitString(len={self.length}, value={self.value})"
        )

    # -- indexing ---------------------------------------------------------
    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.length)
            if step != 1:
                raise ValueError("BitString slices must have step 1")
            if stop <= start:
                return BitString.empty()
            width = stop - start
            shifted = self.value >> (self.length - stop)
            return BitString(shifted & ((1 << width) - 1), width)
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError(f"bit index {index} out of range")
        return (self.value >> (self.length - 1 - index)) & 1

    def prefix(self, k: int) -> "BitString":
        """The first ``k`` bits."""
        if not 0 <= k <= self.length:
            raise ValueError(f"prefix length {k} out of range")
        return self[:k]

    def suffix_from(self, k: int) -> "BitString":
        """Bits ``k..end`` (0-based)."""
        return self[k:]

    # -- algebra ------------------------------------------------------------
    def concat(self, other: "BitString") -> "BitString":
        """The paper's ``||`` operator."""
        return BitString(
            (self.value << other.length) | other.value,
            self.length + other.length,
        )

    __add__ = concat

    def append_bit(self, bit: int) -> "BitString":
        """This bitstring extended by one bit on the right."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        return BitString((self.value << 1) | bit, self.length + 1)

    def is_prefix_of(self, other: "BitString") -> bool:
        """Whether ``other`` starts with this bitstring."""
        if self.length > other.length:
            return False
        return other.value >> (other.length - self.length) == self.value

    def has_prefix(self, prefix: "BitString") -> bool:
        """Whether this bitstring starts with ``prefix``."""
        return prefix.is_prefix_of(self)

    # -- MIN / MAX ---------------------------------------------------------
    def min_fill(self, ell: int) -> int:
        """``MIN_l(self)``: lowest ``ell``-bit value with this prefix."""
        if ell < self.length:
            raise ValueError(
                f"cannot fill prefix of {self.length} bits to {ell} bits"
            )
        return self.value << (ell - self.length)

    def max_fill(self, ell: int) -> int:
        """``MAX_l(self)``: highest ``ell``-bit value with this prefix."""
        if ell < self.length:
            raise ValueError(
                f"cannot fill prefix of {self.length} bits to {ell} bits"
            )
        pad = ell - self.length
        return (self.value << pad) | ((1 << pad) - 1)

    # -- wire format ---------------------------------------------------------
    def wire_bits(self) -> int:
        """Communication cost: exactly ``length`` bits (see DESIGN.md)."""
        return self.length

    def to_wire_bytes(self) -> bytes:
        """Self-delimiting byte encoding (length header + payload)."""
        header = self.length.to_bytes(_LENGTH_HEADER_BYTES, "big")
        payload = self.value.to_bytes((self.length + 7) // 8 or 1, "big")
        return header + payload

    @classmethod
    def from_wire_bytes(cls, data: bytes) -> "BitString":
        """Parse :meth:`to_wire_bytes` output; raises ``ValueError`` on junk."""
        if len(data) < _LENGTH_HEADER_BYTES:
            raise ValueError("bitstring wire data too short")
        length = int.from_bytes(data[:_LENGTH_HEADER_BYTES], "big")
        payload = data[_LENGTH_HEADER_BYTES:]
        if len(payload) < max(1, (length + 7) // 8):
            raise ValueError("bitstring wire payload truncated")
        value = int.from_bytes(payload, "big")
        if value.bit_length() > length:
            raise ValueError("bitstring wire payload has stray high bits")
        return cls(value, length)


# ---------------------------------------------------------------------------
# Module-level functions mirroring the paper's notation.
# ---------------------------------------------------------------------------

def bits_of(v: int) -> BitString:
    """``BITS(v)``: the minimal binary representation (empty for 0)."""
    if v < 0:
        raise ValueError(f"BITS is defined on naturals, got {v}")
    return BitString(v, v.bit_length())


def bits_fixed(v: int, ell: int) -> BitString:
    """``BITS_l(v)``: the ``ell``-bit representation of ``v``."""
    if v < 0:
        raise ValueError(f"BITS_l is defined on naturals, got {v}")
    if v.bit_length() > ell:
        raise ValueError(f"value {v} does not fit in {ell} bits")
    return BitString(v, ell)


def val_of(bits: BitString) -> int:
    """``VAL(bits)``: the integer value of a bitstring."""
    return bits.value


def min_fill(bits: BitString, ell: int) -> int:
    """``MIN_l(bits)``."""
    return bits.min_fill(ell)


def max_fill(bits: BitString, ell: int) -> int:
    """``MAX_l(bits)``."""
    return bits.max_fill(ell)


def blocks_of(v: int, ell: int, num_blocks: int) -> list[BitString]:
    """``BLOCKS(v)``: split ``BITS_l(v)`` into ``num_blocks`` equal blocks."""
    if ell % num_blocks:
        raise ValueError(
            f"block decomposition requires num_blocks | ell, "
            f"got ell={ell}, num_blocks={num_blocks}"
        )
    whole = bits_fixed(v, ell)
    size = ell // num_blocks
    return [whole[i * size:(i + 1) * size] for i in range(num_blocks)]


def join_blocks(blocks: Iterable[BitString]) -> BitString:
    """Concatenate blocks back into one bitstring."""
    out = BitString.empty()
    for block in blocks:
        out = out.concat(block)
    return out


def longest_common_prefix(a: BitString, b: BitString) -> BitString:
    """The longest common prefix of two bitstrings."""
    limit = min(a.length, b.length)
    lo, hi = 0, limit
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a.prefix(mid) == b.prefix(mid):
            lo = mid
        else:
            hi = mid - 1
    return a.prefix(lo)
