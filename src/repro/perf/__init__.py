"""Hot-path performance layer: counters, cache switches, profiling.

The paper's headline is *communication* optimality; this package keeps
the reproduction's *computation* honest too.  Three pieces:

* :mod:`repro.perf.counters` -- deterministic operation counters
  (SHA-256 invocations, RS encodes/decodes, GF matmuls, Merkle
  builds/verifies, delivered messages).  Counts are pure functions of
  the executed protocol configs, so they are byte-identical across
  runs, machines, and worker counts -- unlike wall time, they can gate
  CI at a 0% regression threshold without flaking.
* :mod:`repro.perf.config` -- the global switch for the execution-scoped
  caches (RS-encode/Merkle-forest memo, decode-matrix reuse), used by
  the A/B tests that prove the caches are byte-for-byte
  correctness-neutral.
* :mod:`repro.perf.profile` -- the ``repro profile`` harness: runs
  representative end-to-end configs under the counters and cProfile and
  emits ``benchmarks/BENCH_hotpath.json`` with a deterministic counter
  section (``compare: true``) and a machine-local wall-time section
  (``compare: false``).

Import note: :mod:`repro.perf.profile` pulls in the analysis harness,
so it is deliberately *not* imported here -- the crypto/coding hot
paths import ``repro.perf`` and must stay cycle-free.
"""

from . import config, counters

__all__ = ["config", "counters"]
