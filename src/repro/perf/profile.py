"""The ``repro profile`` harness: ``benchmarks/BENCH_hotpath.json``.

Runs a representative set of end-to-end configs and emits a two-section
benchmark document:

* ``deterministic`` -- per-config operation counters
  (:mod:`repro.perf.counters`), communication totals, and an output
  digest.  These are pure functions of the config: identical across
  runs, machines, and worker counts, so CI can diff them against a
  committed baseline at **zero tolerance** without flakes
  (:func:`check_counters`).
* ``timing`` -- wall-clock seconds per config plus (optionally) the top
  cProfile hotspots of the heaviest config.  Machine-local and noisy;
  never gated.

Determinism discipline: before every measured config the harness clears
the process-level ``lru_cache``\\ s (:func:`repro.perf.config.
reset_process_caches`) and zeroes the counters, so a config's counter
section does not depend on what ran earlier in the same process.

This module is imported lazily by the CLI (not from
``repro.perf.__init__``) because it pulls in the analysis layer, which
itself imports the crypto/coding modules that import ``repro.perf``.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import os
import platform
import pstats
import time
from contextlib import nullcontext as _nullcontext
from typing import Any, Sequence

from . import config, counters

__all__ = [
    "QUICK_CONFIGS",
    "FULL_CONFIGS",
    "COMPARISON_CONFIG",
    "SCHED_BATTERY",
    "backend_comparison",
    "config_key",
    "hotpath_document",
    "check_counters",
    "save_document",
    "load_document",
]

SCHEMA = "repro-hotpath-bench-v1"

#: CI-sized configs: a few seconds total, still exercising every hot
#: subsystem (RS, Merkle, GF, fast-path network, FindPrefix loop).
QUICK_CONFIGS: tuple[dict[str, Any], ...] = (
    dict(protocol="fixed_length_ca", n=4, t=1, ell=256,
         seed=0, spread="spread"),
    dict(protocol="fixed_length_ca", n=7, t=2, ell=1024,
         seed=4, spread="clustered"),
    dict(protocol="pi_z", n=7, t=2, ell=1024, seed=0, spread="clustered"),
)

#: The full set adds the long-value configs the paper's bounds are
#: about, including the ``ell = 65536`` and ``ell = 262144`` long-value
#: benchmark points the vectorized backend is aimed at.
FULL_CONFIGS: tuple[dict[str, Any], ...] = QUICK_CONFIGS + (
    dict(protocol="fixed_length_ca", n=10, t=3, ell=4096,
         seed=0, spread="spread"),
    dict(protocol="fixed_length_ca", n=7, t=2, ell=65536,
         seed=4, spread="clustered"),
    dict(protocol="fixed_length_ca", n=7, t=2, ell=262144,
         seed=4, spread="clustered"),
    dict(protocol="pi_z", n=7, t=2, ell=16384, seed=0, spread="spread"),
)

#: The backend A/B case: the longest-``ell`` FixedLengthCA point, where
#: the coding/crypto kernels dominate wall time.  Run under every
#: available backend by :func:`backend_comparison`; the deterministic
#: entries must match byte for byte.
COMPARISON_CONFIG: dict[str, Any] = dict(
    protocol="fixed_length_ca", n=7, t=2, ell=524288,
    seed=4, spread="clustered",
)


#: The scheduler micro-battery: a fleet of small instances run twice in
#: this process -- once serially, once through the cooperative
#: multiplex scheduler -- with the multiplexed counters (including the
#: ``sched_*`` family) recorded as a deterministic entry.  Serial and
#: multiplexed passes must agree byte for byte; a divergence perturbs
#: the entry's output digest, so the zero-tolerance ``--check`` gate
#: catches scheduler regressions alongside kernel ones.
SCHED_BATTERY: dict[str, Any] = dict(
    protocol="fixed_length_ca", n=4, t=1, ell=64,
    spread="clustered", instances=8,
)

_SCHED_KEY = (
    f"sched/multiplex/{SCHED_BATTERY['protocol']}"
    f"/n{SCHED_BATTERY['n']}/t{SCHED_BATTERY['t']}"
    f"/ell{SCHED_BATTERY['ell']}/x{SCHED_BATTERY['instances']}"
)


def config_key(cfg: dict[str, Any]) -> str:
    """Stable human-readable id for one profiled config."""
    return (
        f"{cfg['protocol']}/n{cfg['n']}/t{cfg['t']}/ell{cfg['ell']}"
        f"/seed{cfg['seed']}/{cfg['spread']}"
    )


def _output_digest(output: Any) -> str:
    """Short digest of an execution's agreed output.

    Large-``ell`` outputs are multi-kilobit integers, far beyond the
    interpreter's int->str conversion limit, so integers are digested
    from their two's-complement bytes rather than their repr.
    """
    if isinstance(output, int):
        width = (output.bit_length() + 8) // 8 + 1
        data = b"int:" + output.to_bytes(width, "big", signed=True)
    else:
        data = repr(output).encode()
    return hashlib.sha256(data).hexdigest()[:16]


def _run_config(cfg: dict[str, Any]) -> tuple[dict[str, Any], float]:
    """Run one config cold; return its deterministic entry + wall time."""
    from ..analysis.experiments import measure

    config.reset_process_caches()
    counters.reset()
    started = time.perf_counter()
    m = measure(**cfg)
    wall_s = time.perf_counter() - started
    entry = {
        "params": dict(cfg),
        "counters": counters.snapshot(),
        "bits": m.bits,
        "rounds": m.rounds,
        "messages": m.messages,
        "output_sha256": _output_digest(m.output),
    }
    return entry, wall_s


def _run_sched_battery() -> tuple[dict[str, Any], float]:
    """Run the scheduler micro-battery; one deterministic entry.

    Both passes stay in-process (``workers=1``) so their counters land
    in this interpreter's ledger; the entry's counters are the
    multiplexed pass', and the serial pass' counters plus measurements
    are folded into the output digest -- equal passes hash like a
    single stable run, a divergence changes the digest and fails the
    zero-tolerance check.
    """
    from ..analysis.experiments import measure_case
    from ..sim.parallel import run_many

    battery = SCHED_BATTERY
    jobs = [
        dict(
            protocol=battery["protocol"], n=battery["n"], t=battery["t"],
            ell=battery["ell"], seed=seed, spread=battery["spread"],
        )
        for seed in range(battery["instances"])
    ]
    started = time.perf_counter()
    config.reset_process_caches()
    counters.reset()
    serial = [outcome.value for outcome in run_many(measure_case, jobs)]
    serial_counts = counters.snapshot()
    config.reset_process_caches()
    counters.reset()
    muxed = [
        outcome.value
        for outcome in run_many(
            measure_case, jobs, multiplex=battery["instances"]
        )
    ]
    mux_counts = counters.snapshot()
    wall_s = time.perf_counter() - started
    identical = serial == muxed and serial_counts == mux_counts
    digest_material = (
        [_output_digest(m.output) for m in muxed],
        "identical" if identical else "DIVERGED",
    )
    entry = {
        "params": dict(battery),
        "counters": mux_counts,
        "bits": sum(m.bits for m in muxed),
        "rounds": sum(m.rounds for m in muxed),
        "messages": sum(m.messages for m in muxed),
        "output_sha256": _output_digest(digest_material),
    }
    return entry, wall_s


def _hotspots(cfg: dict[str, Any], top: int) -> list[dict[str, Any]]:
    """Top ``top`` functions by cumulative time under cProfile."""
    from ..analysis.experiments import measure

    config.reset_process_caches()
    profiler = cProfile.Profile()
    profiler.enable()
    measure(**cfg)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: -item[1][3]
    ):
        filename, lineno, name = func
        if "cProfile" in name or filename == "~":
            continue
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
        if len(rows) >= top:
            break
    return rows


def backend_comparison(
    cfg: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run the comparison config under every available backend.

    Returns the ``backend_comparison`` section: per-backend wall time,
    whether the deterministic entries (counters, bits, rounds,
    messages, output digest) are byte-identical across backends, and
    the numpy-over-python speedup when both backends are present.  The
    wall times are machine-local; the ``identical`` verdict is not.
    """
    cfg = dict(COMPARISON_CONFIG if cfg is None else cfg)
    backends = config.available_backends()
    entries: dict[str, dict[str, Any]] = {}
    wall: dict[str, float] = {}
    for name in backends:
        with config.use_backend(name):
            entry, wall_s = _run_config(cfg)
        entries[name] = entry
        wall[name] = round(wall_s, 6)
    reference = entries[backends[0]]
    mismatches = [
        name for name in backends[1:] if entries[name] != reference
    ]
    section: dict[str, Any] = {
        "config": config_key(cfg),
        "backends": list(backends),
        "wall_s": wall,
        "identical": not mismatches,
        "counters": reference["counters"],
    }
    if mismatches:
        section["mismatching_backends"] = mismatches
    if "python" in wall and "numpy" in wall and wall["numpy"] > 0:
        section["speedup_numpy_over_python"] = round(
            wall["python"] / wall["numpy"], 2
        )
    return section


def hotpath_document(
    quick: bool = False,
    cprofile: bool = True,
    top: int = 15,
    configs: Sequence[dict[str, Any]] | None = None,
    backend: str | None = None,
    compare_backends: bool = True,
) -> dict[str, Any]:
    """Run the profile battery and build the benchmark document.

    ``backend`` pins the kernel backend for the battery (default: the
    process' resolved backend); the deterministic section is identical
    either way.  ``compare_backends`` additionally runs
    :data:`COMPARISON_CONFIG` under *every* available backend and
    records the A/B section (skipped automatically when only one
    backend is installed).
    """
    chosen = list(
        configs if configs is not None
        else (QUICK_CONFIGS if quick else FULL_CONFIGS)
    )
    deterministic: dict[str, Any] = {}
    wall: dict[str, float] = {}
    with config.use_backend(backend) if backend else _nullcontext():
        battery_backend = config.backend()
        for cfg in chosen:
            key = config_key(cfg)
            entry, wall_s = _run_config(cfg)
            deterministic[key] = entry
            wall[key] = round(wall_s, 6)
        if configs is None:
            # The scheduler micro-battery rides in both the quick and
            # the full battery (explicit --configs runs stay as given).
            entry, wall_s = _run_sched_battery()
            deterministic[_SCHED_KEY] = entry
            wall[_SCHED_KEY] = round(wall_s, 6)
        timing: dict[str, Any] = {
            "wall_s": wall,
            "backend": battery_backend,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        if cprofile and chosen:
            heaviest = max(chosen, key=lambda cfg: cfg["ell"] * cfg["n"])
            timing["hotspots"] = {
                "config": config_key(heaviest),
                "top": _hotspots(heaviest, top),
            }
    document = {
        "schema": SCHEMA,
        "quick": bool(quick) if configs is None else None,
        "deterministic": deterministic,
        "timing": timing,
    }
    if compare_backends and len(config.available_backends()) > 1:
        document["backend_comparison"] = backend_comparison()
    return document


def check_counters(
    new: dict[str, Any], baseline: dict[str, Any]
) -> tuple[list[str], list[str]]:
    """Diff two documents' deterministic sections at zero tolerance.

    Returns ``(errors, notes)``: *errors* are regressions or behaviour
    changes (any counter above baseline, any bits/rounds/messages/output
    mismatch, a profiled config absent from the baseline) and should
    fail CI; *notes* are strict improvements (counters below baseline),
    which mean the committed baseline is stale and should be refreshed.
    Baseline configs the new run skipped are also notes: the committed
    baseline covers the *full* battery while the CI gate runs the
    ``--quick`` subset of it.
    """
    errors: list[str] = []
    notes: list[str] = []
    new_det = new.get("deterministic", {})
    base_det = baseline.get("deterministic", {})
    for key in sorted(set(base_det) - set(new_det)):
        notes.append(f"{key}: baseline config not profiled in this run")
    for key in sorted(set(new_det) - set(base_det)):
        errors.append(f"{key}: config not in the baseline")
    for key in sorted(set(new_det) & set(base_det)):
        new_entry, base_entry = new_det[key], base_det[key]
        for scalar in ("bits", "rounds", "messages", "output_sha256"):
            if new_entry.get(scalar) != base_entry.get(scalar):
                errors.append(
                    f"{key}: {scalar} changed "
                    f"{base_entry.get(scalar)!r} -> {new_entry.get(scalar)!r}"
                )
        new_counts = new_entry.get("counters", {})
        base_counts = base_entry.get("counters", {})
        for name in sorted(set(new_counts) | set(base_counts)):
            after = new_counts.get(name, 0)
            before = base_counts.get(name, 0)
            if after > before:
                errors.append(
                    f"{key}: counter {name} regressed {before} -> {after}"
                )
            elif after < before:
                notes.append(
                    f"{key}: counter {name} improved {before} -> {after} "
                    "(refresh the committed baseline)"
                )
    return errors, notes


def save_document(document: dict[str, Any], path: str) -> str:
    """Write the benchmark document as stable, diffable JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_document(path: str) -> dict[str, Any]:
    """Read a benchmark document back."""
    with open(path) as handle:
        return json.load(handle)
