"""The ``repro profile`` harness: ``benchmarks/BENCH_hotpath.json``.

Runs a representative set of end-to-end configs and emits a two-section
benchmark document:

* ``deterministic`` -- per-config operation counters
  (:mod:`repro.perf.counters`), communication totals, and an output
  digest.  These are pure functions of the config: identical across
  runs, machines, and worker counts, so CI can diff them against a
  committed baseline at **zero tolerance** without flakes
  (:func:`check_counters`).
* ``timing`` -- wall-clock seconds per config plus (optionally) the top
  cProfile hotspots of the heaviest config.  Machine-local and noisy;
  never gated.

Determinism discipline: before every measured config the harness clears
the process-level ``lru_cache``\\ s (:func:`repro.perf.config.
reset_process_caches`) and zeroes the counters, so a config's counter
section does not depend on what ran earlier in the same process.

This module is imported lazily by the CLI (not from
``repro.perf.__init__``) because it pulls in the analysis layer, which
itself imports the crypto/coding modules that import ``repro.perf``.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import os
import platform
import pstats
import time
from typing import Any, Sequence

from . import config, counters

__all__ = [
    "QUICK_CONFIGS",
    "FULL_CONFIGS",
    "config_key",
    "hotpath_document",
    "check_counters",
    "save_document",
    "load_document",
]

SCHEMA = "repro-hotpath-bench-v1"

#: CI-sized configs: a few seconds total, still exercising every hot
#: subsystem (RS, Merkle, GF, fast-path network, FindPrefix loop).
QUICK_CONFIGS: tuple[dict[str, Any], ...] = (
    dict(protocol="fixed_length_ca", n=4, t=1, ell=256,
         seed=0, spread="spread"),
    dict(protocol="fixed_length_ca", n=7, t=2, ell=1024,
         seed=4, spread="clustered"),
    dict(protocol="pi_z", n=7, t=2, ell=1024, seed=0, spread="clustered"),
)

#: The full set adds the long-value configs the paper's bounds are
#: about, including the headline ``ell = 65536`` benchmark point.
FULL_CONFIGS: tuple[dict[str, Any], ...] = QUICK_CONFIGS + (
    dict(protocol="fixed_length_ca", n=10, t=3, ell=4096,
         seed=0, spread="spread"),
    dict(protocol="fixed_length_ca", n=7, t=2, ell=65536,
         seed=4, spread="clustered"),
    dict(protocol="pi_z", n=7, t=2, ell=16384, seed=0, spread="spread"),
)


def config_key(cfg: dict[str, Any]) -> str:
    """Stable human-readable id for one profiled config."""
    return (
        f"{cfg['protocol']}/n{cfg['n']}/t{cfg['t']}/ell{cfg['ell']}"
        f"/seed{cfg['seed']}/{cfg['spread']}"
    )


def _output_digest(output: Any) -> str:
    """Short digest of an execution's agreed output.

    Large-``ell`` outputs are multi-kilobit integers, far beyond the
    interpreter's int->str conversion limit, so integers are digested
    from their two's-complement bytes rather than their repr.
    """
    if isinstance(output, int):
        width = (output.bit_length() + 8) // 8 + 1
        data = b"int:" + output.to_bytes(width, "big", signed=True)
    else:
        data = repr(output).encode()
    return hashlib.sha256(data).hexdigest()[:16]


def _run_config(cfg: dict[str, Any]) -> tuple[dict[str, Any], float]:
    """Run one config cold; return its deterministic entry + wall time."""
    from ..analysis.experiments import measure

    config.reset_process_caches()
    counters.reset()
    started = time.perf_counter()
    m = measure(**cfg)
    wall_s = time.perf_counter() - started
    entry = {
        "params": dict(cfg),
        "counters": counters.snapshot(),
        "bits": m.bits,
        "rounds": m.rounds,
        "messages": m.messages,
        "output_sha256": _output_digest(m.output),
    }
    return entry, wall_s


def _hotspots(cfg: dict[str, Any], top: int) -> list[dict[str, Any]]:
    """Top ``top`` functions by cumulative time under cProfile."""
    from ..analysis.experiments import measure

    config.reset_process_caches()
    profiler = cProfile.Profile()
    profiler.enable()
    measure(**cfg)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: -item[1][3]
    ):
        filename, lineno, name = func
        if "cProfile" in name or filename == "~":
            continue
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
        if len(rows) >= top:
            break
    return rows


def hotpath_document(
    quick: bool = False,
    cprofile: bool = True,
    top: int = 15,
    configs: Sequence[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Run the profile battery and build the benchmark document."""
    chosen = list(
        configs if configs is not None
        else (QUICK_CONFIGS if quick else FULL_CONFIGS)
    )
    deterministic: dict[str, Any] = {}
    wall: dict[str, float] = {}
    for cfg in chosen:
        key = config_key(cfg)
        entry, wall_s = _run_config(cfg)
        deterministic[key] = entry
        wall[key] = round(wall_s, 6)
    timing: dict[str, Any] = {
        "wall_s": wall,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if cprofile and chosen:
        heaviest = max(chosen, key=lambda cfg: cfg["ell"] * cfg["n"])
        timing["hotspots"] = {
            "config": config_key(heaviest),
            "top": _hotspots(heaviest, top),
        }
    return {
        "schema": SCHEMA,
        "quick": bool(quick) if configs is None else None,
        "deterministic": deterministic,
        "timing": timing,
    }


def check_counters(
    new: dict[str, Any], baseline: dict[str, Any]
) -> tuple[list[str], list[str]]:
    """Diff two documents' deterministic sections at zero tolerance.

    Returns ``(errors, notes)``: *errors* are regressions or behaviour
    changes (any counter above baseline, any bits/rounds/messages/output
    mismatch, a profiled config absent from the baseline) and should
    fail CI; *notes* are strict improvements (counters below baseline),
    which mean the committed baseline is stale and should be refreshed.
    Baseline configs the new run skipped are also notes: the committed
    baseline covers the *full* battery while the CI gate runs the
    ``--quick`` subset of it.
    """
    errors: list[str] = []
    notes: list[str] = []
    new_det = new.get("deterministic", {})
    base_det = baseline.get("deterministic", {})
    for key in sorted(set(base_det) - set(new_det)):
        notes.append(f"{key}: baseline config not profiled in this run")
    for key in sorted(set(new_det) - set(base_det)):
        errors.append(f"{key}: config not in the baseline")
    for key in sorted(set(new_det) & set(base_det)):
        new_entry, base_entry = new_det[key], base_det[key]
        for scalar in ("bits", "rounds", "messages", "output_sha256"):
            if new_entry.get(scalar) != base_entry.get(scalar):
                errors.append(
                    f"{key}: {scalar} changed "
                    f"{base_entry.get(scalar)!r} -> {new_entry.get(scalar)!r}"
                )
        new_counts = new_entry.get("counters", {})
        base_counts = base_entry.get("counters", {})
        for name in sorted(set(new_counts) | set(base_counts)):
            after = new_counts.get(name, 0)
            before = base_counts.get(name, 0)
            if after > before:
                errors.append(
                    f"{key}: counter {name} regressed {before} -> {after}"
                )
            elif after < before:
                notes.append(
                    f"{key}: counter {name} improved {before} -> {after} "
                    "(refresh the committed baseline)"
                )
    return errors, notes


def save_document(document: dict[str, Any], path: str) -> str:
    """Write the benchmark document as stable, diffable JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_document(path: str) -> dict[str, Any]:
    """Read a benchmark document back."""
    with open(path) as handle:
        return json.load(handle)
