"""Global switch for the correctness-neutral hot-path caches.

The caches this controls are *byte-for-byte correctness-neutral*: with
them on or off, every execution produces identical outputs, traces, and
``CommunicationStats``.  The switch exists so tests can prove exactly
that (run one config cold, run it warm, compare everything), and so
micro-benchmarks can quantify what each cache buys.

Gated caches:

* the per-party RS-encode + Merkle-forest memo
  (:func:`repro.ba.distribution.encode_and_accumulate` /
  ``decode_with_check``), keyed by ``(n, k, kappa, payload)`` and stored
  on the execution-scoped :attr:`repro.sim.party.Context.cache`;
* the inverted-Vandermonde decode-matrix reuse in
  :meth:`repro.coding.reed_solomon.ReedSolomonCode.decode`, keyed by the
  sorted share-index tuple.

Not gated (pure code paths, not state): the batched Merkle leaf
hashing, the memoized ``wire_bits`` on frozen message dataclasses, and
the zero-fault network fast path -- those compute the same values
through cheaper code, so there is nothing to switch off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "caches_enabled",
    "set_caches_enabled",
    "caches",
    "reset_process_caches",
]

_caches_enabled = True


def caches_enabled() -> bool:
    """Whether the execution-scoped hot-path caches are active."""
    return _caches_enabled


def set_caches_enabled(enabled: bool) -> None:
    """Turn the hot-path caches on or off globally."""
    global _caches_enabled
    _caches_enabled = bool(enabled)


@contextmanager
def caches(enabled: bool) -> Iterator[None]:
    """Temporarily force the caches on or off (A/B test helper)."""
    previous = _caches_enabled
    set_caches_enabled(enabled)
    try:
        yield
    finally:
        set_caches_enabled(previous)


def reset_process_caches() -> None:
    """Drop every process-level memo so the next run starts cold.

    Used by the profiling harness before each measured config: with the
    process-level ``lru_cache``\\ s cleared, the deterministic counter
    section of ``BENCH_hotpath.json`` is identical no matter how many
    configs ran earlier in the same process.
    """
    from ..coding.reed_solomon import rs_code
    from ..crypto import merkle

    rs_code.cache_clear()
    merkle._empty_hash.cache_clear()
    merkle._frame_prefix.cache_clear()
    merkle._length_frame.cache_clear()
