"""Runtime configuration of the hot-path layer: caches and backends.

Two orthogonal switches live here, both *byte-for-byte
correctness-neutral*: with any combination of settings, every execution
produces identical outputs, traces, ``CommunicationStats``, and
deterministic operation counters.  The switches exist so tests can prove
exactly that (run one config under each setting, compare everything) and
so benchmarks can quantify what each layer buys.

**Caches** (:func:`caches_enabled` / :func:`set_caches_enabled`):

* the per-party RS-encode + Merkle-forest memo
  (:func:`repro.ba.distribution.encode_and_accumulate` /
  ``decode_with_check``), keyed by ``(n, k, kappa, payload)`` and stored
  on the execution-scoped :attr:`repro.sim.party.Context.cache`;
* the inverted-Vandermonde decode-matrix reuse in
  :meth:`repro.coding.reed_solomon.ReedSolomonCode.decode`, a
  process-wide memo keyed by the *full* code parameters
  ``(field degree, field modulus, n, k, share indices)``.

**Backends** (:func:`backend` / :func:`set_backend`): the GF(2^kappa),
Reed-Solomon, and Merkle kernels come in two interchangeable
implementations --

* ``"python"`` -- the pure-python scalar reference: log/exp table
  lookups element by element, ``struct``-based symbol framing,
  ``hash_parts``-style Merkle hashing.  No third-party dependencies;
  the default when numpy is not installed.
* ``"numpy"`` -- table-batched kernels: log/exp gathers over contiguous
  ``int64`` arrays, vectorised Vandermonde application, single-call
  sha256 over packed leaf/node buffers.  The default whenever numpy is
  importable.

Selection order: an explicit :func:`set_backend` wins, then the
``REPRO_BACKEND`` environment variable, then the default above.  The
resolved choice is process-local; :func:`reset_backend` drops any
explicit selection so the next :func:`backend` call re-reads the
environment (the "per-process reset" used by worker pools and tests).

Not gated (pure code paths, not state): the memoized ``wire_bits`` on
frozen message dataclasses and the zero-fault network fast path -- those
compute the same values through cheaper code, so there is nothing to
switch off.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "BACKEND_ENV",
    "available_backends",
    "backend",
    "caches",
    "caches_enabled",
    "default_backend",
    "numpy_available",
    "reset_backend",
    "reset_process_caches",
    "set_backend",
    "set_caches_enabled",
    "use_backend",
]

_caches_enabled = True

BACKEND_ENV = "REPRO_BACKEND"

#: Every backend name this build knows how to dispatch to.
_BACKEND_NAMES = ("python", "numpy")

_backend: str | None = None  # explicit selection; None = env/default
_numpy_available: bool | None = None  # lazily probed, then pinned


def caches_enabled() -> bool:
    """Whether the execution-scoped hot-path caches are active."""
    return _caches_enabled


def set_caches_enabled(enabled: bool) -> None:
    """Turn the hot-path caches on or off globally."""
    global _caches_enabled
    _caches_enabled = bool(enabled)


@contextmanager
def caches(enabled: bool) -> Iterator[None]:
    """Temporarily force the caches on or off (A/B test helper)."""
    previous = _caches_enabled
    set_caches_enabled(enabled)
    try:
        yield
    finally:
        set_caches_enabled(previous)


# -- backend selection -----------------------------------------------------


def numpy_available() -> bool:
    """Whether the numpy backend can be selected in this process."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401

            _numpy_available = True
        except ImportError:
            _numpy_available = False
    return _numpy_available


def available_backends() -> tuple[str, ...]:
    """The backend names selectable in this process."""
    if numpy_available():
        return _BACKEND_NAMES
    return ("python",)


def default_backend() -> str:
    """``"numpy"`` when numpy is importable, else ``"python"``."""
    return "numpy" if numpy_available() else "python"


def _validate_backend(name: str) -> str:
    if name not in _BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; choose from {_BACKEND_NAMES}"
        )
    if name == "numpy" and not numpy_available():
        raise ValueError(
            "backend 'numpy' requested but numpy is not installed "
            "(pip install 'repro[numpy]')"
        )
    return name


def backend() -> str:
    """The active kernel backend: ``"python"`` or ``"numpy"``.

    Resolution order: explicit :func:`set_backend` > the
    ``REPRO_BACKEND`` environment variable > :func:`default_backend`.
    """
    if _backend is not None:
        return _backend
    from_env = os.environ.get(BACKEND_ENV)
    if from_env:
        return _validate_backend(from_env)
    return default_backend()


def set_backend(name: str | None) -> None:
    """Pin the kernel backend for this process (``None`` un-pins it)."""
    global _backend
    _backend = None if name is None else _validate_backend(name)


def reset_backend() -> None:
    """Per-process reset: drop any explicit selection.

    The next :func:`backend` call re-reads ``REPRO_BACKEND`` / the
    default, so freshly forked workers and test fixtures start from the
    environment, not from whatever the parent pinned earlier.
    """
    set_backend(None)


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Temporarily pin the backend (differential-test helper)."""
    global _backend
    previous = _backend
    set_backend(name)
    try:
        yield
    finally:
        _backend = previous


def reset_process_caches() -> None:
    """Drop every process-level memo so the next run starts cold.

    Used by the profiling harness before each measured config: with the
    process-level caches cleared, the deterministic counter section of
    ``BENCH_hotpath.json`` is identical no matter how many configs ran
    earlier in the same process (and no matter which backend they ran
    on).
    """
    from ..coding import reed_solomon
    from ..crypto import merkle

    reed_solomon.rs_code.cache_clear()
    reed_solomon.clear_decode_matrix_cache()
    merkle._empty_hash.cache_clear()
    merkle._frame_prefix.cache_clear()
    merkle._length_frame.cache_clear()
