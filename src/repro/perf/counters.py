"""Deterministic operation counters for the hot-path subsystems.

Wall-clock numbers are machine-local and noisy; the *number of
operations* a deterministic execution performs is not.  The crypto,
coding, and simulation hot paths bump a named counter per heavyweight
operation:

===================== ====================================================
counter               bumped by
===================== ====================================================
``sha256``            every ``hashlib.sha256`` invocation in
                      :mod:`repro.crypto` (hashing, Merkle leaf/node
                      hashes, verify chains)
``merkle_build``      every :func:`repro.crypto.merkle.build`
``merkle_verify``     every :func:`repro.crypto.merkle.verify`
``rs_encode``         every ``RS.ENCODE`` (:meth:`ReedSolomonCode.encode`)
``rs_decode``         every ``RS.DECODE`` (:meth:`ReedSolomonCode.decode`)
``gf_matmul``         every :meth:`BinaryField.matmul`
``gf_matrix_invert``  every Gauss-Jordan inversion actually computed
                      (cache hits on the decode matrix do not count)
``encode_cache_hit``  RS-encode + Merkle-forest memo hits (per party)
``encode_cache_miss`` the corresponding cold computations
``net_rounds``        synchronous rounds the network delivered
``net_messages``      payloads placed in inboxes (honest + byzantine)
``sched_instances``   protocol executions the lockstep scheduler armed
                      (one per :meth:`SynchronousNetwork.begin`,
                      whether driven serially or multiplexed)
``sched_rounds``      scheduler round-loop iterations that executed a
                      round (including rounds where every generator
                      terminated and no traffic flowed, which
                      ``net_rounds`` does not count)
``sched_resumes``     party generator resumes actually performed
                      (finished and down parties are skipped without
                      touching their generator); batched into one bump
                      per round
``transport_resyncs`` round-resync escalations the lossy/partial-sync
                      synchronizer performed (one per exhausted slot
                      budget that was retried instead of timing out)
``transport_beacons`` resync beacon frames exchanged during those
                      escalations
``guard_checks``      byzantine-origin payloads the wire guards
                      inspected (:mod:`repro.sim.wire`); honest traffic
                      is never checked, so the no-fault path bumps
                      nothing
``guard_quarantined`` payloads the guards discarded (ill-typed,
                      over-deep, oversized, or over a sender's
                      per-round byte ceiling)
===================== ====================================================

Counters are process-global (observability, not protocol state) and
additive; use :func:`capture` to attribute the ops of one code block.
The counts of one execution are deterministic because the execution is
-- the only process-level caches that could make a *second* run in the
same process cheaper are cleared by
:func:`repro.perf.config.reset_process_caches`, which the profiling
harness calls before every measured config.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["bump", "snapshot", "reset", "capture"]

_counts: dict[str, int] = {}


def bump(name: str, delta: int = 1) -> None:
    """Add ``delta`` to the named counter (creating it at zero)."""
    _counts[name] = _counts.get(name, 0) + delta


def snapshot() -> dict[str, int]:
    """A sorted copy of every counter's current value."""
    return dict(sorted(_counts.items()))


def reset() -> None:
    """Zero every counter."""
    _counts.clear()


@contextmanager
def capture() -> Iterator[dict[str, int]]:
    """Collect the operations performed inside the ``with`` block.

    Yields a dict that is filled (sorted, zero entries omitted) when the
    block exits; nesting works because only differences are recorded.
    """
    before = dict(_counts)
    box: dict[str, int] = {}
    try:
        yield box
    finally:
        for name in sorted(_counts):
            diff = _counts[name] - before.get(name, 0)
            if diff:
                box[name] = diff
