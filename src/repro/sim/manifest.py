"""Resumable campaign manifests: a crash-safe JSON-lines journal.

A long adversary-search or fuzz campaign is only as useful as its
ability to survive the machine it runs on.  This module turns a
campaign into an append-only **journal**: one header line describing
the campaign's configuration, then one record per completed case with
a content digest over the ``(case, outcome)`` pair.  The journal *is*
the checkpoint -- resuming replays the records through the engine's
state-update logic without re-executing anything, then continues from
the first missing case.

Design rules that make resumed campaigns byte-identical to
uninterrupted ones:

- every case is seeded by :func:`repro.sim.parallel.derive_seed`, so a
  case's execution is a pure function of the journal's campaign seed
  and the case's position -- not of which process ran it or when;
- records carry only machine-independent values (no wall-clock, no
  retry counts) and their digests are computed over a canonical JSON
  encoding (sorted keys, no whitespace variance);
- appends are flushed and ``fsync``-ed per record, and a torn trailing
  line (the crash landed mid-write) is detected and truncated on open;
- the campaign's *target* (how many executions to run) is an argument
  of the run, not of the journal: "interrupted at k, resumed to N" and
  "ran to N" append the same N records by construction.

Format (one JSON object per line)::

    {"kind": "header", "format": "repro-manifest/1", "config": {...}}
    {"kind": "case", "index": 0, "case": {...}, "outcome": {...},
     "digest": "<sha256-hex-16>"}
    ...
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "MANIFEST_FORMAT",
    "CampaignJournal",
    "JournalCorrupt",
    "record_digest",
]

MANIFEST_FORMAT = "repro-manifest/1"


class JournalCorrupt(ValueError):
    """A journal line failed validation (bad digest, bad structure)."""


def _canonical(value: Any) -> str:
    """Canonical JSON encoding: the digest's stable wire form."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def record_digest(index: int, case: dict, outcome: dict) -> str:
    """Content digest of one journal record (first 16 hex chars).

    Computed over the canonical encoding of ``(index, case, outcome)``;
    identical on every host and worker count because the inputs are.
    """
    payload = _canonical({"index": index, "case": case, "outcome": outcome})
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class JournalRecord:
    """One completed case as recorded in the journal."""

    index: int
    case: dict
    outcome: dict
    digest: str = field(default="", compare=False)

    def verify(self) -> None:
        expected = record_digest(self.index, self.case, self.outcome)
        if self.digest != expected:
            raise JournalCorrupt(
                f"record {self.index}: digest {self.digest!r} does not "
                f"match content digest {expected!r}"
            )


class CampaignJournal:
    """Append-only JSONL journal for one campaign.

    Create with :meth:`create` (writes the header) or :meth:`open_`
    (validates the header + existing records, truncates a torn tail).
    ``config`` is the campaign's full configuration -- a resume
    validates it against the caller's requested configuration so a
    journal can never silently continue under different parameters.
    """

    def __init__(self, path: str, config: dict):
        self.path = path
        self.config = config
        self.records: list[JournalRecord] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, path: str, config: dict) -> "CampaignJournal":
        """Start a fresh journal at ``path`` (parent dirs created)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        journal = cls(path, dict(config))
        header = {
            "kind": "header",
            "format": MANIFEST_FORMAT,
            "config": journal.config,
        }
        with open(path, "w") as handle:
            handle.write(_canonical(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    @classmethod
    def open_(cls, path: str) -> "CampaignJournal":
        """Open an existing journal, validating every intact record.

        A torn trailing line (no newline, truncated JSON -- the writer
        died mid-append) is dropped and the file truncated to the last
        intact record; any *earlier* corruption is fatal
        (:class:`JournalCorrupt`), since silently skipping interior
        records would desynchronise resumed engine state.
        """
        with open(path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        # a well-formed journal ends with a newline -> last element "".
        torn = lines[-1] != b""
        body = lines[:-1]
        good_bytes = 0
        header: dict | None = None
        records: list[JournalRecord] = []
        for lineno, line in enumerate(body):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalCorrupt(
                    f"{path}:{lineno + 1}: unparseable journal line"
                ) from exc
            if lineno == 0:
                if (
                    entry.get("kind") != "header"
                    or entry.get("format") != MANIFEST_FORMAT
                ):
                    raise JournalCorrupt(
                        f"{path}: not a {MANIFEST_FORMAT} journal header"
                    )
                header = entry
            else:
                if entry.get("kind") != "case":
                    raise JournalCorrupt(
                        f"{path}:{lineno + 1}: unexpected kind "
                        f"{entry.get('kind')!r}"
                    )
                record = JournalRecord(
                    index=entry["index"],
                    case=entry["case"],
                    outcome=entry["outcome"],
                    digest=entry.get("digest", ""),
                )
                record.verify()
                if record.index != len(records):
                    raise JournalCorrupt(
                        f"{path}:{lineno + 1}: record index "
                        f"{record.index}, expected {len(records)}"
                    )
                records.append(record)
            good_bytes += len(line) + 1
        if header is None:
            raise JournalCorrupt(f"{path}: empty journal (no header)")
        if torn:
            # crash landed mid-append: drop the partial line so the
            # next append starts on a clean boundary.
            with open(path, "r+b") as handle:
                handle.truncate(good_bytes)
        journal = cls(path, header["config"])
        journal.records = records
        return journal

    # -- appends ----------------------------------------------------------

    def append(self, case: dict, outcome: dict) -> JournalRecord:
        """Record one completed case; durable before returning."""
        record = JournalRecord(
            index=len(self.records),
            case=case,
            outcome=outcome,
            digest=record_digest(len(self.records), case, outcome),
        )
        entry = {
            "kind": "case",
            "index": record.index,
            "case": record.case,
            "outcome": record.outcome,
            "digest": record.digest,
        }
        with open(self.path, "a") as handle:
            handle.write(_canonical(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.records.append(record)
        return record

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.records)

    def require_config(self, config: dict) -> None:
        """Fail loudly when a resume requests different parameters."""
        if self.config != config:
            mismatched = sorted(
                key
                for key in set(self.config) | set(config)
                if self.config.get(key) != config.get(key)
            )
            raise ValueError(
                f"journal {self.path} was written with a different "
                f"campaign configuration (mismatched: {mismatched}); "
                "resume with the original parameters or start a new "
                "manifest"
            )
