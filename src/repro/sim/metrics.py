"""Communication and round accounting for simulated executions.

``BITS_l(PI)`` in the paper is the total number of bits sent by *honest*
parties; :class:`CommunicationStats` tracks exactly that, with per-channel
and per-party breakdowns so benchmarks can attribute cost to individual
subprotocols (e.g. how much of a `PI_Z` run was spent inside `PI_lBA+`'s
distributing step versus the underlying `PI_BA` invocations).

When an execution runs over a :class:`~repro.sim.lossy.LossyTransport`,
the synchronizer's overhead -- retransmitted copies, acknowledgement
frames, and the physical transmission slots spent restoring lockstep --
is accounted *separately* from the protocol's own ``honest_bits``, so
the paper's ``BITS_l(PI)`` figure stays comparable across perfect and
lossy links while the resilience overhead remains measurable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["CommunicationStats"]


@dataclass(slots=True)
class CommunicationStats:
    """Mutable accumulator of communication metrics for one execution."""

    honest_bits: int = 0
    honest_messages: int = 0
    rounds: int = 0
    #: wall-clock seconds the simulated execution took (set by the
    #: simulator; excluded from equality so that determinism checks can
    #: compare stats across runs and machines).
    wall_s: float = field(default=0.0, compare=False)
    bits_by_channel: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bits_by_party: dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_channel: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: resilience-layer overhead (lossy transport + crash recovery):
    #: retransmitted honest copies beyond the first transmission, and the
    #: acknowledgement frames of the round synchronizer.  Deliberately
    #: NOT folded into ``honest_bits`` -- the paper's ``BITS_l(PI)``
    #: counts the protocol, not the link layer underneath it.
    retrans_bits: int = 0
    retrans_messages: int = 0
    ack_bits: int = 0
    ack_messages: int = 0
    #: physical transmission slots the round synchronizer simulated on
    #: top of the logical rounds (0 on a perfect network).
    transport_slots: int = 0
    #: partial-synchrony escalation overhead: round-resync beacon frames
    #: exchanged when a slot budget was exhausted and the synchronizer
    #: escalated instead of dying, plus the retry attempts themselves.
    #: Like the retrans/ack fields these never touch ``honest_bits`` --
    #: pre-GST slowness costs overhead, not protocol-level bits.
    beacon_bits: int = 0
    beacon_messages: int = 0
    #: escalated retry attempts performed (one per exhausted budget that
    #: was followed by a resync + retry rather than a hard timeout).
    resync_attempts: int = 0
    #: logical rounds that needed more than one synchronization attempt.
    escalated_rounds: int = 0
    #: hostile-payload quarantine (wire guards, PR 9): byzantine-origin
    #: messages discarded by honest parties for violating the wire
    #: bounds, and the (work-capped) measured size of that traffic.
    #: Never folded into ``honest_bits`` -- rejected traffic is the
    #: adversary's spend, not the protocol's ``BITS_l(PI)``.
    quarantined_messages: int = 0
    rejected_bits: int = 0

    def record_send(self, sender: int, channel: str, bits: int) -> None:
        """Account one honest point-to-point message of ``bits`` bits."""
        self.honest_bits += bits
        self.honest_messages += 1
        self.bits_by_channel[channel] += bits
        self.bits_by_party[sender] += bits
        self.messages_by_channel[channel] += 1

    def record_round_sends(
        self,
        channel: str,
        sender_bits: list[tuple[int, int]],
        messages: int,
        bits: int,
    ) -> None:
        """Account one lockstep round's honest traffic in a single batch.

        Equivalent to ``messages`` individual :meth:`record_send` calls
        on ``channel`` -- lockstep guarantees all honest senders of one
        round share a channel -- but with the per-message attribute
        churn collapsed into one update.  ``sender_bits`` lists
        ``(party, bits)`` per sender **in party order** and only for
        parties that sent at least one priced message, so the key
        insertion order of ``bits_by_party`` matches the per-message
        path exactly (dict equality in determinism suites compares
        content, but goldens serialised from these dicts preserve
        order).
        """
        self.honest_bits += bits
        self.honest_messages += messages
        self.bits_by_channel[channel] += bits
        self.messages_by_channel[channel] += messages
        bits_by_party = self.bits_by_party
        for sender, sent in sender_bits:
            bits_by_party[sender] += sent

    def record_round(self) -> None:
        """Account one simulated round (or async scheduler step)."""
        self.rounds += 1

    def record_retransmit(self, bits: int) -> None:
        """Account one retransmitted copy of an honest payload."""
        self.retrans_bits += bits
        self.retrans_messages += 1

    def record_ack(self, bits: int) -> None:
        """Account one acknowledgement frame of the round synchronizer."""
        self.ack_bits += bits
        self.ack_messages += 1

    def record_slots(self, slots: int) -> None:
        """Account ``slots`` physical transmission slots for one round."""
        self.transport_slots += slots

    def record_beacons(self, frames: int, bits_per_frame: int) -> None:
        """Account one round-resync beacon exchange (``frames`` frames)."""
        self.beacon_messages += frames
        self.beacon_bits += frames * bits_per_frame

    def record_resync(self, escalated_round: bool = False) -> None:
        """Account one escalated retry of an exhausted slot budget."""
        self.resync_attempts += 1
        if escalated_round:
            self.escalated_rounds += 1

    def record_quarantine(self, bits: int) -> None:
        """Account one quarantined byzantine message of ``bits`` bits.

        ``bits`` is the guard's work-capped measurement (a lower bound
        for payloads whose walk exited early), so ``rejected_bits`` is
        an attribution figure, not an exact wire size.
        """
        self.quarantined_messages += 1
        self.rejected_bits += bits

    @property
    def resilience_overhead_bits(self) -> int:
        """Total link-layer bits spent restoring the lockstep abstraction."""
        return self.retrans_bits + self.ack_bits + self.beacon_bits

    def summary_dict(self) -> dict[str, int]:
        """Deterministic scalar summary of one execution's accounting.

        Used by the campaign journal (:mod:`repro.sim.manifest`) and the
        adversary-search engine: only machine-independent integers, so a
        record's digest is identical on every host and worker count.
        ``wall_s`` is deliberately excluded (machine-local noise).
        """
        return {
            "honest_bits": self.honest_bits,
            "honest_messages": self.honest_messages,
            "rounds": self.rounds,
            "retrans_bits": self.retrans_bits,
            "ack_bits": self.ack_bits,
            "beacon_bits": self.beacon_bits,
            "transport_slots": self.transport_slots,
            "resync_attempts": self.resync_attempts,
            "escalated_rounds": self.escalated_rounds,
            "quarantined_messages": self.quarantined_messages,
            "rejected_bits": self.rejected_bits,
        }

    def channel_report(self) -> list[tuple[str, int, int]]:
        """Return ``(channel, bits, messages)`` rows sorted by bits desc."""
        rows = [
            (channel, bits, self.messages_by_channel[channel])
            for channel, bits in self.bits_by_channel.items()
        ]
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows

    def bits_for_prefix(self, prefix: str) -> int:
        """Total honest bits on channels whose label starts with ``prefix``."""
        return sum(
            bits
            for channel, bits in self.bits_by_channel.items()
            if channel.startswith(prefix)
        )
