"""Communication and round accounting for simulated executions.

``BITS_l(PI)`` in the paper is the total number of bits sent by *honest*
parties; :class:`CommunicationStats` tracks exactly that, with per-channel
and per-party breakdowns so benchmarks can attribute cost to individual
subprotocols (e.g. how much of a `PI_Z` run was spent inside `PI_lBA+`'s
distributing step versus the underlying `PI_BA` invocations).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["CommunicationStats"]


@dataclass
class CommunicationStats:
    """Mutable accumulator of communication metrics for one execution."""

    honest_bits: int = 0
    honest_messages: int = 0
    rounds: int = 0
    #: wall-clock seconds the simulated execution took (set by the
    #: simulator; excluded from equality so that determinism checks can
    #: compare stats across runs and machines).
    wall_s: float = field(default=0.0, compare=False)
    bits_by_channel: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bits_by_party: dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_channel: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record_send(self, sender: int, channel: str, bits: int) -> None:
        """Account one honest point-to-point message of ``bits`` bits."""
        self.honest_bits += bits
        self.honest_messages += 1
        self.bits_by_channel[channel] += bits
        self.bits_by_party[sender] += bits
        self.messages_by_channel[channel] += 1

    def record_round(self) -> None:
        """Account one simulated round (or async scheduler step)."""
        self.rounds += 1

    def channel_report(self) -> list[tuple[str, int, int]]:
        """Return ``(channel, bits, messages)`` rows sorted by bits desc."""
        rows = [
            (channel, bits, self.messages_by_channel[channel])
            for channel, bits in self.bits_by_channel.items()
        ]
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows

    def bits_for_prefix(self, prefix: str) -> int:
        """Total honest bits on channels whose label starts with ``prefix``."""
        return sum(
            bits
            for channel, bits in self.bits_by_channel.items()
            if channel.startswith(prefix)
        )
