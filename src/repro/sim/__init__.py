"""Synchronous-network simulation substrate.

This subpackage implements the execution model the paper assumes
(Section 2): lockstep rounds over authenticated channels, a rushing
adaptive byzantine adversary, and bit-exact communication accounting --
plus the robustness layer on top of it: online invariant monitors
(:mod:`repro.sim.invariants`), a composable fault-injection plane
(:mod:`repro.sim.faults`), a chaos driver with shrinking repro
artifacts (:mod:`repro.sim.fuzz`), a deterministic process-pool
execution engine that fans independent cases out over workers
(:mod:`repro.sim.parallel`), and a resilience layer beneath the round
abstraction: lossy links with an ack/retransmit round synchronizer
(:mod:`repro.sim.lossy`), crash-recovery via per-party write-ahead logs
(:mod:`repro.sim.recovery`), graceful degradation to the
self-contained ``HighCostCA`` path (:mod:`repro.sim.supervisor`), and
a partial-synchrony plane -- GST-style transports with healing
partitions and link churn (:mod:`repro.sim.partial_sync`), PBFT-style
timeout escalation in the round synchronizer, and an escalation ladder
down to asynchronous Approximate Agreement.  On top of the chaos plane
sits the adversary-search engine (:mod:`repro.sim.search`): a
coverage-guided bandit optimizer over the composed fault space, with
crash-safe resumable campaign manifests (:mod:`repro.sim.manifest`).
Hostile-payload hardening rounds the plane out: typed wire limits with
deterministic quarantine of ill-formed byzantine traffic
(:mod:`repro.sim.wire`) and a payload-bomb adversary family that
attacks them (:mod:`repro.sim.bombs`).
"""

from .adversary import (
    DROP,
    AdaptiveCorruptionAdversary,
    Adversary,
    CrashAdversary,
    EquivocatingAdversary,
    KingTargetingAdversary,
    OutlierAdversary,
    PassiveAdversary,
    PrefixPoisonAdversary,
    RandomGarbageAdversary,
    RoundView,
    ScriptedAdversary,
    SplitVoteAdversary,
    WitnessSuppressionAdversary,
    standard_adversary_suite,
)
from .bombs import (
    BOMB_CATALOG,
    DeepNestAdversary,
    NearValidMutantAdversary,
    OversizeBlobAdversary,
    TypeConfusionAdversary,
    deep_nest,
)
from .faults import (
    ComposedAdversary,
    FaultInjector,
    FaultSpec,
    RecordingAdversary,
    ReplayAdversary,
)
from .invariants import (
    AgreementMonitor,
    BitBudgetMonitor,
    ConvexValidityMonitor,
    CrashBudgetMonitor,
    InvariantMonitor,
    LivenessMonitor,
    LockstepMonitor,
    RoundBudgetMonitor,
    default_monitors,
    paper_bit_budget,
    paper_round_budget,
)
from .lossy import (
    ACK_BITS,
    BEACON_BITS,
    LossyTransport,
    TimeoutEscalation,
    TransportTimeout,
)
from .manifest import CampaignJournal, JournalCorrupt
from .metrics import CommunicationStats
from .search import (
    SearchCell,
    SearchConfig,
    SearchEngine,
    SearchReport,
    run_search,
)
from .network import ExecutionResult, SynchronousNetwork, default_round_budget
from .parallel import CaseOutcome, derive_seed, resolve_workers, run_many
from .partial_sync import PartialSyncTransport, stabilization_time_of
from .recovery import (
    CrashEvent,
    CrashRestartAdversary,
    RecoveryConfig,
    RecoveryError,
    RecoveryManager,
    WriteAheadLog,
)
from .supervisor import FallbackRecord, run_with_escalation, run_with_fallback
from .combinators import run_parallel
from .party import Context, Outgoing, Proto, broadcast_round, exchange
from .runner import run_protocol
from .trace import RoundRecord, summarize_trace
from .sizing import bit_size
from .wire import WireGuard, WireLimits, inbox_digest, measure_payload

__all__ = [
    "ACK_BITS",
    "BEACON_BITS",
    "DROP",
    "AdaptiveCorruptionAdversary",
    "Adversary",
    "AgreementMonitor",
    "BOMB_CATALOG",
    "BitBudgetMonitor",
    "CampaignJournal",
    "CommunicationStats",
    "ComposedAdversary",
    "Context",
    "ConvexValidityMonitor",
    "CrashAdversary",
    "CrashBudgetMonitor",
    "CrashEvent",
    "CrashRestartAdversary",
    "DeepNestAdversary",
    "FallbackRecord",
    "LivenessMonitor",
    "LossyTransport",
    "PartialSyncTransport",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryManager",
    "TransportTimeout",
    "WriteAheadLog",
    "EquivocatingAdversary",
    "ExecutionResult",
    "FaultInjector",
    "FaultSpec",
    "InvariantMonitor",
    "JournalCorrupt",
    "KingTargetingAdversary",
    "LockstepMonitor",
    "NearValidMutantAdversary",
    "Outgoing",
    "OutlierAdversary",
    "OversizeBlobAdversary",
    "PassiveAdversary",
    "PrefixPoisonAdversary",
    "Proto",
    "RandomGarbageAdversary",
    "RecordingAdversary",
    "ReplayAdversary",
    "RoundBudgetMonitor",
    "RoundView",
    "ScriptedAdversary",
    "SplitVoteAdversary",
    "SearchCell",
    "SearchConfig",
    "SearchEngine",
    "SearchReport",
    "RoundRecord",
    "SynchronousNetwork",
    "TimeoutEscalation",
    "TypeConfusionAdversary",
    "WireGuard",
    "WireLimits",
    "WitnessSuppressionAdversary",
    "CaseOutcome",
    "bit_size",
    "broadcast_round",
    "deep_nest",
    "default_monitors",
    "default_round_budget",
    "derive_seed",
    "exchange",
    "inbox_digest",
    "measure_payload",
    "resolve_workers",
    "run_many",
    "paper_bit_budget",
    "paper_round_budget",
    "run_parallel",
    "run_protocol",
    "run_search",
    "run_with_escalation",
    "run_with_fallback",
    "stabilization_time_of",
    "summarize_trace",
    "standard_adversary_suite",
]
