"""Synchronous-network simulation substrate.

This subpackage implements the execution model the paper assumes
(Section 2): lockstep rounds over authenticated channels, a rushing
adaptive byzantine adversary, and bit-exact communication accounting.
"""

from .adversary import (
    DROP,
    AdaptiveCorruptionAdversary,
    Adversary,
    CrashAdversary,
    EquivocatingAdversary,
    KingTargetingAdversary,
    OutlierAdversary,
    PassiveAdversary,
    PrefixPoisonAdversary,
    RandomGarbageAdversary,
    RoundView,
    ScriptedAdversary,
    SplitVoteAdversary,
    WitnessSuppressionAdversary,
    standard_adversary_suite,
)
from .metrics import CommunicationStats
from .network import ExecutionResult, SynchronousNetwork
from .combinators import run_parallel
from .party import Context, Outgoing, Proto, broadcast_round, exchange
from .runner import run_protocol
from .trace import RoundRecord, summarize_trace
from .sizing import bit_size

__all__ = [
    "DROP",
    "AdaptiveCorruptionAdversary",
    "Adversary",
    "CommunicationStats",
    "Context",
    "CrashAdversary",
    "EquivocatingAdversary",
    "ExecutionResult",
    "KingTargetingAdversary",
    "Outgoing",
    "OutlierAdversary",
    "PassiveAdversary",
    "PrefixPoisonAdversary",
    "Proto",
    "RandomGarbageAdversary",
    "RoundView",
    "ScriptedAdversary",
    "SplitVoteAdversary",
    "RoundRecord",
    "SynchronousNetwork",
    "WitnessSuppressionAdversary",
    "bit_size",
    "broadcast_round",
    "exchange",
    "run_parallel",
    "run_protocol",
    "summarize_trace",
    "standard_adversary_suite",
]
