"""Graceful degradation: supervised execution with a HighCostCA fallback.

The online invariant monitors (:mod:`repro.sim.invariants`) turn the
paper's guarantees into hard faults: a detected ``PI_lBA+`` bit-budget
overrun or broken invariant raises
:class:`~repro.errors.ProtocolViolation` and the execution dies.  For a
chaos harness that is the right default -- but a *deployment* wants the
next-best thing: detect that the communication-optimal path has gone
wrong and still end with a convex-valid output.

:func:`run_with_fallback` provides exactly that.  It supervises a
primary execution; if the primary dies with a
:class:`~repro.errors.ProtocolViolation` (a monitor fired) or a
:class:`~repro.errors.SimulationError` (lockstep break, round-budget
exhaustion, transport timeout), it falls back to the self-contained
``HighCostCA`` protocol (Appendix A.4) on the same inputs -- the
``O(l n^3)``-bit workhorse whose guarantees rest on nothing but
``t < n/3`` -- and returns that result with a :class:`FallbackRecord`
attached to ``ExecutionResult.fallback``.

``HighCostCA`` operates on natural numbers; the supervisor embeds
arbitrary integer inputs by shifting them into N (the harness knows all
inputs) and un-shifting the agreed output, which preserves the convex
hull exactly.

The fallback run keeps the primary's corruption set but replaces the
adversary's *strategy* with spec-following corrupted parties: byzantine
strategies are protocol-shaped (they inspect channels and payloads of
the protocol they were written against) and cannot be meaningfully
re-driven against a different protocol.  ``HighCostCA``'s guarantees
hold against arbitrary byzantine behaviour regardless, so this choice
affects realism of the simulated attack, not soundness of the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ProtocolViolation, SimulationError
from .adversary import Adversary, PassiveAdversary
from .invariants import InvariantMonitor
from .lossy import LossyTransport
from .metrics import CommunicationStats
from .network import ExecutionResult, ProtocolFactory, SynchronousNetwork
from .recovery import CrashEvent, RecoveryConfig

__all__ = ["FallbackRecord", "run_with_fallback"]


@dataclass(frozen=True)
class FallbackRecord:
    """Why and how an execution degraded to the HighCostCA path."""

    #: exception class name of the primary failure.
    trigger: str
    #: human-readable description of the primary failure.
    detail: str
    #: monitor name when a :class:`ProtocolViolation` fired, else ``None``.
    monitor: str | None
    #: the shift applied to embed the inputs into N (output was
    #: un-shifted by the same amount).
    offset: int
    #: communication stats of the aborted primary execution.
    primary_stats: CommunicationStats | None = None

    def describe(self) -> str:
        via = f" via {self.monitor}" if self.monitor else ""
        return f"degraded to HighCostCA after {self.trigger}{via}: {self.detail}"


class _StaticCorruptions(PassiveAdversary):
    """Spec-following corrupted parties with a pinned corruption set."""

    def __init__(self, corrupted: frozenset[int]) -> None:
        super().__init__()
        self._corrupted = set(corrupted)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(self._corrupted)


def run_with_fallback(
    protocol_factory: ProtocolFactory,
    inputs: dict[int, Any] | list[Any],
    n: int,
    t: int,
    kappa: int = 128,
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
    trace: bool = False,
    monitors: Sequence[InvariantMonitor] = (),
    transport: LossyTransport | None = None,
    crashes: Sequence[CrashEvent | tuple[int, int, int]] | None = None,
    recovery: RecoveryConfig | bool | None = None,
    fallback_channel: str = "fallback/hc",
    fallback_factory: Callable[..., Any] | None = None,
) -> ExecutionResult:
    """Run the primary protocol; degrade to ``HighCostCA`` on failure.

    The primary execution gets the full resilience stack (monitors,
    transport, crash plane).  On :class:`ProtocolViolation` or
    :class:`SimulationError` the supervisor reruns the *inputs* through
    ``HighCostCA`` (or ``fallback_factory``) with the same corruption
    set, and returns that result with ``ExecutionResult.fallback`` set.
    Configuration errors and harness bugs still propagate -- only
    detected protocol misbehaviour degrades.

    Requires integer inputs (they are shifted into N for HighCostCA);
    non-integer inputs make the primary failure propagate unchanged.
    """
    if isinstance(inputs, list):
        inputs = dict(enumerate(inputs))
    primary = SynchronousNetwork(
        protocol_factory=protocol_factory,
        inputs=inputs,
        n=n,
        t=t,
        kappa=kappa,
        adversary=adversary,
        max_rounds=max_rounds,
        trace=trace,
        monitors=monitors,
        transport=transport,
        crashes=crashes,
        recovery=recovery,
    )
    try:
        return primary.run()
    except (ProtocolViolation, SimulationError) as failure:
        try:
            offset = _offset_into_naturals(inputs)
        except ConfigurationError:
            raise failure from None
        record = FallbackRecord(
            trigger=type(failure).__name__,
            detail=str(failure),
            monitor=getattr(failure, "monitor", None),
            offset=offset,
            primary_stats=primary.stats,
        )

    shifted = {party: value + offset for party, value in inputs.items()}
    if fallback_factory is None:
        from ..core.high_cost_ca import high_cost_ca

        fallback_factory = high_cost_ca

    fallback_net = SynchronousNetwork(
        protocol_factory=lambda ctx, v: fallback_factory(
            ctx, v, channel=fallback_channel
        ),
        inputs=shifted,
        n=n,
        t=t,
        kappa=kappa,
        adversary=_StaticCorruptions(frozenset(primary.corrupted)),
        max_rounds=max_rounds,
        trace=trace,
    )
    result = fallback_net.run()
    result.outputs = {
        party: value - offset for party, value in result.outputs.items()
    }
    result.fallback = record
    return result


def _offset_into_naturals(inputs: dict[int, Any]) -> int:
    """Shift embedding integer inputs into N (0 when already natural)."""
    values = list(inputs.values())
    if any(not isinstance(v, int) or isinstance(v, bool) for v in values):
        raise ConfigurationError(
            "the HighCostCA fallback needs integer inputs"
        )
    lowest = min(values)
    return -lowest if lowest < 0 else 0
