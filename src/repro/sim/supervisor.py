"""Graceful degradation: supervised execution with a HighCostCA fallback.

The online invariant monitors (:mod:`repro.sim.invariants`) turn the
paper's guarantees into hard faults: a detected ``PI_lBA+`` bit-budget
overrun or broken invariant raises
:class:`~repro.errors.ProtocolViolation` and the execution dies.  For a
chaos harness that is the right default -- but a *deployment* wants the
next-best thing: detect that the communication-optimal path has gone
wrong and still end with a convex-valid output.

:func:`run_with_fallback` provides exactly that.  It supervises a
primary execution; if the primary dies with a
:class:`~repro.errors.ProtocolViolation` (a monitor fired) or a
:class:`~repro.errors.SimulationError` (lockstep break, round-budget
exhaustion, transport timeout), it falls back to the self-contained
``HighCostCA`` protocol (Appendix A.4) on the same inputs -- the
``O(l n^3)``-bit workhorse whose guarantees rest on nothing but
``t < n/3`` -- and returns that result with a :class:`FallbackRecord`
attached to ``ExecutionResult.fallback``.

``HighCostCA`` operates on natural numbers; the supervisor embeds
arbitrary integer inputs by shifting them into N (the harness knows all
inputs) and un-shifting the agreed output, which preserves the convex
hull exactly.

The fallback run keeps the primary's corruption set but replaces the
adversary's *strategy* with spec-following corrupted parties: byzantine
strategies are protocol-shaped (they inspect channels and payloads of
the protocol they were written against) and cannot be meaningfully
re-driven against a different protocol.  ``HighCostCA``'s guarantees
hold against arbitrary byzantine behaviour regardless, so this choice
affects realism of the simulated attack, not soundness of the output.

Under partial synchrony :func:`run_with_escalation` extends the single
fallback into the full escalation ladder::

    optimal CA  ->  budget-escalated retry  ->  HighCostCA  ->  async AA
    (primary)       (inside the transport's     (same lossy      (t < n/5,
                     TimeoutEscalation)         transport!)     eps-agreement)

The ladder differs from :func:`run_with_fallback` in one crucial way:
the ``HighCostCA`` rung runs over the *same* transport as the primary,
so a network that is actually broken (a never-healing partition) fails
it too and the supervisor keeps descending -- to asynchronous
Approximate Agreement, whose liveness needs no synchrony at all.  Each
rung is tried at most once, the traversal is recorded in order on
``FallbackRecord.history``, and a ladder that runs out of rungs raises
a budgeted :class:`~repro.errors.SimulationError` carrying the whole
history -- never an unhandled exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ProtocolViolation, SimulationError
from .adversary import Adversary, PassiveAdversary
from .invariants import InvariantMonitor
from .lossy import LossyTransport
from .metrics import CommunicationStats
from .network import ExecutionResult, ProtocolFactory, SynchronousNetwork
from .recovery import CrashEvent, RecoveryConfig
from .wire import WireLimits

__all__ = ["FallbackRecord", "run_with_fallback", "run_with_escalation"]

#: scalar CommunicationStats fields serialized into fallback artifacts.
_STATS_FIELDS = (
    "honest_bits", "honest_messages", "rounds",
    "retrans_bits", "retrans_messages", "ack_bits", "ack_messages",
    "transport_slots", "beacon_bits", "beacon_messages",
    "resync_attempts", "escalated_rounds",
    "quarantined_messages", "rejected_bits",
)


@dataclass(frozen=True)
class FallbackRecord:
    """Why and how an execution degraded off the optimal path."""

    #: exception class name of the primary failure.
    trigger: str
    #: human-readable description of the primary failure.
    detail: str
    #: monitor name when a :class:`ProtocolViolation` fired, else ``None``.
    monitor: str | None
    #: the shift applied to embed the inputs into N (output was
    #: un-shifted by the same amount).
    offset: int
    #: communication stats of the aborted primary execution.
    primary_stats: CommunicationStats | None = None
    #: the ladder rung that produced the returned outputs:
    #: ``"high_cost_ca"`` or ``"async_aa"``.
    rung: str = "high_cost_ca"
    #: the escalation traversal in order, one entry per rung tried.
    history: tuple[str, ...] = ()
    #: eps of the async AA rung (stringified Fraction), else ``None`` --
    #: the returned outputs then agree only up to ``epsilon``.
    epsilon: str | None = None
    #: transport-level escalated retries the primary performed before
    #: failing (mirrors ``primary_stats.resync_attempts``).
    resyncs: int = 0

    def describe(self) -> str:
        via = f" via {self.monitor}" if self.monitor else ""
        target = (
            "asynchronous AA" if self.rung == "async_aa" else "HighCostCA"
        )
        return f"degraded to {target} after {self.trigger}{via}: {self.detail}"

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by repro artifacts)."""
        return {
            "trigger": self.trigger,
            "detail": self.detail,
            "monitor": self.monitor,
            "offset": self.offset,
            "rung": self.rung,
            "history": list(self.history),
            "epsilon": self.epsilon,
            "resyncs": self.resyncs,
            "primary_stats": (
                None
                if self.primary_stats is None
                else {
                    name: getattr(self.primary_stats, name)
                    for name in _STATS_FIELDS
                }
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FallbackRecord":
        stats_data = data.get("primary_stats")
        stats = None
        if stats_data is not None:
            stats = CommunicationStats()
            for name in _STATS_FIELDS:
                setattr(stats, name, stats_data.get(name, 0))
        return cls(
            trigger=data["trigger"],
            detail=data["detail"],
            monitor=data.get("monitor"),
            offset=data.get("offset", 0),
            primary_stats=stats,
            rung=data.get("rung", "high_cost_ca"),
            history=tuple(data.get("history", ())),
            epsilon=data.get("epsilon"),
            resyncs=data.get("resyncs", 0),
        )


class _StaticCorruptions(PassiveAdversary):
    """Spec-following corrupted parties with a pinned corruption set."""

    def __init__(self, corrupted: frozenset[int]) -> None:
        super().__init__()
        self._corrupted = set(corrupted)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(self._corrupted)


def run_with_fallback(
    protocol_factory: ProtocolFactory,
    inputs: dict[int, Any] | list[Any],
    n: int,
    t: int,
    kappa: int = 128,
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
    trace: bool = False,
    monitors: Sequence[InvariantMonitor] = (),
    transport: LossyTransport | None = None,
    crashes: Sequence[CrashEvent | tuple[int, int, int]] | None = None,
    recovery: RecoveryConfig | bool | None = None,
    guards: WireLimits | bool | None = None,
    fallback_channel: str = "fallback/hc",
    fallback_factory: Callable[..., Any] | None = None,
) -> ExecutionResult:
    """Run the primary protocol; degrade to ``HighCostCA`` on failure.

    The primary execution gets the full resilience stack (monitors,
    transport, crash plane).  On :class:`ProtocolViolation` or
    :class:`SimulationError` the supervisor reruns the *inputs* through
    ``HighCostCA`` (or ``fallback_factory``) with the same corruption
    set, and returns that result with ``ExecutionResult.fallback`` set.
    Configuration errors and harness bugs still propagate -- only
    detected protocol misbehaviour degrades.

    Requires integer inputs (they are shifted into N for HighCostCA);
    non-integer inputs make the primary failure propagate unchanged.
    """
    if isinstance(inputs, list):
        inputs = dict(enumerate(inputs))
    primary = SynchronousNetwork(
        protocol_factory=protocol_factory,
        inputs=inputs,
        n=n,
        t=t,
        kappa=kappa,
        adversary=adversary,
        max_rounds=max_rounds,
        trace=trace,
        monitors=monitors,
        transport=transport,
        crashes=crashes,
        recovery=recovery,
        guards=guards,
    )
    try:
        return primary.run()
    except (ProtocolViolation, SimulationError) as failure:
        try:
            offset = _offset_into_naturals(inputs)
        except ConfigurationError:
            raise failure from None
        record = FallbackRecord(
            trigger=type(failure).__name__,
            detail=str(failure),
            monitor=getattr(failure, "monitor", None),
            offset=offset,
            primary_stats=primary.stats,
        )

    shifted = {party: value + offset for party, value in inputs.items()}
    if fallback_factory is None:
        from ..core.high_cost_ca import high_cost_ca

        fallback_factory = high_cost_ca

    fallback_net = SynchronousNetwork(
        protocol_factory=lambda ctx, v: fallback_factory(
            ctx, v, channel=fallback_channel
        ),
        inputs=shifted,
        n=n,
        t=t,
        kappa=kappa,
        adversary=_StaticCorruptions(frozenset(primary.corrupted)),
        max_rounds=max_rounds,
        trace=trace,
        guards=guards,
    )
    result = fallback_net.run()
    result.outputs = {
        party: value - offset for party, value in result.outputs.items()
    }
    result.fallback = record
    return result


def _offset_into_naturals(inputs: dict[int, Any]) -> int:
    """Shift embedding integer inputs into N (0 when already natural)."""
    values = list(inputs.values())
    if any(not isinstance(v, int) or isinstance(v, bool) for v in values):
        raise ConfigurationError(
            "the HighCostCA fallback needs integer inputs"
        )
    lowest = min(values)
    return -lowest if lowest < 0 else 0


def _clip(message: str, limit: int = 200) -> str:
    """First line of ``message``, truncated for history entries."""
    line = message.splitlines()[0] if message else message
    return line if len(line) <= limit else line[: limit - 3] + "..."


def run_with_escalation(
    protocol_factory: ProtocolFactory,
    inputs: dict[int, Any] | list[Any],
    n: int,
    t: int,
    kappa: int = 128,
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
    trace: bool = False,
    monitors: Sequence[InvariantMonitor] = (),
    transport: LossyTransport | None = None,
    crashes: Sequence[CrashEvent | tuple[int, int, int]] | None = None,
    recovery: RecoveryConfig | bool | None = None,
    guards: WireLimits | bool | None = None,
    epsilon: Fraction | int = 1,
    fallback_channel: str = "fallback/hc",
    max_deliveries: int | None = None,
    escalate_on: tuple[type, ...] = (ProtocolViolation, SimulationError),
) -> ExecutionResult:
    """Descend the partial-synchrony escalation ladder until decision.

    Rungs, each tried at most once and recorded in order on
    ``FallbackRecord.history``:

    1. **primary** -- the optimal protocol with the full resilience
       stack.  Budget-escalated retries happen *inside* the transport's
       :class:`~repro.sim.lossy.TimeoutEscalation`, so a network that
       stabilizes late still yields a clean, byte-identical result with
       ``fallback is None`` and the retry cost visible only in the
       ``beacon_* / resync_*`` stats fields.
    2. **high_cost_ca** -- on :class:`ProtocolViolation` or
       :class:`SimulationError`, rerun the (shifted) inputs through
       ``HighCostCA`` over the **same transport**: a genuinely broken
       network fails this rung too, which is the point -- only an
       actually-usable network lets the ladder stop here.
    3. **async_aa** -- asynchronous Approximate Agreement with the
       primary's corruption set pinned.  Needs ``5 * |corrupted| < n``;
       outputs agree only up to ``epsilon`` (recorded stringified on
       the fallback record).  Liveness needs no synchrony assumption.

    A ladder that exhausts every rung raises a
    :class:`~repro.errors.SimulationError` carrying the full history --
    the budgeted, replayable failure the chaos plane expects; no
    network schedule produces an unhandled exception.

    Non-integer inputs cannot ride the lower rungs, so the primary
    failure propagates unchanged for them (as in
    :func:`run_with_fallback`).

    ``escalate_on`` restricts which primary failures enter the ladder
    (default: both).  The chaos plane passes ``(SimulationError,)`` so
    a fired invariant monitor stays a reported protocol bug instead of
    being silently degraded away.
    """
    if isinstance(inputs, list):
        inputs = dict(enumerate(inputs))
    if not isinstance(epsilon, (int, Fraction)) or epsilon <= 0:
        raise ConfigurationError(
            f"epsilon must be a positive number, got {epsilon!r}"
        )

    history: list[str] = []
    primary = SynchronousNetwork(
        protocol_factory=protocol_factory,
        inputs=inputs,
        n=n,
        t=t,
        kappa=kappa,
        adversary=adversary,
        max_rounds=max_rounds,
        trace=trace,
        monitors=monitors,
        transport=transport,
        crashes=crashes,
        recovery=recovery,
        guards=guards,
    )
    try:
        return primary.run()
    except (ProtocolViolation, SimulationError) as failure:
        if not isinstance(failure, escalate_on):
            raise
        primary_failure = failure
    resyncs = primary.stats.resync_attempts
    history.append(
        f"primary: {type(primary_failure).__name__}: "
        f"{_clip(str(primary_failure))}"
    )
    if resyncs:
        history.append(
            f"transport: {resyncs} escalated retr"
            f"{'y' if resyncs == 1 else 'ies'} before the failure"
        )

    try:
        offset = _offset_into_naturals(inputs)
    except ConfigurationError:
        raise primary_failure from None
    shifted = {party: value + offset for party, value in inputs.items()}
    corrupted = frozenset(primary.corrupted)

    def _record(rung: str, eps: str | None = None) -> FallbackRecord:
        return FallbackRecord(
            trigger=type(primary_failure).__name__,
            detail=str(primary_failure),
            monitor=getattr(primary_failure, "monitor", None),
            offset=offset,
            primary_stats=primary.stats,
            rung=rung,
            history=tuple(history),
            epsilon=eps,
            resyncs=resyncs,
        )

    # -- rung 2: HighCostCA over the SAME (possibly broken) transport --
    from ..core.high_cost_ca import high_cost_ca

    hc_net = SynchronousNetwork(
        protocol_factory=lambda ctx, v: high_cost_ca(
            ctx, v, channel=fallback_channel
        ),
        inputs=shifted,
        n=n,
        t=t,
        kappa=kappa,
        adversary=_StaticCorruptions(corrupted),
        max_rounds=max_rounds,
        trace=trace,
        transport=transport,
        guards=guards,
    )
    try:
        result = hc_net.run()
    except (ProtocolViolation, SimulationError) as hc_failure:
        history.append(
            f"high_cost_ca: {type(hc_failure).__name__}: "
            f"{_clip(str(hc_failure))}"
        )
    else:
        history.append("high_cost_ca: decided")
        result.outputs = {
            party: value - offset
            for party, value in result.outputs.items()
        }
        result.fallback = _record("high_cost_ca")
        return result

    # -- rung 3: asynchronous AA with the corruption set pinned --------
    t_async = len(corrupted)
    if 5 * t_async >= n:
        history.append(
            f"async_aa: skipped (needs 5t < n, t={t_async}, n={n})"
        )
        raise SimulationError(
            "escalation ladder exhausted: " + " | ".join(history),
            stats=primary.stats,
        ) from primary_failure

    from ..asynchrony.aa import AsyncApproximateAgreement
    from ..asynchrony.network import AsyncNetwork

    bound = max(1, max(shifted.values()))
    async_net = AsyncNetwork(
        party_factory=lambda ctx: AsyncApproximateAgreement(
            ctx, shifted[ctx.party_id], epsilon, bound
        ),
        n=n,
        t=t_async,
        kappa=kappa,
        adversary=_PinnedAsyncCorruptions(corrupted),
        max_deliveries=max_deliveries,
        guards=guards,
    )
    try:
        async_result = async_net.run()
    except (ProtocolViolation, SimulationError) as aa_failure:
        history.append(
            f"async_aa: {type(aa_failure).__name__}: "
            f"{_clip(str(aa_failure))}"
        )
        raise SimulationError(
            "escalation ladder exhausted: " + " | ".join(history),
            stats=primary.stats,
        ) from primary_failure

    history.append(f"async_aa: decided (eps={epsilon})")
    return ExecutionResult(
        n=n,
        t=t,
        outputs={
            party: value - offset
            for party, value in async_result.outputs.items()
        },
        corrupted=corrupted,
        stats=async_result.stats,
        fallback=_record("async_aa", eps=str(Fraction(epsilon))),
    )


class _PinnedAsyncCorruptions:
    """Silent async adversary with a pinned corruption set.

    The async twin of :class:`_StaticCorruptions`: byzantine parties
    exist (they count against the ``t < n/5`` bound and never help) but
    inject nothing.
    """

    budget = 0

    def __init__(self, corrupted: frozenset[int]) -> None:
        self._corrupted = set(corrupted)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(self._corrupted)

    def inject(self, step, corrupted, n, observed):
        return []
