"""Payload-bomb adversaries: hostile traffic for the wire-guard plane.

Four families of byzantine input, each attacking a different layer of
the honest receive path:

* :class:`OversizeBlobAdversary` -- mebibyte-scale byte blobs that a
  naive receiver would copy, hash, or size at full cost.  Defeated by
  the per-message bit bound ("oversize").
* :class:`DeepNestAdversary` -- containers nested far past any honest
  schema; every recursive consumer (``bit_size``, ``repr``, a JSON
  codec, the garbler) is a stack-overflow target.  Defeated by the
  depth cap ("depth").
* :class:`TypeConfusionAdversary` -- near-schema payloads holding
  values the wire codec cannot price (floats, sets) in positions where
  honest messages carry ints or tuples.  Defeated by the type
  allowlist ("type").
* :class:`NearValidMutantAdversary` -- the hard family: it takes the
  corrupted parties' *spec* messages and applies minimal semantic
  damage (one flipped byte inside a hash/witness field, one element
  truncated off a share vector).  These conform to every wire bound and
  *reach honest code*, which must reject them at the protocol layer
  without raising -- exactly the no-crash meta-invariant the fuzz plane
  enforces via :class:`~repro.errors.HonestPartyError`.

All four are deterministic in their seed, compose through
:class:`~repro.sim.faults.ComposedAdversary` like every catalog
adversary, and are sampled by ``repro fuzz --bombs`` / mutated by the
search engine via :data:`BOMB_CATALOG`.  The catalog is deliberately
separate from ``fuzz.ADVERSARY_CATALOG``: sampling draws from the
sorted catalog keys, so growing the base catalog would silently reseed
every pinned campaign.

Campaign defaults keep payloads modest (tens of KiB, depth ~64) so
recorded scripts and JSON artifacts stay tractable; the 64 MiB /
depth-1000 extremes live in the direct canary tests
(``tests/test_bombs.py``), where no recording or artifact encoding is
in the loop.
"""

from __future__ import annotations

import random
from typing import Any

from .adversary import Adversary, RandomGarbageAdversary, RoundView

__all__ = [
    "BOMB_CATALOG",
    "DeepNestAdversary",
    "NearValidMutantAdversary",
    "OversizeBlobAdversary",
    "TypeConfusionAdversary",
    "deep_nest",
]

#: campaign-scale blob: far over every derived per-message bound, far
#: under anything that would bloat a recorded script.
DEFAULT_BLOB_BYTES = 16 * 1024
#: campaign-scale nesting: double the default wire depth cap, shallow
#: enough for the (recursive) artifact codec to encode on failure.
DEFAULT_NEST_DEPTH = 64


def deep_nest(depth: int, leaf: Any = 0) -> Any:
    """Build a ``depth``-deep chain of 1-tuples around ``leaf``.

    Iterative, so building a depth-100000 bomb costs no stack; only
    recursive *consumers* of the result are endangered -- which is the
    point.
    """
    value = leaf
    for _ in range(depth):
        value = (value,)
    return value


class OversizeBlobAdversary(Adversary):
    """Firehoses one large byte blob from every corrupted party.

    The blob is built once (deterministically from the seed) and the
    same object is reused for every link and round, so even the 64 MiB
    canary configuration costs one allocation.
    """

    def __init__(self, seed: int = 0, blob_bytes: int = DEFAULT_BLOB_BYTES):
        super().__init__(seed)
        self.blob_bytes = blob_bytes
        self.blob = random.Random(seed).randbytes(blob_bytes)

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for src in sorted(view.corrupted):
            for dst in range(view.n):
                out[(src, dst)] = self.blob
        return out


class DeepNestAdversary(Adversary):
    """Sends a deeply nested 1-tuple chain on every corrupted link."""

    def __init__(self, seed: int = 0, depth: int = DEFAULT_NEST_DEPTH):
        super().__init__(seed)
        self.depth = depth
        self.nest = deep_nest(depth, leaf=random.Random(seed).getrandbits(8))

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for src in sorted(view.corrupted):
            for dst in range(view.n):
                out[(src, dst)] = self.nest
        return out


class TypeConfusionAdversary(Adversary):
    """Sends schema-shaped payloads holding wire-unpriceable values.

    Every maker stays within the artifact codec's encodable universe
    (floats and sets got tags alongside the schema_version=3 bump) so a
    recorded script containing these payloads still round-trips through
    JSON artifacts deterministically.
    """

    _MAKERS = (
        lambda rng: float(rng.getrandbits(16)) / 8.0,
        lambda rng: {rng.getrandbits(4), rng.getrandbits(8) + 16},
        lambda rng: ("VOTE", float(rng.getrandbits(8))),
        lambda rng: (rng.getrandbits(8), {"k": {1, rng.getrandbits(3)}}),
        lambda rng: [b"x", 3.5, None],
        lambda rng: {"witness": {float(rng.getrandbits(4))}},
    )

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for src in sorted(view.corrupted):
            for dst in range(view.n):
                maker = self.rng.choice(self._MAKERS)
                out[(src, dst)] = maker(self.rng)
        return out


class NearValidMutantAdversary(Adversary):
    """Minimally damages the corrupted parties' spec messages.

    Wire-conformant by construction (the mutation never grows the
    payload beyond a truncation or an in-place flip), so these messages
    pass every guard and exercise the *protocol-level* validation of
    honest receivers: a flipped byte inside a ``bytes`` field models a
    Merkle witness with one corrupted leaf hash; a truncated tuple
    models a short RS share vector.
    """

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for (src, dst), payload in sorted(
            view.spec_outgoing.items(), key=lambda item: item[0]
        ):
            out[(src, dst)] = self._mutate(payload)
        return out

    def _mutate(self, payload: Any) -> Any:
        rng = self.rng
        if isinstance(payload, bool):
            return not payload
        if isinstance(payload, int):
            return payload + rng.choice((-1, 1))
        if isinstance(payload, (bytes, bytearray)) and payload:
            data = bytearray(payload)
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            return bytes(data)
        if isinstance(payload, tuple) and payload:
            if len(payload) > 1 and rng.random() < 0.5:
                return payload[:-1]
            items = list(payload)
            index = rng.randrange(len(items))
            items[index] = self._mutate(items[index])
            return tuple(items)
        if isinstance(payload, list) and payload:
            if rng.random() < 0.5:
                return payload[:-1]
            return [self._mutate(item) for item in payload]
        return payload


#: name -> seed-taking factory, mirroring ``fuzz.ADVERSARY_CATALOG``.
#: Kept separate so the base catalog's sorted key order (a pinned-seed
#: sampling contract) never changes; ``fuzz._build_adversary`` resolves
#: names against the union of both catalogs.
BOMB_CATALOG = {
    "bomb_blob": lambda seed: OversizeBlobAdversary(seed=seed),
    "bomb_nest": lambda seed: DeepNestAdversary(seed=seed),
    "bomb_type": lambda seed: TypeConfusionAdversary(seed),
    "bomb_mutant": lambda seed: NearValidMutantAdversary(seed),
    "bomb_garbage": lambda seed: RandomGarbageAdversary(
        seed, profile="bomb"
    ),
}
