"""Bit-accurate wire sizing of protocol payloads.

The paper measures a protocol's communication complexity ``BITS_l(PI)`` as
the worst-case total number of bits sent by honest parties.  To make the
measured numbers directly comparable to the paper's bounds, every payload an
honest party sends is priced by :func:`bit_size`, which mirrors a compact
binary encoding:

* ``None`` (the special symbol "bottom") costs 1 bit,
* booleans and protocol bits cost 1 bit,
* natural numbers cost their binary length (``max(1, v.bit_length())``)
  plus one sign bit for negatives,
* raw bytes cost ``8 * len``,
* strings are treated as 8-bit protocol opcodes (message framing tags such
  as ``"VOTE"`` -- a real implementation would use a 1-byte tag),
* containers cost the sum of their items,
* any object exposing ``wire_bits()`` prices itself (used by
  :class:`repro.core.bitstrings.BitString`, Merkle witnesses, ...).

Self-addressed messages are *not* priced by the simulator (a process does
not use the network to talk to itself), matching the convention used by the
paper's counting arguments.
"""

from __future__ import annotations

from fractions import Fraction
from functools import wraps
from typing import Any, Callable

__all__ = ["bit_size", "WireSized", "memoized_wire_bits"]


class WireSized:
    """Mixin for objects that know their own wire size in bits."""

    # Empty __slots__ so slotted message dataclasses inheriting this
    # mixin do not silently regain a per-instance __dict__.
    __slots__ = ()

    def wire_bits(self) -> int:
        """This object's compact wire size in bits."""
        raise NotImplementedError


def memoized_wire_bits(compute: Callable[[Any], int]) -> Callable[[Any], int]:
    """Cache a frozen dataclass's ``wire_bits`` on the instance.

    Message objects are immutable, but the simulator prices them on
    every send -- and the lossy transport on every retransmit, the
    recovery plane on every WAL re-delivery.  The memo turns that into
    one computation per object; being instance-scoped it is inherently
    execution-scoped (messages are built fresh per party per run) and
    cannot change the value, only how often it is recomputed.

    Works on both ``__dict__``-backed and ``slots=True`` dataclasses;
    a slotted message type must declare the memo slot itself::

        _wire_bits_memo: int | None = field(
            default=None, init=False, repr=False, compare=False
        )

    (``compare=False`` keeps equality and hashing on the payload
    fields only, so the memo never perturbs message identity.)
    """

    @wraps(compute)
    def wire_bits(self) -> int:
        cached = getattr(self, "_wire_bits_memo", None)
        if cached is None:
            cached = compute(self)
            object.__setattr__(self, "_wire_bits_memo", cached)
        return cached

    return wire_bits


def bit_size(payload: Any) -> int:
    """Return the number of bits a compact encoding of ``payload`` uses."""
    # Exact-type dispatch for the two payload shapes that dominate the
    # scheduler's pricing loop (ints and tuples); ``bool`` is an ``int``
    # subclass, so ``type(...) is int`` cannot misprice it, and every
    # other type falls through to the readable isinstance chain below.
    kind = type(payload)
    if kind is int:
        if payload >= 0:
            return payload.bit_length() or 1
        return payload.bit_length() + 1
    if kind is tuple:
        return sum(bit_size(item) for item in payload)
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        magnitude = max(1, abs(payload).bit_length())
        return magnitude + (1 if payload < 0 else 0)
    if isinstance(payload, Fraction):
        return bit_size(payload.numerator) + bit_size(payload.denominator)
    if isinstance(payload, (bytes, bytearray)):
        return 8 * len(payload)
    if isinstance(payload, str):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(bit_size(item) for item in payload)
    if isinstance(payload, frozenset):
        return sum(bit_size(item) for item in payload)
    if isinstance(payload, dict):
        return sum(bit_size(k) + bit_size(v) for k, v in payload.items())
    wire = getattr(payload, "wire_bits", None)
    if wire is not None:
        return int(wire())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")
