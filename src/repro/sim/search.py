"""Coverage-guided adversary search over the composed fault space.

The chaos plane (:mod:`repro.sim.fuzz`) samples the fault space
*blindly*: every case is an independent uniform draw, so a violation
hiding in a narrow corner -- one protocol, one ``(n, t, ell)`` regime,
one composition of fault axes -- is found at the corner's base rate or
not at all.  This module turns the same case machinery into an
**adversarial optimizer**:

- **fitness** is how hard a case presses the stack against the paper's
  envelopes: honest bits vs. the bit budget, rounds vs. the round
  budget (:class:`~repro.sim.invariants.EnvelopeMargins`), the
  escalation-ladder rung reached and the resyncs spent -- with an
  outright invariant violation as the summit;
- **bandit arm selection** (UCB1) allocates executions across
  ``(protocol, n, t, ell)`` cells, spending the budget where the
  envelopes are tightest instead of uniformly;
- a **novelty corpus** retains cases whose coverage signature (margin
  buckets, rung, violation kind) is new, and **power-scheduled
  mutation** of their :class:`~repro.sim.faults.FaultSpec` / adversary
  composition explores around them, seeded -- optionally -- from the
  shrunk repro artifacts of earlier fuzz/ddmin campaigns.

Everything stays deterministic in the campaign seed: case ``i``'s
planning RNG is ``derive_seed(seed, i)``, engine state advances only at
batch boundaries (so worker count cannot reorder decisions), and every
completed case is journaled to a crash-safe manifest
(:mod:`repro.sim.manifest`).  A killed campaign resumed from its
manifest replays the journal through the same state-update logic and
continues from the first missing case -- producing a report
byte-identical to the uninterrupted run.

Surface: ``python -m repro search`` or::

    from repro.sim.search import SearchConfig, run_search

    report = run_search(SearchConfig(seed=7), executions=200,
                        manifest="campaign.jsonl")
    report = run_search(SearchConfig(seed=7), executions=400,
                        manifest="campaign.jsonl", resume=True)
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field, replace
from typing import Callable

from .bombs import BOMB_CATALOG
from .faults import FaultSpec
from .fuzz import (
    ADVERSARY_CATALOG,
    CaseStats,
    FuzzCase,
    FuzzFailure,
    ProtocolSpec,
    _filtered_registry,
    load_artifact,
    run_case_ex,
    sample_faults,
    save_artifact,
    shrink_failure,
    standard_registry,
    _FAULT_RATES,
    _LINK_RATES,
    _SPREADS,
)
from .manifest import CampaignJournal
from .parallel import derive_seed, resolve_workers, run_many

__all__ = [
    "SearchCell",
    "SearchConfig",
    "SearchEngine",
    "SearchReport",
    "default_cells",
    "case_fitness",
    "case_signature",
    "mutate_case",
    "run_search",
]

#: fitness assigned to a genuine invariant violation -- the summit of
#: the search landscape, above any envelope-pressure score.
VIOLATION_FITNESS = 1000.0
#: fitness of a budgeted ladder-exhaustion (documented terminal state:
#: interesting pressure, not a bug).
BUDGETED_FITNESS = 3.0
#: mutation landing sites for the byzantine message-fault rates --
#: wider than the sampling grid so mutation can push past it.
_MUTATION_RATES = (0.0, 0.05, 0.2, 0.5, 0.8)
#: escalation rungs ordered by how far the ladder degraded.
_RUNG_LEVEL = {"high_cost_ca": 1, "async_aa": 2}


# ---------------------------------------------------------------------------
# Cells: the bandit's arms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchCell:
    """One bandit arm: a (protocol, n, t, ell) corner of the grid."""

    protocol: str
    n: int
    t: int
    ell: int

    @property
    def key(self) -> str:
        return f"{self.protocol}/n{self.n}/t{self.t}/l{self.ell}"

    def to_list(self) -> list:
        return [self.protocol, self.n, self.t, self.ell]

    @classmethod
    def from_list(cls, data: list) -> "SearchCell":
        return cls(protocol=data[0], n=data[1], t=data[2], ell=data[3])


def default_cells(
    registry: dict[str, ProtocolSpec],
    ns: tuple[int, ...] = (4, 7),
    ells: tuple[int, ...] = (16, 128),
) -> list[SearchCell]:
    """The default arm grid: small/large n x loose/tight t x short/long ell."""
    cells: list[SearchCell] = []
    seen: set[tuple] = set()
    for name in sorted(registry):
        spec = registry[name]
        for n in ns:
            t_max = max(1, (n - 1) // 3)
            for t in sorted({1, t_max}):
                for ell in ells:
                    cell = SearchCell(name, n, t, spec.ell_for(n, ell))
                    marker = (cell.protocol, cell.n, cell.t, cell.ell)
                    if marker not in seen:
                        seen.add(marker)
                        cells.append(cell)
    return cells


# ---------------------------------------------------------------------------
# Fitness + novelty signatures (the coverage signal)
# ---------------------------------------------------------------------------


def case_fitness(outcome: dict) -> float:
    """Score one journaled outcome: how hard it pressed the envelopes.

    Violations dominate (that is what the search hunts); below them the
    score blends envelope *pressure* (the fraction of the bit/round
    budget actually spent -- the complement of the margin), the
    escalation rung reached, and the resyncs the transport needed.
    The blend is a pure function of the outcome dict, so fitness is
    identical when recomputed from a resumed journal.
    """
    kind = outcome.get("kind")
    if kind is not None:
        if kind == "ExecutionEngine":
            return 0.0
        return BUDGETED_FITNESS if outcome.get("budgeted") else VIOLATION_FITNESS
    stats = outcome.get("stats", {})
    bit_budget = stats.get("bit_budget", 0) or 1
    round_budget = stats.get("round_budget", 0) or 1
    bit_fraction = stats.get("bits", 0) / bit_budget
    round_fraction = stats.get("rounds", 0) / round_budget
    rung_level = _RUNG_LEVEL.get(stats.get("rung"), 0)
    return (
        max(bit_fraction, round_fraction)
        + 0.25 * rung_level
        + 0.02 * min(stats.get("resyncs", 0), 10)
    )


def case_signature(case: dict, outcome: dict) -> tuple:
    """Novelty signature: which coverage bucket this execution landed in.

    A case earns a corpus slot iff its signature is new -- protocol,
    violation kind, escalation rung, a capped resync count, and the
    bit/round budget fractions bucketed into sixteenths.
    """
    stats = outcome.get("stats", {})
    bit_budget = stats.get("bit_budget", 0) or 1
    round_budget = stats.get("round_budget", 0) or 1
    return (
        case.get("protocol"),
        outcome.get("kind"),
        stats.get("rung"),
        min(stats.get("resyncs", 0), 5),
        min(int(16 * stats.get("bits", 0) / bit_budget), 31),
        min(int(16 * stats.get("rounds", 0) / round_budget), 31),
    )


# ---------------------------------------------------------------------------
# Case synthesis: fresh samples and power-scheduled mutation
# ---------------------------------------------------------------------------


def _sample_in_cell(
    rng: random.Random,
    cell: SearchCell,
    crash: bool,
    partition: bool,
    bombs: bool = False,
) -> FuzzCase:
    """A fresh uniform case inside one cell (the non-guided baseline).

    Like :func:`~repro.sim.fuzz.sample_case`, the bomb draws are gated
    on their flag and appended *after* every pre-existing draw, so
    ``bombs=False`` campaigns plan exactly the cases they always did.
    """
    count = rng.randint(1, 3)
    adversaries = tuple(
        rng.choice(sorted(ADVERSARY_CATALOG)) for _ in range(count)
    )
    faults = sample_faults(rng, cell.n, cell.t, crash=crash,
                           partition=partition)
    spread = rng.choice(_SPREADS)
    case_seed = rng.getrandbits(32)
    guards = False
    if bombs:
        guards = True
        extra = rng.randint(1, 2)
        adversaries = adversaries + tuple(
            rng.choice(sorted(BOMB_CATALOG)) for _ in range(extra)
        )
    return FuzzCase(
        protocol=cell.protocol,
        n=cell.n,
        t=cell.t,
        ell=cell.ell,
        kappa=64,
        spread=spread,
        adversaries=adversaries,
        faults=faults,
        seed=case_seed,
        guards=guards,
    )


def _mutate_once(
    case: FuzzCase,
    rng: random.Random,
    crash: bool,
    partition: bool,
    bombs: bool = False,
) -> FuzzCase:
    """Apply one mutation operator; the cell axes stay fixed."""
    ops = ["rate", "adversaries", "spread", "fault_seed", "case_seed"]
    if crash:
        ops += ["link", "crash"]
    if partition:
        ops += ["psync"]
    if bombs:
        ops += ["bomb"]
    op = rng.choice(ops)
    faults = case.faults
    if op == "rate":
        axis = rng.choice(("drop", "duplicate", "garble", "replay"))
        faults = replace(faults, **{axis: rng.choice(_MUTATION_RATES)})
    elif op == "link":
        axis = rng.choice(("link_drop", "link_delay", "link_reorder"))
        pool = _LINK_RATES if axis != "link_reorder" else _FAULT_RATES
        faults = replace(faults, **{axis: rng.choice(pool)})
    elif op == "crash":
        windows = {party: (party, down, up)
                   for party, down, up in faults.crashes}
        if windows and rng.random() < 0.4:
            del windows[rng.choice(sorted(windows))]
        else:
            party = rng.randrange(case.n)
            down = rng.randint(1, 10)
            windows[party] = (party, down, down + rng.randint(1, 5))
        faults = replace(
            faults,
            crashes=tuple(windows[party] for party in sorted(windows)),
        )
    elif op == "psync":
        if faults.gst is None:
            faults = replace(
                faults,
                gst=rng.randrange(0, 400),
                pre_gst_drop=rng.choice((0.0, 0.3, 0.6)),
            )
        else:
            faults = replace(faults, gst=None, pre_gst_drop=0.0)
    elif op == "adversaries":
        names = list(case.adversaries)
        catalog = sorted(ADVERSARY_CATALOG)
        move = rng.random()
        if move < 0.3 and len(names) > 1:
            names.pop(rng.randrange(len(names)))
        elif move < 0.6 and len(names) < 3:
            names.append(rng.choice(catalog))
        else:
            names[rng.randrange(len(names))] = rng.choice(catalog)
        return replace(case, adversaries=tuple(names))
    elif op == "bomb":
        # reshuffle the case's payload-bomb component: drop one, add
        # one, or swap one for another family.  Any bomb present means
        # the honest guards stay armed on the child.
        names = list(case.adversaries)
        bomb_slots = [
            index for index, name in enumerate(names)
            if name in BOMB_CATALOG
        ]
        catalog = sorted(BOMB_CATALOG)
        move = rng.random()
        if move < 0.3 and bomb_slots and len(names) > 1:
            names.pop(bomb_slots[rng.randrange(len(bomb_slots))])
        elif move < 0.6 and len(names) < 5:
            names.append(rng.choice(catalog))
        elif bomb_slots:
            slot = bomb_slots[rng.randrange(len(bomb_slots))]
            names[slot] = rng.choice(catalog)
        else:
            names.append(rng.choice(catalog))
        return replace(case, adversaries=tuple(names), guards=True)
    elif op == "spread":
        return replace(case, spread=rng.choice(_SPREADS))
    elif op == "fault_seed":
        faults = replace(faults, seed=rng.getrandbits(32))
    elif op == "case_seed":
        return replace(case, seed=rng.getrandbits(32))
    return replace(case, faults=faults)


def mutate_case(
    case: FuzzCase,
    rng: random.Random,
    crash: bool = True,
    partition: bool = False,
    bombs: bool = False,
    max_ops: int = 6,
) -> FuzzCase:
    """Power-scheduled mutation: a geometric number of stacked operators.

    Most children are one small step from the parent (local search);
    a geometric tail of multi-operator jumps keeps the search from
    stalling on a local optimum.
    """
    ops = 1
    while ops < max_ops and rng.random() < 0.5:
        ops += 1
    for _ in range(ops):
        case = _mutate_once(case, rng, crash, partition, bombs)
    return case


# ---------------------------------------------------------------------------
# Engine configuration
# ---------------------------------------------------------------------------


@dataclass
class SearchConfig:
    """Everything that determines a search campaign's content.

    The fields in :meth:`manifest_config` are the campaign's identity:
    a resume validates them against the journal header, so a manifest
    can never silently continue under different parameters.  Fields
    *outside* it (workers, timeouts, artifact dir) are environmental --
    they may change between the original run and a resume without
    affecting a single journaled byte.
    """

    seed: int = 0
    #: guided search (bandit + corpus + mutation) vs. uniform baseline.
    guided: bool = True
    #: cases planned per engine step; state advances only at batch
    #: boundaries, so results cannot influence planning mid-batch and
    #: the campaign is independent of worker count.  Part of the
    #: campaign identity (a different batch size is a different run).
    batch: int = 8
    cells: list[SearchCell] = field(default_factory=list)
    protocols: list[str] | None = None
    crash: bool = True
    partition: bool = False
    #: sample/mutate payload-bomb adversaries (honest guards armed).
    bombs: bool = False
    corpus_size: int = 64
    #: probability of mutating a corpus parent (vs. fresh sample) when
    #: the selected cell has corpus entries.
    mutate_prob: float = 0.8
    max_mutation_ops: int = 6
    #: UCB1 exploration constant.
    ucb_c: float = 1.2
    #: corpus entries pre-seeded from repro artifacts (case dicts).
    seed_corpus: list[dict] = field(default_factory=list)
    # -- environmental (not part of the campaign identity) --------------
    workers: int | str | None = 1
    case_timeout_s: float | None = None
    registry_builder: Callable[[], dict[str, ProtocolSpec]] | None = None
    artifact_dir: str | None = None
    #: shrink violating cases before archiving them (costly; off by
    #: default -- search corpus entries already replay from their seeds).
    shrink_artifacts: bool = False

    def manifest_config(self, cells: list[SearchCell]) -> dict:
        return {
            "engine": "repro-search/1",
            "seed": self.seed,
            "guided": self.guided,
            "batch": self.batch,
            "cells": [cell.to_list() for cell in cells],
            "protocols": sorted(self.protocols) if self.protocols else None,
            "crash": self.crash,
            "partition": self.partition,
            "bombs": self.bombs,
            "corpus_size": self.corpus_size,
            "mutate_prob": self.mutate_prob,
            "max_mutation_ops": self.max_mutation_ops,
            "ucb_c": self.ucb_c,
            "seed_corpus": list(self.seed_corpus),
        }


def seed_corpus_from_artifacts(paths: list[str]) -> list[dict]:
    """Extract corpus-seed case dicts from fuzz/ddmin repro artifacts.

    Paths are loaded in sorted order (determinism) and validated
    (:func:`repro.sim.fuzz.load_artifact`), so a stale-schema corpus
    fails loudly here rather than seeding garbage.
    """
    seeds: list[dict] = []
    for path in sorted(paths):
        artifact = load_artifact(path)
        seeds.append(artifact["case"])
    return seeds


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class SearchReport:
    """Outcome of one (possibly resumed) search campaign.

    :meth:`to_dict` contains only campaign-deterministic values -- the
    acceptance bar is that a killed-then-resumed campaign serialises to
    the *byte-identical* document of an uninterrupted one.  Engine
    noise (retries, worker count) lives in separate fields and is
    deliberately excluded.
    """

    seed: int
    guided: bool
    executions: int
    violations: list[dict] = field(default_factory=list)
    outliers: list[dict] = field(default_factory=list)
    corpus_size: int = 0
    arms: dict[str, dict] = field(default_factory=dict)
    first_violation_at: int | None = None
    # -- environmental noise (excluded from to_dict) --------------------
    retries: int = 0
    workers: int = 1
    artifacts: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "guided": self.guided,
            "executions": self.executions,
            "first_violation_at": self.first_violation_at,
            "violations": self.violations,
            "outliers": self.outliers,
            "corpus_size": self.corpus_size,
            "arms": {key: self.arms[key] for key in sorted(self.arms)},
        }

    def summary(self) -> str:
        mode = "guided" if self.guided else "random"
        lines = [
            f"search campaign ({mode}): {self.executions} executions, "
            f"seed {self.seed}, {len(self.violations)} violation(s), "
            f"corpus {self.corpus_size}"
        ]
        if self.first_violation_at is not None:
            lines.append(
                f"  first violation at execution {self.first_violation_at}"
            )
        if self.retries:
            lines.append(f"  engine: {self.retries} retried case(s)")
        for entry in self.outliers[:5]:
            lines.append(
                f"  [{entry['fitness']:.3f}] #{entry['index']} "
                f"{entry['cell']}: {entry.get('kind') or 'clean'} "
                f"bits {entry['bits']}/{entry['bit_budget']}"
            )
        for path in self.artifacts:
            lines.append(f"  artifact: {path}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def _search_worker(task: dict) -> tuple["FuzzFailure | None", CaseStats]:
    """Process-pool entry point: execute one planned case."""
    registry = _filtered_registry(
        task["registry_builder"](), task["protocols"]
    )
    return run_case_ex(FuzzCase.from_dict(task["case"]), registry)


class SearchEngine:
    """Batch-stepped bandit/corpus search with a journaled campaign."""

    def __init__(self, config: SearchConfig):
        self.config = config
        builder = config.registry_builder or standard_registry
        self.registry = _filtered_registry(builder(), config.protocols)
        self._builder = builder
        self.cells = list(config.cells) or default_cells(self.registry)
        unknown = sorted(
            {cell.protocol for cell in self.cells} - set(self.registry)
        )
        if unknown:
            raise ValueError(f"cells reference unknown protocols: {unknown}")
        # bandit + corpus state; advanced only by _absorb, only at batch
        # boundaries, only in index order.
        self.plays = [0] * len(self.cells)
        self.reward = [0.0] * len(self.cells)
        self._cell_index = {cell.key: i for i, cell in enumerate(self.cells)}
        self.corpus: list[tuple[int, dict]] = []  # (cell index, case dict)
        self.seen: set[tuple] = set()
        self.outliers: list[dict] = []
        self.violations: list[dict] = []
        self.first_violation_at: int | None = None
        self.executed = 0
        self.retries = 0
        self.artifacts: list[str] = []
        self._seed_initial_corpus()

    def _seed_initial_corpus(self) -> None:
        for case in self.config.seed_corpus:
            cell_key = SearchCell(
                case["protocol"], case["n"], case["t"], case["ell"]
            ).key
            index = self._cell_index.get(cell_key)
            if index is not None:
                self.corpus.append((index, dict(case)))

    # -- planning (reads state, never writes it) ------------------------

    def _select_cell(self, rng: random.Random) -> int:
        if not self.config.guided:
            return rng.randrange(len(self.cells))
        for index in range(len(self.cells)):
            if self.plays[index] == 0:
                return index
        total = sum(self.plays)
        best_index, best_value = 0, -math.inf
        for index in range(len(self.cells)):
            mean = self.reward[index] / self.plays[index]
            bonus = self.config.ucb_c * math.sqrt(
                math.log(total) / self.plays[index]
            )
            value = mean + bonus
            if value > best_value:
                best_index, best_value = index, value
        return best_index

    def _plan(self, index: int) -> tuple[int, FuzzCase]:
        """Plan execution ``index``: pure in (engine state, seed, index)."""
        rng = random.Random(derive_seed(self.config.seed, index))
        cell_index = self._select_cell(rng)
        cell = self.cells[cell_index]
        parents = [
            case for ci, case in self.corpus if ci == cell_index
        ]
        if (
            self.config.guided
            and parents
            and rng.random() < self.config.mutate_prob
        ):
            parent = FuzzCase.from_dict(
                parents[rng.randrange(len(parents))]
            )
            case = mutate_case(
                parent,
                rng,
                crash=self.config.crash,
                partition=self.config.partition,
                bombs=self.config.bombs,
                max_ops=self.config.max_mutation_ops,
            )
        else:
            case = _sample_in_cell(
                rng, cell, self.config.crash, self.config.partition,
                bombs=self.config.bombs,
            )
        return cell_index, case

    # -- state updates ---------------------------------------------------

    def _absorb(self, index: int, cell_index: int, case: dict,
                outcome: dict) -> None:
        fitness = case_fitness(outcome)
        self.plays[cell_index] += 1
        # UCB rewards must be bounded; violations saturate the arm.
        self.reward[cell_index] += min(fitness, 2.0) / 2.0
        signature = case_signature(case, outcome)
        if signature not in self.seen:
            self.seen.add(signature)
            self.corpus.append((cell_index, case))
            if len(self.corpus) > self.config.corpus_size:
                self.corpus.pop(0)
        stats = outcome.get("stats", {})
        entry = {
            "index": index,
            "cell": self.cells[cell_index].key,
            "fitness": round(fitness, 6),
            "kind": outcome.get("kind"),
            "bits": stats.get("bits", 0),
            "bit_budget": stats.get("bit_budget", 0),
            "rounds": stats.get("rounds", 0),
            "round_budget": stats.get("round_budget", 0),
            "rung": stats.get("rung"),
        }
        self.outliers.append(entry)
        self.outliers.sort(key=lambda e: (-e["fitness"], e["index"]))
        del self.outliers[10:]
        kind = outcome.get("kind")
        if (
            kind is not None
            and kind != "ExecutionEngine"
            and not outcome.get("budgeted")
        ):
            self.violations.append(
                {
                    "index": index,
                    "cell": self.cells[cell_index].key,
                    "kind": kind,
                    "case": case,
                }
            )
            if self.first_violation_at is None:
                self.first_violation_at = index
        self.executed = index + 1

    def _outcome_dict(
        self, failure: "FuzzFailure | None", stats: CaseStats
    ) -> dict:
        if failure is None:
            return {
                "kind": None,
                "message": None,
                "budgeted": False,
                "stats": stats.to_dict(),
            }
        return {
            "kind": failure.kind,
            "message": failure.message,
            "budgeted": failure.budgeted,
            "stats": stats.to_dict(),
        }

    def _archive(self, index: int, failure: "FuzzFailure") -> None:
        if self.config.artifact_dir is None:
            return
        if self.config.shrink_artifacts:
            failure = shrink_failure(failure, self.registry)
        path = os.path.join(
            self.config.artifact_dir,
            f"search-{self.config.seed}-{index:05d}.json",
        )
        self.artifacts.append(
            save_artifact(failure, path, registry=self.registry)
        )

    # -- the campaign loop -----------------------------------------------

    def run(
        self,
        executions: int,
        journal: CampaignJournal | None = None,
        stop_on_violation: bool = False,
    ) -> SearchReport:
        """Run (or continue) the campaign up to ``executions`` cases.

        With a ``journal``, already-recorded cases are absorbed without
        re-execution and the campaign continues from the first missing
        index; without one the campaign runs fully in memory.
        ``stop_on_violation`` ends the campaign at the first batch
        containing a genuine violation (canary/benchmark mode).
        """
        worker_count = resolve_workers(self.config.workers)
        recorded = list(journal) if journal is not None else []
        index = 0
        while index < executions:
            batch_end = min(executions, index + self.config.batch)
            planned = [self._plan(i) for i in range(index, batch_end)]
            fresh: list[tuple[int, FuzzCase]] = []
            for offset, (cell_index, case) in enumerate(planned):
                if index + offset >= len(recorded):
                    fresh.append((index + offset, case))
            executed = self._execute(fresh, worker_count)
            for offset, (cell_index, case) in enumerate(planned):
                i = index + offset
                case_dict = case.to_dict()
                if i < len(recorded):
                    record = recorded[i]
                    if record.case != case_dict:
                        raise ValueError(
                            f"journal record {i} does not match the "
                            "replanned case -- the manifest was written "
                            "by a different campaign"
                        )
                    outcome = record.outcome
                else:
                    failure, stats = executed[i]
                    outcome = self._outcome_dict(failure, stats)
                    if journal is not None:
                        journal.append(case_dict, outcome)
                    if (
                        failure is not None
                        and failure.kind != "ExecutionEngine"
                        and not failure.budgeted
                    ):
                        self._archive(i, failure)
                self._absorb(i, cell_index, case_dict, outcome)
            index = batch_end
            if stop_on_violation and self.first_violation_at is not None:
                break
        return self._report(worker_count)

    def _execute(
        self, fresh: list[tuple[int, FuzzCase]], worker_count: int
    ) -> dict[int, tuple["FuzzFailure | None", CaseStats]]:
        results: dict[int, tuple[FuzzFailure | None, CaseStats]] = {}
        if not fresh:
            return results
        if worker_count == 1:
            for index, case in fresh:
                results[index] = run_case_ex(case, self.registry)
            return results
        tasks = [
            {
                "case": case.to_dict(),
                "registry_builder": self._builder,
                "protocols": (
                    list(self.config.protocols)
                    if self.config.protocols
                    else None
                ),
            }
            for _, case in fresh
        ]
        collected = run_many(
            _search_worker,
            tasks,
            workers=worker_count,
            timeout_s=self.config.case_timeout_s,
            retries=1,
        )
        for (index, case), outcome in zip(fresh, collected):
            self.retries += outcome.retries
            if outcome.ok:
                results[index] = outcome.value
            else:
                # the engine lost this case; record it as such rather
                # than aborting (and never as a protocol violation).
                failure = FuzzFailure(
                    case=case,
                    kind="ExecutionEngine",
                    message=f"{outcome.error_type}: {outcome.error}",
                    inputs=[],
                    initial_corruptions=set(),
                    script={},
                    adapt_schedule=[],
                )
                results[index] = (failure, CaseStats())
        return results

    def _report(self, worker_count: int) -> SearchReport:
        arms = {}
        for index, cell in enumerate(self.cells):
            if self.plays[index]:
                arms[cell.key] = {
                    "plays": self.plays[index],
                    "mean_reward": round(
                        self.reward[index] / self.plays[index], 6
                    ),
                }
        return SearchReport(
            seed=self.config.seed,
            guided=self.config.guided,
            executions=self.executed,
            violations=list(self.violations),
            outliers=list(self.outliers),
            corpus_size=len(self.corpus),
            arms=arms,
            first_violation_at=self.first_violation_at,
            retries=self.retries,
            workers=worker_count,
            artifacts=list(self.artifacts),
        )


# ---------------------------------------------------------------------------
# Manifest-aware front door
# ---------------------------------------------------------------------------


def run_search(
    config: SearchConfig,
    executions: int,
    manifest: str | None = None,
    resume: bool = False,
    stop_on_violation: bool = False,
) -> SearchReport:
    """Run a search campaign, optionally journaled and resumable.

    ``manifest`` names the campaign journal.  With ``resume=False`` a
    fresh journal is created (refusing to clobber an existing one);
    with ``resume=True`` the journal is opened, its header validated
    against ``config``, its records absorbed without re-execution, and
    the campaign continues to ``executions`` total cases.  The report
    of a resumed campaign is byte-identical to an uninterrupted one.
    """
    engine = SearchEngine(config)
    journal: CampaignJournal | None = None
    if manifest is not None:
        wanted = config.manifest_config(engine.cells)
        if resume:
            journal = CampaignJournal.open_(manifest)
            journal.require_config(wanted)
        else:
            if os.path.exists(manifest):
                raise FileExistsError(
                    f"manifest {manifest} already exists; pass resume=True "
                    "to continue it or choose a new path"
                )
            journal = CampaignJournal.create(manifest, wanted)
    return engine.run(
        executions, journal=journal, stop_on_violation=stop_on_violation
    )
