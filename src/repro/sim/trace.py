"""Execution tracing: per-round records for debugging and analysis.

Enable with ``SynchronousNetwork(..., trace=True)`` (or
``run_protocol(..., trace=True)``); the resulting
``ExecutionResult.trace`` is a list of :class:`RoundRecord`, one per
simulated round.  Traces power

* debugging (which subprotocol was active when behaviour diverged),
* the per-round communication profiles in the analysis notebooks,
* tests asserting *when* things happen (e.g. that the distributing step
  only fires after a non-bottom root agreement),
* the online invariant monitors of :mod:`repro.sim.invariants`, which
  attach the offending record to every ``ProtocolViolation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundRecord", "summarize_trace"]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """What happened in one synchronous round."""

    round_index: int
    channel: str
    honest_messages: int
    honest_bits: int
    byzantine_messages: int
    corrupted: frozenset[int]
    finished_parties: frozenset[int]
    #: distinct channel labels the running honest parties yielded this
    #: round; more than one entry means the lockstep discipline broke.
    honest_channels: tuple[str, ...] = ()
    #: adaptive corruptions accepted at this round boundary (effective
    #: from the next round).
    new_corruptions: frozenset[int] = field(default_factory=frozenset)
    #: adaptive corruptions the adversary requested but the ``t`` budget
    #: clipped -- an over-powered adversary config, made visible.
    clipped_corruptions: frozenset[int] = field(default_factory=frozenset)
    #: honest parties powered off (crash plane) during this round.
    down_parties: frozenset[int] = field(default_factory=frozenset)
    #: parties that replayed their WAL and rejoined at this round's start.
    restarted_parties: frozenset[int] = field(default_factory=frozenset)
    #: crash requests accepted at this round boundary (down next round).
    new_crashes: frozenset[int] = field(default_factory=frozenset)
    #: crash requests the combined ``t`` budget clipped.
    clipped_crashes: frozenset[int] = field(default_factory=frozenset)

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by repro artifacts)."""
        return {
            "round_index": self.round_index,
            "channel": self.channel,
            "honest_messages": self.honest_messages,
            "honest_bits": self.honest_bits,
            "byzantine_messages": self.byzantine_messages,
            "corrupted": sorted(self.corrupted),
            "finished_parties": sorted(self.finished_parties),
            "honest_channels": list(self.honest_channels),
            "new_corruptions": sorted(self.new_corruptions),
            "clipped_corruptions": sorted(self.clipped_corruptions),
            "down_parties": sorted(self.down_parties),
            "restarted_parties": sorted(self.restarted_parties),
            "new_crashes": sorted(self.new_crashes),
            "clipped_crashes": sorted(self.clipped_crashes),
        }


def summarize_trace(trace: list[RoundRecord]) -> dict[str, dict[str, int]]:
    """Aggregate a trace by channel: rounds, messages, bits.

    Returns ``{channel: {"rounds": r, "messages": m, "bits": b}}``.
    """
    summary: dict[str, dict[str, int]] = {}
    for record in trace:
        entry = summary.setdefault(
            record.channel, {"rounds": 0, "messages": 0, "bits": 0}
        )
        entry["rounds"] += 1
        entry["messages"] += record.honest_messages
        entry["bits"] += record.honest_bits
    return summary
