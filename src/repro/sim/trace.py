"""Execution tracing: per-round records for debugging and analysis.

Enable with ``SynchronousNetwork(..., trace=True)`` (or
``run_protocol(..., trace=True)``); the resulting
``ExecutionResult.trace`` is a list of :class:`RoundRecord`, one per
simulated round.  Traces power

* debugging (which subprotocol was active when behaviour diverged),
* the per-round communication profiles in the analysis notebooks,
* tests asserting *when* things happen (e.g. that the distributing step
  only fires after a non-bottom root agreement).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RoundRecord", "summarize_trace"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one synchronous round."""

    round_index: int
    channel: str
    honest_messages: int
    honest_bits: int
    byzantine_messages: int
    corrupted: frozenset[int]
    finished_parties: frozenset[int]


def summarize_trace(trace: list[RoundRecord]) -> dict[str, dict[str, int]]:
    """Aggregate a trace by channel: rounds, messages, bits.

    Returns ``{channel: {"rounds": r, "messages": m, "bits": b}}``.
    """
    summary: dict[str, dict[str, int]] = {}
    for record in trace:
        entry = summary.setdefault(
            record.channel, {"rounds": 0, "messages": 0, "bits": 0}
        )
        entry["rounds"] += 1
        entry["messages"] += record.honest_messages
        entry["bits"] += record.honest_bits
    return summary
