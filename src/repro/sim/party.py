"""Party-side execution model: protocols as generators.

A protocol is written as a Python generator function taking a
:class:`Context` plus its inputs.  Each synchronous round of the paper's
model is one ``yield`` of an :class:`Outgoing` bundle:

* the protocol *yields* the messages it wants to send this round
  (``{destination_id: payload}``), and
* the ``yield`` expression *evaluates to* the party's inbox for the round
  (``{sender_id: payload}``), once the simulator has delivered everything
  (honest traffic plus whatever the adversary injected).

Subprotocols compose with ``yield from``, and their return value is the
subprotocol output -- exactly the structure of the paper's pseudocode,
where e.g. ``FixedLengthCA`` "joins" ``FindPrefix`` and then uses its
return values.

The ``channel`` label attached to each round is pure metadata: it names
the (sub)protocol step for communication accounting and gives scripted
adversaries a hook to target specific steps.  Honest parties never trust
it for correctness (the model's synchrony already keeps honest parties in
lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, TypeVar

from ..errors import ConfigurationError

__all__ = ["Outgoing", "Context", "Proto", "exchange", "broadcast_round"]

T = TypeVar("T")

#: A protocol body: yields per-round outgoing bundles, receives inboxes,
#: returns its output.
Proto = Generator["Outgoing", dict[int, Any], T]


@dataclass(slots=True)
class Outgoing:
    """One party's outgoing traffic for one synchronous round.

    ``slots=True``: one ``Outgoing`` is allocated per party per round,
    so the per-instance ``__dict__`` was pure scheduler overhead.
    """

    channel: str
    messages: dict[int, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class Context:
    """Immutable per-party view of the protocol parameters.

    Attributes:
        party_id: This party's index in ``0..n-1``.  (The paper's
            ``P_1..P_n`` maps to indices ``0..n-1``.)
        n: Total number of parties.
        t: Maximum number of corruptions tolerated; ``t < n/3``.
        kappa: Security parameter -- output length of ``H_kappa`` in bits.
        cache: Execution-scoped memo space for pure recomputations
            (RS encodings, Merkle forests).  Excluded from equality and
            repr; each party gets a fresh dict per execution, so entries
            never leak across parties, executions, or worker processes.
    """

    party_id: int
    n: int
    t: int
    kappa: int = 128
    cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ConfigurationError(
                f"need 0 <= t < n, got n={self.n}, t={self.t}"
            )
        if not 0 <= self.party_id < self.n:
            raise ConfigurationError(
                f"party_id {self.party_id} out of range for n={self.n}"
            )
        if self.kappa < 8 or self.kappa % 8:
            raise ConfigurationError(
                f"kappa must be a positive multiple of 8, got {self.kappa}"
            )

    def require_resilience(self, denominator: int) -> None:
        """Assert this protocol's resilience bound ``t < n/denominator``.

        Resilience is a *protocol* property, not a network property: the
        paper's CA stack needs ``t < n/3`` (optimal, Section 2) while the
        authenticated-setting protocols of the open-problems section
        tolerate ``t < n/2``.  Each protocol entry point declares its own
        bound.
        """
        if denominator * self.t >= self.n:
            raise ConfigurationError(
                f"protocol requires t < n/{denominator}, "
                f"got n={self.n}, t={self.t}"
            )

    @property
    def all_parties(self) -> range:
        """All party ids, ``0..n-1``."""
        return range(self.n)

    @property
    def quorum(self) -> int:
        """``n - t``: the size of an honest-majority quorum."""
        return self.n - self.t

    @property
    def pre_agreement(self) -> int:
        """``n - 2t``: the Bounded Pre-Agreement threshold of the paper."""
        return self.n - 2 * self.t


def exchange(
    channel: str, messages: dict[int, Any]
) -> Proto[dict[int, Any]]:
    """Run one round: send ``messages`` and return the received inbox."""
    inbox = yield Outgoing(channel=channel, messages=dict(messages))
    return inbox


def broadcast_round(
    ctx: Context, channel: str, payload: Any
) -> Proto[dict[int, Any]]:
    """Send ``payload`` to all n parties (self included) for one round."""
    # fromkeys builds the bundle at C speed; same keys, same order.
    messages = dict.fromkeys(ctx.all_parties, payload)
    inbox = yield Outgoing(channel=channel, messages=messages)
    return inbox
