"""Chaos driver: randomized fault campaigns with shrinking repro artifacts.

The fuzzer closes the loop the ROADMAP asks for ("handles as many
scenarios as you can imagine"): instead of a fixed battery of ten
adversaries, it samples ``(protocol, n, t, ell, adversary composition,
fault spec, seed)`` configurations, runs each under the online invariant
monitors of :mod:`repro.sim.invariants`, and on failure

1. **shrinks** the failing execution -- delta-debugging the recorded
   byzantine message script and the adaptive-corruption schedule down
   to a minimal set that still triggers the same violation -- and
2. dumps a JSON **repro artifact** that replays byte-identically via
   :class:`~repro.sim.faults.ReplayAdversary`, independent of the
   strategies that originally produced the failure.

Surface: ``python -m repro fuzz`` / ``python -m repro replay``, or
programmatically::

    from repro.sim.fuzz import fuzz, replay_artifact

    report = fuzz(runs=50, seed=0)
    assert not report.failures

Every step is deterministic in the top-level seed: the same seed yields
the same campaign, the same failures, and the same shrunk artifacts.
Case ``i`` is seeded with ``H(campaign_seed, i)``
(:func:`repro.sim.parallel.derive_seed`), never with a position in a
shared RNG stream -- so campaigns fan out over worker processes
(``workers > 1``) and still produce **byte-identical** reports and
repro artifacts to a serial run.
"""

from __future__ import annotations

import json
import math
import os
import random
import warnings
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from fractions import Fraction
from typing import Any, Callable

from ..perf import counters as perf_counters
from ..perf.config import reset_process_caches

from ..core.bitstrings import BitString
from ..errors import HonestPartyError, ProtocolViolation, SimulationError
from .adversary import (
    Adversary,
    CrashAdversary,
    EquivocatingAdversary,
    KingTargetingAdversary,
    OutlierAdversary,
    PassiveAdversary,
    PrefixPoisonAdversary,
    RandomGarbageAdversary,
    SplitVoteAdversary,
    WitnessSuppressionAdversary,
)
from .bombs import BOMB_CATALOG
from .faults import ComposedAdversary, FaultSpec, RecordingAdversary, \
    ReplayAdversary
from .lossy import LossyTransport
from .invariants import (
    AgreementMonitor,
    BitBudgetMonitor,
    ConvexValidityMonitor,
    InvariantMonitor,
    LivenessMonitor,
    LockstepMonitor,
    RoundBudgetMonitor,
    paper_bit_budget,
    paper_round_budget,
)
from .network import ProtocolFactory, SynchronousNetwork
from .parallel import derive_seed, resolve_workers, run_many
from .supervisor import run_with_escalation
from .wire import WireLimits

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_SCHEMA_VERSION",
    "ADVERSARY_CATALOG",
    "ProtocolSpec",
    "CaseStats",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "standard_registry",
    "sample_faults",
    "sample_case",
    "sample_case_at",
    "run_case",
    "run_case_ex",
    "shrink_failure",
    "failure_to_artifact",
    "save_artifact",
    "load_artifact",
    "validate_artifact",
    "replay_artifact",
    "replay_counters",
    "fuzz",
    "encode_payload",
    "decode_payload",
]

ARTIFACT_FORMAT = "repro-fuzz/1"

#: Version of the artifact *schema* (the set and meaning of the keys).
#: Bumped whenever a ``FaultSpec`` axis or artifact section is added, so
#: corpus files written by an older (or newer) toolchain fail loudly on
#: load instead of replaying with silently-defaulted fault axes.
#: History: 1 = implicit (pre-versioned artifacts, PR 1-7); 2 = adds the
#: ``schema_version`` stamp itself and the optional ``counters`` block;
#: 3 = adds ``FuzzCase.guards`` (the hostile-payload wire-guard plane)
#: and the ``float``/``set`` payload tags the bomb adversaries need.
ARTIFACT_SCHEMA_VERSION = 3

#: Deterministic counters that are independent of process-level cache
#: state: safe to record per-case without a cache reset, and therefore
#: safe to journal (identical on any worker, any backend, any host).
NETWORK_COUNTERS = (
    "net_rounds",
    "net_messages",
    "transport_resyncs",
    "transport_beacons",
    "guard_checks",
    "guard_quarantined",
)


# ---------------------------------------------------------------------------
# Payload <-> JSON codec (repro artifacts must round-trip protocol payloads)
# ---------------------------------------------------------------------------


def encode_payload(payload: Any) -> Any:
    """Encode one wire payload as a JSON-safe tagged value."""
    if payload is None:
        return {"t": "none"}
    if isinstance(payload, bool):
        return {"t": "bool", "v": payload}
    if isinstance(payload, int):
        return {"t": "int", "v": str(payload)}
    if isinstance(payload, float):
        # repr round-trips every finite float (and inf/nan) exactly.
        return {"t": "float", "v": repr(payload)}
    if isinstance(payload, (bytes, bytearray)):
        return {"t": "bytes", "v": bytes(payload).hex()}
    if isinstance(payload, str):
        return {"t": "str", "v": payload}
    if isinstance(payload, BitString):
        return {"t": "bits", "v": str(payload.value), "len": payload.length}
    if isinstance(payload, tuple):
        return {"t": "tuple", "v": [encode_payload(x) for x in payload]}
    if isinstance(payload, list):
        return {"t": "list", "v": [encode_payload(x) for x in payload]}
    if isinstance(payload, frozenset):
        encoded = [encode_payload(x) for x in payload]
        return {"t": "fset", "v": sorted(encoded, key=json.dumps)}
    if isinstance(payload, set):
        encoded = [encode_payload(x) for x in payload]
        return {"t": "set", "v": sorted(encoded, key=json.dumps)}
    if isinstance(payload, dict):
        return {
            "t": "dict",
            "v": [
                [encode_payload(k), encode_payload(v)]
                for k, v in payload.items()
            ],
        }
    raise ValueError(f"cannot encode payload of type {type(payload)!r}")


def decode_payload(data: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    tag = data["t"]
    if tag == "none":
        return None
    if tag == "bool":
        return bool(data["v"])
    if tag == "int":
        return int(data["v"])
    if tag == "float":
        return float(data["v"])
    if tag == "bytes":
        return bytes.fromhex(data["v"])
    if tag == "str":
        return data["v"]
    if tag == "bits":
        return BitString(int(data["v"]), data["len"])
    if tag == "tuple":
        return tuple(decode_payload(x) for x in data["v"])
    if tag == "list":
        return [decode_payload(x) for x in data["v"]]
    if tag == "fset":
        return frozenset(decode_payload(x) for x in data["v"])
    if tag == "set":
        return {decode_payload(x) for x in data["v"]}
    if tag == "dict":
        return {decode_payload(k): decode_payload(v) for k, v in data["v"]}
    raise ValueError(f"unknown payload tag {tag!r}")


# ---------------------------------------------------------------------------
# Protocol registry: factory + theory-derived budget envelopes per protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolSpec:
    """One fuzzable protocol: how to build it and what it may cost."""

    name: str
    #: ``(ell) -> (ctx, v) -> generator``; ``ell`` is the nominal input
    #: bit-length of the campaign case.
    build: Callable[[int], ProtocolFactory]
    #: honest-bit envelope, derived from the protocol's complexity bound.
    bit_budget: Callable[[int, int, int, int], int]
    #: round envelope, derived from the protocol's round complexity.
    round_budget: Callable[[int, int, int], int]
    #: inputs are signed integers (PI_Z) or naturals (everything else).
    signed: bool = False
    #: constraint on ell (e.g. blocks needs a multiple of n^2).
    ell_for: Callable[[int, int], int] = lambda n, ell: ell


def _baseline_bit_budget(n: int, t: int, ell: int, kappa: int) -> int:
    # broadcast baselines cost up to O(l n^3): stay loose but bounded.
    return 96 * (ell + kappa) * n * n * n * (t + 2) + (1 << 18)


def _high_cost_bit_budget(n: int, t: int, ell: int, kappa: int) -> int:
    # HighCostCA sends whole values n^2 times per phase, t + 1 phases.
    return 96 * (ell + kappa) * n * n * (t + 2) + (1 << 18)


def _high_cost_round_budget(n: int, t: int, ell: int) -> int:
    return 8 * (2 + 4 * (t + 1)) + 32


def standard_registry() -> dict[str, ProtocolSpec]:
    """The top-level protocol set the chaos campaigns cover."""
    from ..baselines import broadcast_ca, naive_broadcast_ca
    from ..core.fixed_length import fixed_length_ca, fixed_length_ca_blocks
    from ..core.high_cost_ca import high_cost_ca
    from ..core.protocol_n import protocol_n
    from ..core.protocol_z import protocol_z

    def blocks_ell(n: int, ell: int) -> int:
        # FixedLengthCABlocks needs ell to be a positive multiple of n^2.
        n_sq = n * n
        return max(n_sq, (ell // n_sq) * n_sq or n_sq)

    return {
        "pi_z": ProtocolSpec(
            name="pi_z",
            build=lambda ell: (lambda ctx, v: protocol_z(ctx, v)),
            bit_budget=paper_bit_budget,
            round_budget=paper_round_budget,
            signed=True,
        ),
        "pi_n": ProtocolSpec(
            name="pi_n",
            build=lambda ell: (lambda ctx, v: protocol_n(ctx, v)),
            bit_budget=paper_bit_budget,
            round_budget=paper_round_budget,
        ),
        "fixed_length_ca": ProtocolSpec(
            name="fixed_length_ca",
            build=lambda ell: (
                lambda ctx, v: fixed_length_ca(ctx, v, ell)
            ),
            bit_budget=paper_bit_budget,
            round_budget=paper_round_budget,
        ),
        "fixed_length_ca_blocks": ProtocolSpec(
            name="fixed_length_ca_blocks",
            build=lambda ell: (
                lambda ctx, v: fixed_length_ca_blocks(ctx, v, ell)
            ),
            bit_budget=paper_bit_budget,
            round_budget=paper_round_budget,
            ell_for=blocks_ell,
        ),
        "high_cost_ca": ProtocolSpec(
            name="high_cost_ca",
            build=lambda ell: (lambda ctx, v: high_cost_ca(ctx, v)),
            bit_budget=_high_cost_bit_budget,
            round_budget=_high_cost_round_budget,
        ),
        "broadcast_ca": ProtocolSpec(
            name="broadcast_ca",
            build=lambda ell: (lambda ctx, v: broadcast_ca(ctx, v)),
            bit_budget=_baseline_bit_budget,
            round_budget=paper_round_budget,
        ),
        "naive_broadcast_ca": ProtocolSpec(
            name="naive_broadcast_ca",
            build=lambda ell: (lambda ctx, v: naive_broadcast_ca(ctx, v)),
            bit_budget=_baseline_bit_budget,
            round_budget=paper_round_budget,
        ),
    }


#: name -> builder(seed) for the strategies campaigns compose.
ADVERSARY_CATALOG: dict[str, Callable[[int], Adversary]] = {
    "passive": lambda seed: PassiveAdversary(seed),
    "crash0": lambda seed: CrashAdversary(0, seed),
    "crash3": lambda seed: CrashAdversary(3, seed),
    "garbage": lambda seed: RandomGarbageAdversary(seed),
    "equivocate": lambda seed: EquivocatingAdversary(seed),
    "outlier": lambda seed: OutlierAdversary(seed=seed),
    "splitvote": lambda seed: SplitVoteAdversary(alt_value=1, seed=seed),
    "king": lambda seed: KingTargetingAdversary(seed=seed),
    "prefixpoison": lambda seed: PrefixPoisonAdversary(seed=seed),
    "witness": lambda seed: WitnessSuppressionAdversary(seed=seed),
}


# ---------------------------------------------------------------------------
# Campaign cases
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """One sampled chaos configuration (fully deterministic in itself)."""

    protocol: str
    n: int
    t: int
    ell: int
    kappa: int
    spread: str
    adversaries: tuple[str, ...]
    faults: FaultSpec
    seed: int
    #: honest parties run the wire guards (quarantining hostile traffic)
    #: -- set on every bomb-plane case, off elsewhere so pre-existing
    #: campaigns replay byte-identically.
    guards: bool = False

    def describe(self) -> str:
        adv = "+".join(self.adversaries)
        guard_tag = " [guards]" if self.guards else ""
        return (
            f"{self.protocol}(n={self.n}, t={self.t}, ell={self.ell}, "
            f"{self.spread}) vs {adv} % {self.faults.describe()} "
            f"seed={self.seed}{guard_tag}"
        )

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "ell": self.ell,
            "kappa": self.kappa,
            "spread": self.spread,
            "adversaries": list(self.adversaries),
            "faults": self.faults.to_dict(),
            "seed": self.seed,
            "guards": self.guards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            protocol=data["protocol"],
            n=data["n"],
            t=data["t"],
            ell=data["ell"],
            kappa=data["kappa"],
            spread=data["spread"],
            adversaries=tuple(data["adversaries"]),
            faults=FaultSpec.from_dict(data["faults"]),
            seed=data["seed"],
            guards=data.get("guards", False),
        )


_SPREADS = ("spread", "clustered", "identical")
_FAULT_RATES = (0.0, 0.05, 0.2, 0.5)
#: honest-link loss rates stay < 1 (the synchronizer must converge) and
#: modest (every drop costs simulated backoff slots).
_LINK_RATES = (0.0, 0.05, 0.2)
#: pre-GST extra loss rates the partition campaigns sample.
_PRE_GST_RATES = (0.0, 0.3, 0.6)


def sample_faults(
    rng: random.Random,
    n: int,
    t: int,
    crash: bool = False,
    partition: bool = False,
) -> FaultSpec:
    """Draw one :class:`FaultSpec` from the campaign distribution.

    Shared by :func:`sample_case` and the adversary-search engine's
    fresh-case synthesis (:mod:`repro.sim.search`); the draw order is
    part of the campaign determinism contract and must not change.
    """
    drop = rng.choice(_FAULT_RATES)
    duplicate = rng.choice(_FAULT_RATES)
    garble = rng.choice(_FAULT_RATES)
    replay = rng.choice(_FAULT_RATES)
    fault_seed = rng.getrandbits(32)
    link_drop = link_delay = link_reorder = 0.0
    crashes: tuple[tuple[int, int, int], ...] = ()
    if crash:
        link_drop = rng.choice(_LINK_RATES)
        link_delay = rng.choice(_LINK_RATES)
        link_reorder = rng.choice(_FAULT_RATES)
        windows: dict[int, tuple[int, int, int]] = {}
        for _ in range(rng.randint(0, t)):
            party = rng.randrange(n)
            down = rng.randint(1, 10)
            up = down + rng.randint(1, 5)
            windows[party] = (party, down, up)
        crashes = tuple(windows[party] for party in sorted(windows))
    gst: int | None = None
    pre_gst_drop = 0.0
    partitions: tuple[tuple[int, int, tuple[int, ...]], ...] = ()
    link_churn: tuple[tuple[int, int, float], ...] = ()
    if partition:
        if rng.random() < 0.7:
            gst = rng.randrange(0, 400)
            pre_gst_drop = rng.choice(_PRE_GST_RATES)
        part_windows: list[tuple[int, int, tuple[int, ...]]] = []
        for _ in range(rng.randint(0, 2)):
            start = rng.randrange(0, 300)
            # most partitions heal inside the escalated budgets; a
            # never-healing one exercises the failover ladder end to end.
            heal = (
                -1
                if rng.random() < 0.15
                else start + rng.randint(20, 400)
            )
            size = rng.randint(1, n - 1)
            members = tuple(sorted(rng.sample(range(n), size)))
            part_windows.append((start, heal, members))
        partitions = tuple(part_windows)
        churn_windows: list[tuple[int, int, float]] = []
        for _ in range(rng.randint(0, 2)):
            start = rng.randrange(0, 300)
            end = start + rng.randint(10, 200)
            churn_windows.append((start, end, rng.choice((0.3, 0.6))))
        link_churn = tuple(churn_windows)
    return FaultSpec(
        drop=drop,
        duplicate=duplicate,
        garble=garble,
        replay=replay,
        seed=fault_seed,
        link_drop=link_drop,
        link_delay=link_delay,
        link_reorder=link_reorder,
        crashes=crashes,
        gst=gst,
        pre_gst_drop=pre_gst_drop,
        partitions=partitions,
        link_churn=link_churn,
    )


def sample_case(
    rng: random.Random,
    registry: dict[str, ProtocolSpec],
    crash: bool = False,
    partition: bool = False,
    bombs: bool = False,
) -> FuzzCase:
    """Draw one chaos configuration from the campaign distribution.

    ``crash=True`` additionally samples the resilience-plane axes:
    honest-link drop/delay/reorder rates (realised by a
    ``LossyTransport``) and up to ``t`` crash/restart windows for honest
    parties (realised by WAL replay).  ``partition=True`` further
    samples the partial-synchrony axes: a GST with pre-GST extra loss,
    healing (or never-healing) partition windows, and link-churn
    slowdown windows, all keyed in global transport slots.  Every extra
    draw is gated on its flag and appended *after* the existing draws,
    so ``crash=False`` / ``partition=False`` campaigns sample exactly
    the same cases as before each plane existed.

    ``bombs=True`` appends one or two payload-bomb adversaries (drawn
    from the separate :data:`~repro.sim.bombs.BOMB_CATALOG`) to the
    composition and arms the honest wire guards (``guards=True``).  The
    bomb draws come *after* every pre-existing draw -- including the
    case seed -- so ``bombs=False`` campaigns are untouched.
    """
    name = rng.choice(sorted(registry))
    spec = registry[name]
    n = rng.choice((4, 5, 6, 7))
    t = rng.randint(1, max(1, (n - 1) // 3))
    ell = spec.ell_for(n, rng.choice((8, 16, 32, 64, 128)))
    count = rng.randint(1, 3)
    adversaries = tuple(
        rng.choice(sorted(ADVERSARY_CATALOG)) for _ in range(count)
    )
    faults = sample_faults(rng, n, t, crash=crash, partition=partition)
    spread = rng.choice(_SPREADS)
    case_seed = rng.getrandbits(32)
    guards = False
    if bombs:
        guards = True
        extra = rng.randint(1, 2)
        adversaries = adversaries + tuple(
            rng.choice(sorted(BOMB_CATALOG)) for _ in range(extra)
        )
    return FuzzCase(
        protocol=name,
        n=n,
        t=t,
        ell=ell,
        kappa=64,
        spread=spread,
        adversaries=adversaries,
        faults=faults,
        seed=case_seed,
        guards=guards,
    )


def sample_case_at(
    campaign_seed: int,
    index: int,
    registry: dict[str, ProtocolSpec],
    crash: bool = False,
    partition: bool = False,
    bombs: bool = False,
) -> FuzzCase:
    """Case ``index`` of the campaign with seed ``campaign_seed``.

    The case is a pure function of ``(campaign_seed, index, registry)``
    -- its RNG is seeded with ``derive_seed(campaign_seed, index)``, not
    drawn from a stream shared across cases -- so any case can be
    recomputed in isolation on any worker, which is what lets parallel
    campaigns replicate serial ones exactly.
    """
    rng = random.Random(derive_seed(campaign_seed, index))
    return sample_case(
        rng, registry, crash=crash, partition=partition, bombs=bombs
    )


def case_inputs(case: FuzzCase) -> list[int]:
    """Deterministic per-party inputs for a case (honest workload)."""
    rng = random.Random(
        repr(("inputs", case.seed, case.n, case.ell, case.spread))
    )
    top = 1 << case.ell
    if case.spread == "identical":
        values = [rng.randrange(top)] * case.n
    elif case.spread == "clustered":
        cluster_bits = max(1, min(8, case.ell - 1))
        base = rng.randrange(max(1, top >> cluster_bits)) << cluster_bits
        values = [
            base + rng.randrange(1 << cluster_bits) for _ in range(case.n)
        ]
    else:
        values = [rng.randrange(top) for _ in range(case.n)]
    return values


def _build_inputs(
    case: FuzzCase, spec: ProtocolSpec
) -> list[int]:
    values = case_inputs(case)
    if spec.signed:
        rng = random.Random(repr(("signs", case.seed)))
        sign = -1 if rng.random() < 0.5 else 1
        # one common sign keeps the clustered/identical regimes intact
        # while still exercising PI_Z's sign agreement.
        values = [sign * v for v in values]
    return values


def case_monitors(case: FuzzCase, spec: ProtocolSpec) -> list[InvariantMonitor]:
    """The monitor stack for one case, with per-protocol envelopes."""
    return [
        LockstepMonitor(),
        AgreementMonitor(),
        ConvexValidityMonitor(),
        BitBudgetMonitor(
            total=spec.bit_budget(case.n, case.t, case.ell, case.kappa)
        ),
        RoundBudgetMonitor(
            limit=spec.round_budget(case.n, case.t, case.ell)
        ),
    ]


def _max_concurrent_crashes(
    crashes: tuple[tuple[int, int, int], ...]
) -> int:
    """Peak number of simultaneously-down parties a schedule requests."""
    events: list[tuple[int, int]] = []
    for _, down, up in crashes:
        events.append((down, 1))
        events.append((up, -1))
    events.sort()
    current = peak = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def _build_adversary(case: FuzzCase) -> RecordingAdversary:
    # bomb names resolve against the union; keeping the catalogs
    # separate preserves the base catalog's sorted-key sampling order.
    catalog = {**ADVERSARY_CATALOG, **BOMB_CATALOG}
    parts = [
        catalog[name](case.seed + index)
        for index, name in enumerate(case.adversaries)
    ]
    composed = ComposedAdversary(
        parts, faults=case.faults, seed=case.seed
    )
    if case.faults.has_crashes:
        # Crashed-down parties share the t budget with corruptions;
        # reserve headroom for the schedule's peak so the crashes
        # actually fire instead of being clipped at runtime.
        reserve = _max_concurrent_crashes(case.faults.crashes)
        budget = max(0, case.t - reserve)
        union: set[int] = set()
        for part in parts:
            union |= part.select_corruptions(case.n, case.t)
        composed.initial = set(sorted(union)[:budget])
    return RecordingAdversary(composed)


@dataclass
class FuzzFailure:
    """A monitored invariant violation plus everything needed to replay."""

    case: FuzzCase
    kind: str  # monitor name, or "SimulationError"
    message: str
    inputs: list[int]
    initial_corruptions: set[int]
    script: dict[tuple[int, int, int], Any]
    adapt_schedule: list[tuple[int, int]]
    crash_schedule: list[tuple[int, int, int]] = field(default_factory=list)
    shrunk: bool = False
    shrink_runs: int = 0
    original_script_size: int = 0

    @property
    def budgeted(self) -> bool:
        """A spec-compliant terminal outcome, not a protocol bug.

        An exhausted escalation ladder is the documented end state for
        network schedules no rung can survive (e.g. a never-healing
        partition with ``5t >= n``, where the async rung is
        infeasible).  Such failures are still shrunk and archived --
        they are replayable evidence of the schedule -- but a soak
        campaign may tolerate them while staying fatal on everything
        else.
        """
        return (
            self.kind == "SimulationError"
            and "escalation ladder exhausted" in self.message
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    runs: int
    seed: int
    cases: list[FuzzCase] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)
    artifacts: list[str] = field(default_factory=list)
    #: worker processes the campaign ran on (reporting only: the report
    #: content is independent of it by construction).
    workers: int = 1
    #: the campaign sampled the crash/link resilience axes too.
    crash: bool = False
    #: the campaign sampled the partial-synchrony axes too.
    partition: bool = False
    #: the campaign sampled the payload-bomb adversaries (guards armed).
    bombs: bool = False
    #: execution-engine incidents: cases whose worker process died, and
    #: cases that exceeded the per-case time budget.  Both also appear
    #: as ``ExecutionEngine`` failures; the counts make the engine's
    #: health visible at a glance in the summary and CLI output.
    worker_crashes: int = 0
    case_timeouts: int = 0
    #: transient-case retries the engine performed (a crashed/timed-out
    #: case is re-run once on a fresh pool with the same derived seed
    #: before being recorded as terminal).
    retries: int = 0
    #: timeout-escalation accounting across the campaign's completed
    #: cases: total transport-level resyncs, cases that needed at least
    #: one, and degradations per escalation-ladder rung.
    resyncs: int = 0
    escalated_cases: int = 0
    degradations: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.failures

    @property
    def unbudgeted_failures(self) -> list[FuzzFailure]:
        """Failures that are genuine bugs, not budgeted ladder ends."""
        return [f for f in self.failures if not f.budgeted]

    def summary(self) -> str:
        crash_tag = ", crash plane" if self.crash else ""
        partition_tag = ", partition plane" if self.partition else ""
        bomb_tag = ", bomb plane" if self.bombs else ""
        lines = [
            f"fuzz campaign: {self.runs} runs, seed {self.seed}"
            f"{crash_tag}{partition_tag}{bomb_tag}, "
            f"{len(self.failures)} failure(s)"
        ]
        if self.worker_crashes or self.case_timeouts or self.retries:
            lines.append(
                f"  engine: {self.worker_crashes} worker crash(es), "
                f"{self.case_timeouts} case timeout(s), "
                f"{self.retries} retried case(s)"
            )
        if self.resyncs or self.escalated_cases or self.degradations:
            rungs = ", ".join(
                f"{rung}: {count}"
                for rung, count in sorted(self.degradations.items())
            )
            lines.append(
                f"  escalation: {self.resyncs} timeout escalation(s) "
                f"across {self.escalated_cases} case(s)"
                + (f"; degraded -> {rungs}" if rungs else "")
            )
        for index, failure in enumerate(self.failures):
            path = (
                self.artifacts[index] if index < len(self.artifacts) else None
            )
            tag = " (budgeted)" if failure.budgeted else ""
            lines.append(
                f"  [{failure.kind}]{tag} {failure.case.describe()}"
            )
            lines.append(f"    {failure.message}")
            if failure.shrunk:
                lines.append(
                    f"    shrunk script: {failure.original_script_size} -> "
                    f"{len(failure.script)} messages "
                    f"({failure.shrink_runs} replays)"
                )
            if path:
                lines.append(f"    artifact: {path}")
        return "\n".join(lines)


def _case_epsilon(case: FuzzCase) -> int:
    """Coarse async-AA epsilon for a case: a few convergence iterations.

    The AA rung costs ``O(log(range/eps))`` iterations of ``n`` RBC
    instances; a campaign-friendly epsilon keeps that logarithm small
    while still exercising the rung.
    """
    return max(1, 1 << max(0, case.ell - 6))


def _check_escalated(case: FuzzCase, inputs: list[int], result) -> None:
    """Post-hoc invariants for ladder-degraded outputs.

    The primary's online monitors never saw the fallback execution, so
    the campaign re-checks the paper's guarantees on the final outputs:
    exact agreement and hull containment for the ``high_cost_ca`` rung,
    epsilon-agreement and hull containment for ``async_aa``.
    """
    record = result.fallback
    if record is None:
        return
    honest_inputs = [
        inputs[party]
        for party in range(case.n)
        if party not in result.corrupted
    ]
    low, high = min(honest_inputs), max(honest_inputs)
    values = [result.outputs[party] for party in result.honest_parties]
    if not values:
        raise ProtocolViolation(
            "escalated execution produced no honest outputs",
            monitor="EscalationAgreement",
        )
    epsilon = Fraction(record.epsilon) if record.epsilon else Fraction(0)
    spread = max(values) - min(values)
    if spread > epsilon:
        raise ProtocolViolation(
            f"escalated outputs disagree by {spread} > eps={epsilon} "
            f"on rung {record.rung}: {values}",
            monitor="EscalationAgreement",
        )
    if min(values) < low or max(values) > high:
        raise ProtocolViolation(
            f"escalated outputs {values} leave the honest hull "
            f"[{low}, {high}] on rung {record.rung}",
            monitor="EscalationValidity",
        )


def _execute(
    case: FuzzCase,
    spec: ProtocolSpec,
    inputs: list[int],
    adversary: Adversary,
):
    """Run one monitored execution; raises on any invariant violation.

    Partial-synchrony cases run through the supervisor's escalation
    ladder (:func:`~repro.sim.supervisor.run_with_escalation`), with
    monitor violations kept fatal (``escalate_on=(SimulationError,)``):
    a slow/partitioned network may degrade, a protocol bug may not hide
    behind the ladder.  Returns the :class:`ExecutionResult` (``None``
    only on legacy non-returning paths).
    """
    transport = LossyTransport.from_spec(case.faults)
    round_budget = spec.round_budget(case.n, case.t, case.ell)
    monitors = case_monitors(case, spec)
    guard_limits = (
        WireLimits.from_envelopes(case.n, case.t, case.ell, case.kappa)
        if case.guards
        else None
    )
    # leave headroom above the monitor so RoundBudgetMonitor fires
    # with a record attached before the hard simulator cap.
    max_rounds = 2 * round_budget + 64
    if case.faults.has_partial_sync:
        monitors.append(LivenessMonitor(round_budget, transport))
        result = run_with_escalation(
            spec.build(case.ell),
            inputs,
            n=case.n,
            t=case.t,
            kappa=case.kappa,
            adversary=adversary,
            max_rounds=max_rounds,
            trace=True,
            monitors=monitors,
            transport=transport,
            epsilon=_case_epsilon(case),
            escalate_on=(SimulationError,),
            guards=guard_limits,
        )
        _check_escalated(case, inputs, result)
        return result
    network = SynchronousNetwork(
        spec.build(case.ell),
        inputs,
        n=case.n,
        t=case.t,
        kappa=case.kappa,
        adversary=adversary,
        max_rounds=max_rounds,
        trace=True,
        monitors=monitors,
        # link faults ride below the round abstraction; None on specs
        # without link axes, so non-crash campaigns are untouched.
        transport=transport,
        guards=guard_limits,
    )
    return network.run()


@dataclass
class CaseStats:
    """Deterministic accounting of one completed (non-failing) case."""

    #: transport-level escalated retries the execution performed.
    resyncs: int = 0
    #: logical rounds that needed more than one synchronization attempt.
    escalated_rounds: int = 0
    #: ladder rung that produced the outputs (``None`` = primary).
    rung: str | None = None
    #: honest protocol bits the execution spent (0 on failures).
    bits: int = 0
    #: logical rounds the execution took (0 on failures).
    rounds: int = 0
    #: the case's theory-derived envelopes (filled even on failures, so
    #: the search engine can normalise a violating case's fitness).
    bit_budget: int = 0
    round_budget: int = 0
    #: cache-state-independent deterministic counters of the execution
    #: (the :data:`NETWORK_COUNTERS` subset -- safe to journal).
    counters: dict[str, int] = field(default_factory=dict)

    def margins(self) -> "EnvelopeMargins":
        """Envelope margins of the completed execution."""
        from .invariants import EnvelopeMargins

        return EnvelopeMargins(
            bits_used=self.bits,
            bit_budget=self.bit_budget,
            rounds_used=self.rounds,
            round_budget=self.round_budget,
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (campaign-journal outcome block)."""
        return {
            "resyncs": self.resyncs,
            "escalated_rounds": self.escalated_rounds,
            "rung": self.rung,
            "bits": self.bits,
            "rounds": self.rounds,
            "bit_budget": self.bit_budget,
            "round_budget": self.round_budget,
            "counters": dict(sorted(self.counters.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseStats":
        return cls(
            resyncs=data.get("resyncs", 0),
            escalated_rounds=data.get("escalated_rounds", 0),
            rung=data.get("rung"),
            bits=data.get("bits", 0),
            rounds=data.get("rounds", 0),
            bit_budget=data.get("bit_budget", 0),
            round_budget=data.get("round_budget", 0),
            counters=dict(data.get("counters", {})),
        )


def run_case_ex(
    case: FuzzCase, registry: dict[str, ProtocolSpec] | None = None
) -> tuple["FuzzFailure | None", CaseStats]:
    """Like :func:`run_case`, plus the case's deterministic accounting."""
    registry = registry or standard_registry()
    spec = registry[case.protocol]
    inputs = _build_inputs(case, spec)
    adversary = _build_adversary(case)
    stats = CaseStats(
        bit_budget=spec.bit_budget(case.n, case.t, case.ell, case.kappa),
        round_budget=spec.round_budget(case.n, case.t, case.ell),
    )
    with perf_counters.capture() as captured:
        try:
            result = _execute(case, spec, inputs, adversary)
        except HonestPartyError as error:
            # the no-crash meta-invariant: byzantine input must never
            # crash honest protocol code.  A first-class failure kind,
            # shrinkable like any monitor violation and never budgeted.
            return FuzzFailure(
                case=case,
                kind="HonestPartyError",
                message=str(error),
                inputs=inputs,
                initial_corruptions=set(adversary.initial_corruptions),
                script=dict(adversary.script),
                adapt_schedule=list(adversary.adapt_schedule),
                crash_schedule=list(adversary.crash_schedule),
                original_script_size=len(adversary.script),
            ), stats
        except ProtocolViolation as violation:
            return FuzzFailure(
                case=case,
                kind=violation.monitor or "ProtocolViolation",
                message=str(violation),
                inputs=inputs,
                initial_corruptions=set(adversary.initial_corruptions),
                script=dict(adversary.script),
                adapt_schedule=list(adversary.adapt_schedule),
                crash_schedule=list(adversary.crash_schedule),
                original_script_size=len(adversary.script),
            ), stats
        except SimulationError as error:
            return FuzzFailure(
                case=case,
                kind="SimulationError",
                message=str(error),
                inputs=inputs,
                initial_corruptions=set(adversary.initial_corruptions),
                script=dict(adversary.script),
                adapt_schedule=list(adversary.adapt_schedule),
                crash_schedule=list(adversary.crash_schedule),
                original_script_size=len(adversary.script),
            ), stats
    # only the cache-state-independent subset is recorded: the full
    # block depends on what ran earlier in this process (decode-matrix
    # memo, frame-prefix caches) and would poison journal digests.
    stats.counters = {
        name: captured[name] for name in NETWORK_COUNTERS if name in captured
    }
    if result is not None:
        stats.bits = result.stats.honest_bits
        stats.rounds = result.stats.rounds
        stats.resyncs = result.stats.resync_attempts
        stats.escalated_rounds = result.stats.escalated_rounds
        if result.fallback is not None:
            stats.rung = result.fallback.rung
            # the returned stats belong to the fallback rung; fold the
            # primary's escalation effort back in.
            stats.resyncs += result.fallback.resyncs
    return None, stats


def run_case(
    case: FuzzCase, registry: dict[str, ProtocolSpec] | None = None
) -> "FuzzFailure | None":
    """Run one case under monitors; return a failure or None if clean."""
    failure, _ = run_case_ex(case, registry)
    return failure


# ---------------------------------------------------------------------------
# Shrinking (delta debugging over the recorded byzantine script)
# ---------------------------------------------------------------------------


def _replays_same(
    failure: FuzzFailure,
    spec: ProtocolSpec,
    script_keys: list[tuple[int, int, int]],
    schedule: list[tuple[int, int]],
    crash_schedule: list[tuple[int, int, int]] | None = None,
    case: FuzzCase | None = None,
) -> bool:
    """Does the reduced script still trigger the same violation kind?"""
    adversary = ReplayAdversary(
        {key: failure.script[key] for key in script_keys},
        failure.initial_corruptions,
        schedule,
        crash_schedule=(
            failure.crash_schedule
            if crash_schedule is None
            else crash_schedule
        ),
    )
    try:
        _execute(
            failure.case if case is None else case,
            spec,
            failure.inputs,
            adversary,
        )
    except HonestPartyError:
        return failure.kind == "HonestPartyError"
    except ProtocolViolation as violation:
        return (violation.monitor or "ProtocolViolation") == failure.kind
    except SimulationError:
        return failure.kind == "SimulationError"
    return False


#: window-axis tags for the partition/churn shrink dimension.
_PARTITION_TAG, _CHURN_TAG = "partition", "churn"


def _windows_of(case: FuzzCase) -> list[tuple[str, tuple]]:
    """Flatten a case's partition + churn windows into one shrink list."""
    return [
        (_PARTITION_TAG, window) for window in case.faults.partitions
    ] + [(_CHURN_TAG, window) for window in case.faults.link_churn]


def _case_with_windows(
    case: FuzzCase, windows: list[tuple[str, tuple]]
) -> FuzzCase:
    """Rebuild a case keeping only the given partition/churn windows."""
    partitions = tuple(
        window for tag, window in windows if tag == _PARTITION_TAG
    )
    churn = tuple(window for tag, window in windows if tag == _CHURN_TAG)
    return replace(
        case,
        faults=replace(case.faults, partitions=partitions, link_churn=churn),
    )


def _ddmin(items: list, still_fails: Callable[[list], bool],
           budget: list[int]) -> list:
    """Classic ddmin: minimal sublist (1-minimal up to budget) that fails."""
    granularity = 2
    while len(items) >= 2 and budget[0] > 0:
        chunk = max(1, math.ceil(len(items) / granularity))
        reduced = False
        for start in range(0, len(items), chunk):
            if budget[0] <= 0:
                break
            candidate = items[:start] + items[start + chunk:]
            budget[0] -= 1
            if still_fails(candidate):
                items = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_failure(
    failure: FuzzFailure,
    registry: dict[str, ProtocolSpec] | None = None,
    max_runs: int = 400,
) -> FuzzFailure:
    """Delta-debug the failing script + corruption schedule to a minimum.

    Returns a new :class:`FuzzFailure` whose script/schedule are
    1-minimal (up to the replay budget): removing any single remaining
    entry no longer reproduces the violation.
    """
    registry = registry or standard_registry()
    spec = registry[failure.case.protocol]
    budget = [max_runs]

    schedule = list(failure.adapt_schedule)
    crash_schedule = list(failure.crash_schedule)
    case = failure.case
    keys = sorted(failure.script)
    keys = _ddmin(
        keys,
        lambda candidate: _replays_same(
            failure, spec, candidate, schedule, crash_schedule, case
        ),
        budget,
    )
    schedule = _ddmin(
        schedule,
        lambda candidate: _replays_same(
            failure, spec, keys, candidate, crash_schedule, case
        ),
        budget,
    )
    crash_schedule = _ddmin(
        crash_schedule,
        lambda candidate: _replays_same(
            failure, spec, keys, schedule, candidate, case
        ),
        budget,
    )
    # fourth axis: partition/churn windows of the partial-sync plane --
    # the shrunk case travels inside the artifact, so the minimized
    # schedule replays without the removed windows.
    windows = _windows_of(case)
    if windows:
        windows = _ddmin(
            windows,
            lambda candidate: _replays_same(
                failure, spec, keys, schedule, crash_schedule,
                _case_with_windows(case, candidate),
            ),
            budget,
        )
        case = _case_with_windows(case, windows)
    return FuzzFailure(
        case=case,
        kind=failure.kind,
        message=failure.message,
        inputs=failure.inputs,
        initial_corruptions=failure.initial_corruptions,
        script={key: failure.script[key] for key in keys},
        adapt_schedule=schedule,
        crash_schedule=crash_schedule,
        shrunk=True,
        shrink_runs=max_runs - budget[0],
        original_script_size=failure.original_script_size,
    )


# ---------------------------------------------------------------------------
# Repro artifacts
# ---------------------------------------------------------------------------


def failure_to_artifact(failure: FuzzFailure) -> dict:
    """Serialise a failure into the JSON repro-artifact structure."""
    return {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "case": failure.case.to_dict(),
        "violation": {"kind": failure.kind, "message": failure.message},
        "inputs": [str(v) for v in failure.inputs],
        "initial_corruptions": sorted(failure.initial_corruptions),
        "adapt_schedule": [[r, p] for r, p in failure.adapt_schedule],
        "crash_schedule": [
            [p, d, u] for p, d, u in failure.crash_schedule
        ],
        "script": [
            [r, s, d, encode_payload(failure.script[(r, s, d)])]
            for r, s, d in sorted(failure.script)
        ],
        "shrunk": failure.shrunk,
        "original_script_size": failure.original_script_size,
    }


#: every key failure_to_artifact may write (plus the optional recorded
#: counter block); anything else in a loaded artifact draws a warning.
_ARTIFACT_KEYS = frozenset(
    (
        "format",
        "schema_version",
        "case",
        "violation",
        "inputs",
        "initial_corruptions",
        "adapt_schedule",
        "crash_schedule",
        "script",
        "shrunk",
        "original_script_size",
        "counters",
    )
)


def validate_artifact(artifact: dict) -> list[str]:
    """Check an artifact's format/schema stamps; warn on unknown keys.

    Raises :class:`ValueError` when the artifact's wire ``format`` or
    ``schema_version`` does not match this toolchain -- a pre-versioned
    corpus file (PR 1-7) or one from a newer writer would otherwise
    replay with silently-defaulted ``FaultSpec`` axes.  Unknown keys in
    the top level, the ``case`` section, or the ``faults`` section are
    *warnings* (emitted via :mod:`warnings` and returned), since extra
    keys are how forward-compatible writers annotate artifacts.
    """
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"unsupported artifact format {artifact.get('format')!r}"
        )
    version = artifact.get("schema_version")
    if version is None:
        raise ValueError(
            "artifact has no schema_version stamp (written by a "
            f"pre-versioned toolchain); current schema is "
            f"{ARTIFACT_SCHEMA_VERSION} -- re-generate the artifact"
        )
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema_version {version} does not match this "
            f"toolchain's {ARTIFACT_SCHEMA_VERSION}"
        )
    messages: list[str] = []
    sections = [
        ("artifact", artifact, _ARTIFACT_KEYS),
        (
            "case",
            artifact.get("case", {}),
            frozenset(f.name for f in dataclass_fields(FuzzCase)),
        ),
        (
            "faults",
            artifact.get("case", {}).get("faults", {}),
            frozenset(f.name for f in dataclass_fields(FaultSpec)),
        ),
    ]
    for label, section, known in sections:
        unknown = sorted(set(section) - known)
        if unknown:
            messages.append(
                f"unknown {label} key(s) {unknown}: written by a newer "
                "or patched toolchain; they are ignored on replay"
            )
    for message in messages:
        warnings.warn(message, stacklevel=2)
    return messages


def save_artifact(
    failure: FuzzFailure,
    path: str,
    registry: dict[str, ProtocolSpec] | None = None,
    record_counters: bool = True,
) -> str:
    """Write a failure's repro artifact to ``path``; returns the path.

    When ``record_counters`` is set (the default) the artifact also
    embeds the deterministic counter block of one replay of the failure
    (:func:`replay_counters`), turning the corpus entry into a
    regression fixture for ``repro replay --verify-counters``.
    """
    artifact = failure_to_artifact(failure)
    if record_counters:
        artifact["counters"] = replay_counters(artifact, registry)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    return path


def load_artifact(path: str) -> dict:
    """Load and validate a repro artifact (see :func:`validate_artifact`)."""
    with open(path) as handle:
        artifact = json.load(handle)
    validate_artifact(artifact)
    return artifact


@dataclass
class ReplayOutcome:
    """What happened when an artifact was replayed."""

    kind: str | None  # None when the replay ran clean
    message: str | None

    @property
    def violated(self) -> bool:
        return self.kind is not None

    def matches(self, artifact: dict) -> bool:
        """Did the replay reproduce the artifact's recorded violation?"""
        return self.kind == artifact["violation"]["kind"]


def replay_artifact(
    artifact: dict | str,
    registry: dict[str, ProtocolSpec] | None = None,
) -> ReplayOutcome:
    """Re-execute an artifact's script under the same monitors."""
    if isinstance(artifact, str):
        artifact = load_artifact(artifact)
    registry = registry or standard_registry()
    case = FuzzCase.from_dict(artifact["case"])
    spec = registry[case.protocol]
    inputs = [int(v) for v in artifact["inputs"]]
    adversary = ReplayAdversary(
        {
            (r, s, d): decode_payload(payload)
            for r, s, d, payload in artifact["script"]
        },
        set(artifact["initial_corruptions"]),
        [(r, p) for r, p in artifact["adapt_schedule"]],
        crash_schedule=[
            (p, d, u) for p, d, u in artifact.get("crash_schedule", ())
        ],
    )
    try:
        _execute(case, spec, inputs, adversary)
    except HonestPartyError as error:
        return ReplayOutcome(kind="HonestPartyError", message=str(error))
    except ProtocolViolation as violation:
        return ReplayOutcome(
            kind=violation.monitor or "ProtocolViolation",
            message=str(violation),
        )
    except SimulationError as error:
        return ReplayOutcome(kind="SimulationError", message=str(error))
    return ReplayOutcome(kind=None, message=None)


def replay_counters(
    artifact: dict | str,
    registry: dict[str, ProtocolSpec] | None = None,
) -> dict[str, int]:
    """Replay an artifact and return its full deterministic counter block.

    Process-level caches (decode-matrix memo, hash-prefix LRUs) are
    reset first so the block is a pure function of the artifact -- the
    same dict on every host, backend, and process history.  This is the
    block ``save_artifact`` embeds and ``repro replay --verify-counters``
    diffs.
    """
    if isinstance(artifact, str):
        artifact = load_artifact(artifact)
    reset_process_caches()
    with perf_counters.capture() as captured:
        replay_artifact(artifact, registry)
    return {name: captured[name] for name in sorted(captured)}


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


def _filtered_registry(
    registry: dict[str, ProtocolSpec], protocols: list[str] | None
) -> dict[str, ProtocolSpec]:
    if not protocols:
        return registry
    unknown = set(protocols) - set(registry)
    if unknown:
        raise ValueError(f"unknown protocols: {sorted(unknown)}")
    return {name: registry[name] for name in protocols}


def _run_campaign_case(
    index: int,
    campaign_seed: int,
    registry: dict[str, ProtocolSpec],
    shrink: bool,
    max_shrink_runs: int,
    crash: bool = False,
    partition: bool = False,
    bombs: bool = False,
) -> tuple[FuzzFailure | None, CaseStats]:
    """Sample, execute, and (on failure) shrink one campaign case."""
    case = sample_case_at(
        campaign_seed, index, registry, crash=crash, partition=partition,
        bombs=bombs,
    )
    failure, stats = run_case_ex(case, registry)
    if failure is not None and shrink:
        failure = shrink_failure(failure, registry, max_runs=max_shrink_runs)
    return failure, stats


def _campaign_worker(task: dict) -> tuple[FuzzFailure | None, CaseStats]:
    """Process-pool entry point: one case, registry rebuilt in-worker.

    ``ProtocolSpec`` factories are closures and do not pickle, so each
    worker rebuilds the registry from a module-level ``registry_builder``
    callable (the builder itself pickles by qualified name).
    """
    registry = _filtered_registry(
        task["registry_builder"](), task["protocols"]
    )
    return _run_campaign_case(
        task["index"],
        task["campaign_seed"],
        registry,
        task["shrink"],
        task["max_shrink_runs"],
        crash=task.get("crash", False),
        partition=task.get("partition", False),
        bombs=task.get("bombs", False),
    )


def fuzz(
    runs: int = 50,
    seed: int = 0,
    registry: dict[str, ProtocolSpec] | None = None,
    protocols: list[str] | None = None,
    artifact_dir: str | None = None,
    shrink: bool = True,
    max_shrink_runs: int = 400,
    progress: Callable[[int, FuzzCase], None] | None = None,
    workers: int | str | None = 1,
    registry_builder: Callable[[], dict[str, ProtocolSpec]] | None = None,
    case_timeout_s: float | None = None,
    crash: bool = False,
    partition: bool = False,
    bombs: bool = False,
    multiplex: int = 1,
) -> FuzzReport:
    """Run a chaos campaign of ``runs`` sampled configurations.

    ``crash=True`` widens the sampled fault space with the resilience
    planes: lossy honest links (drop/delay/reorder under the round
    synchronizer) and crash/restart windows for honest parties (WAL
    replay on rejoin), composed with the usual byzantine strategies and
    message faults.

    ``partition=True`` widens it further with the partial-synchrony
    axes (GST, pre-GST loss, healing/never-healing partitions, link
    churn); those cases run through the supervisor's escalation ladder,
    so a slow network shows up as escalation accounting in the report
    while invariant violations stay hard failures.

    ``bombs=True`` appends payload-bomb adversaries (oversize blobs,
    deep nesting, type confusion, near-valid mutants) to every sampled
    composition and arms the honest wire guards; any honest-party crash
    caused by the hostile traffic surfaces as a shrinkable
    ``HonestPartyError`` failure instead of aborting the campaign.

    Every run executes one sampled case under the full monitor stack;
    failures are shrunk (unless ``shrink=False``) and, when
    ``artifact_dir`` is given, archived as replayable JSON artifacts.

    ``workers > 1`` (or ``"auto"``) fans cases out over a process pool
    via :func:`repro.sim.parallel.run_many`; reports and artifacts are
    byte-identical to a serial run because every case is seeded by
    ``derive_seed(seed, index)`` and collected in index order.  A worker
    that crashes or exceeds ``case_timeout_s`` is surfaced as a recorded
    ``ExecutionEngine`` failure instead of killing the campaign.

    A custom registry travels to workers through ``registry_builder``
    (a module-level callable returning the registry -- the specs
    themselves hold closures and do not pickle).  Passing a bare
    ``registry`` object without a builder forces serial execution.

    ``multiplex`` is forwarded to the execution engine.  Fuzz cases
    manage several executions internally (shrinking, replay), so the
    campaign worker declares no opener and the engine keeps the
    sequential per-case path; the parameter exists so campaign
    configurations stay uniform with sweeps and benchmarks, and so the
    determinism suite can pin ``fuzz(..., multiplex=K)`` byte-identical
    to a serial campaign.
    """
    if registry is None:
        builder = registry_builder or standard_registry
        parent_registry = _filtered_registry(builder(), protocols)
    else:
        builder = registry_builder
        parent_registry = _filtered_registry(registry, protocols)
    worker_count = resolve_workers(workers)
    if builder is None:
        # Unpicklable ad-hoc registry: the campaign itself stays
        # deterministic either way, it just cannot leave this process.
        worker_count = 1

    report = FuzzReport(
        runs=runs, seed=seed, workers=worker_count, crash=crash,
        partition=partition, bombs=bombs,
    )
    if worker_count == 1:
        outcomes = [
            _run_campaign_case(
                index, seed, parent_registry, shrink, max_shrink_runs,
                crash=crash, partition=partition, bombs=bombs,
            )
            for index in range(runs)
        ]
        errors: dict[int, str] = {}
    else:
        tasks = [
            {
                "index": index,
                "campaign_seed": seed,
                "protocols": list(protocols) if protocols else None,
                "shrink": shrink,
                "max_shrink_runs": max_shrink_runs,
                "registry_builder": builder,
                "crash": crash,
                "partition": partition,
                "bombs": bombs,
            }
            for index in range(runs)
        ]
        collected = run_many(
            _campaign_worker,
            tasks,
            workers=worker_count,
            timeout_s=case_timeout_s,
            retries=1,
            multiplex=multiplex,
        )
        outcomes = [outcome.value for outcome in collected]
        report.retries = sum(outcome.retries for outcome in collected)
        errors = {
            outcome.index: f"{outcome.error_type}: {outcome.error}"
            for outcome in collected
            if not outcome.ok
        }
        report.worker_crashes = sum(
            1
            for outcome in collected
            if outcome.error_type == "WorkerCrash"
        )
        report.case_timeouts = sum(
            1
            for outcome in collected
            if outcome.error_type == "CaseTimeout"
        )

    for index in range(runs):
        case = sample_case_at(
            seed, index, parent_registry, crash=crash, partition=partition,
            bombs=bombs,
        )
        if progress is not None:
            progress(index, case)
        report.cases.append(case)
        outcome = outcomes[index]
        failure, case_stats = (
            outcome if outcome is not None else (None, CaseStats())
        )
        if case_stats.resyncs:
            report.resyncs += case_stats.resyncs
            report.escalated_cases += 1
        if case_stats.rung is not None:
            report.degradations[case_stats.rung] = (
                report.degradations.get(case_stats.rung, 0) + 1
            )
        if index in errors:
            # Crash/timeout isolation: the engine lost this case -- record
            # it as a campaign failure rather than aborting the sweep.
            spec = parent_registry[case.protocol]
            failure = FuzzFailure(
                case=case,
                kind="ExecutionEngine",
                message=errors[index],
                inputs=_build_inputs(case, spec),
                initial_corruptions=set(),
                script={},
                adapt_schedule=[],
            )
        if failure is None:
            continue
        report.failures.append(failure)
        if artifact_dir is not None:
            path = os.path.join(
                artifact_dir, f"repro-{seed}-{index:04d}.json"
            )
            report.artifacts.append(
                save_artifact(failure, path, registry=parent_registry)
            )
    return report
