"""Online invariant monitors for simulated protocol executions.

The paper's guarantees -- Agreement, Convex Validity, the
``O(l n + kappa n^2 log^2 n)`` bit budget, the ``O(n log n)`` round
budget, and the simulator's own lockstep-channel discipline -- are the
contract any CA implementation must hold under *arbitrary* deviation.
This module turns each of them into a pluggable
:class:`InvariantMonitor` that a :class:`~repro.sim.network.
SynchronousNetwork` evaluates online (per round and at termination)
instead of post-hoc in scattered test assertions.

A monitor that detects a violation raises
:class:`~repro.errors.ProtocolViolation` carrying its own name, the
offending :class:`~repro.sim.trace.RoundRecord`, and the partial trace,
so the chaos driver (:mod:`repro.sim.fuzz`) can shrink and archive the
failing execution.

Usage::

    from repro.sim import SynchronousNetwork
    from repro.sim.invariants import default_monitors

    net = SynchronousNetwork(factory, inputs, n, t,
                             monitors=default_monitors())
    net.run()   # raises ProtocolViolation on any broken invariant

Monitors must never fire under the model's assumptions (``t < n/3``,
adversary within budget); a firing monitor means a protocol bug or an
over-powered configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, NoReturn

from ..errors import ProtocolViolation
from .trace import RoundRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import CommunicationStats
    from .network import ExecutionResult, SynchronousNetwork

__all__ = [
    "InvariantMonitor",
    "AgreementMonitor",
    "ConvexValidityMonitor",
    "CrashBudgetMonitor",
    "EnvelopeMargins",
    "LivenessMonitor",
    "LockstepMonitor",
    "BitBudgetMonitor",
    "RoundBudgetMonitor",
    "default_monitors",
    "paper_bit_budget",
    "paper_round_budget",
]


def paper_bit_budget(
    n: int, t: int, ell: int, kappa: int, constant: int = 96
) -> int:
    """A generous envelope of the paper's ``O(ln + kappa n^2 log^2 n)``.

    ``constant`` absorbs the constants hidden by the O-notation plus the
    instantiated Phase-King ``PI_BA`` term (``O(kappa n^2 t)`` per
    invocation, ``O(log l)`` invocations); it is deliberately loose --
    the monitor exists to catch *asymptotic* blow-ups (forwarded
    byzantine blobs, accidental O(n) extra factors), not to re-measure
    the constants the benchmarks track.
    """
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    log_ell = max(1, math.ceil(math.log2(max(2, ell))))
    core = ell * n + kappa * n * n * log_n * log_n
    ba_term = kappa * n * n * (t + 1) * (log_ell + log_n)
    return constant * (core + ba_term) + (1 << 16)


def paper_round_budget(n: int, t: int, ell: int, constant: int = 24) -> int:
    """A generous envelope of ``O(n) + O(log l) * ROUNDS(PI_BA)``.

    With Phase-King, ``ROUNDS(PI_BA) = 3(t + 1)``; ``FixedLengthCA``
    makes ``O(log l)`` BA-heavy iterations and ``PI_N`` adds ``O(log n)``
    length-estimation BAs, so the true count is
    ``Theta((log l + log n) * t)`` -- ``constant`` gives slack on top.
    """
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    log_ell = max(1, math.ceil(math.log2(max(2, ell))))
    return constant * (3 * (t + 1)) * (log_ell + log_n + 4) + 8 * n + 64


@dataclass(frozen=True)
class EnvelopeMargins:
    """How far one execution stayed inside its theory-derived envelopes.

    The *margin* of an invariant is the distance between what the
    execution actually spent and what the paper's bound allows:
    ``bit_margin = bit_budget - bits_used`` and ``round_margin =
    round_budget - rounds_used``.  A clean execution under the model's
    assumptions always has non-negative margins (the budget monitors
    fire otherwise), and the slack grows with ``ell`` because the
    envelopes grow faster than the protocols' true cost.

    Margins are the fitness signal of the adversary-search engine
    (:mod:`repro.sim.search`): an adversary that *shrinks* a margin is
    pressing the stack toward the paper's envelope, and an adversary
    that drives a margin negative has found a budget-envelope outlier.
    """

    bits_used: int
    bit_budget: int
    rounds_used: int
    round_budget: int

    @property
    def bit_margin(self) -> int:
        """Unspent honest bits under the envelope (negative = outlier)."""
        return self.bit_budget - self.bits_used

    @property
    def round_margin(self) -> int:
        """Unspent rounds under the envelope (negative = outlier)."""
        return self.round_budget - self.rounds_used

    @property
    def bit_fraction(self) -> float:
        """Envelope utilisation ``bits_used / bit_budget`` (>1 = outlier)."""
        return self.bits_used / self.bit_budget if self.bit_budget else 0.0

    @property
    def round_fraction(self) -> float:
        """Envelope utilisation ``rounds_used / round_budget``."""
        return (
            self.rounds_used / self.round_budget if self.round_budget else 0.0
        )

    @property
    def nonnegative(self) -> bool:
        """True when the execution stayed inside both envelopes."""
        return self.bit_margin >= 0 and self.round_margin >= 0

    @classmethod
    def from_stats(
        cls,
        stats: "CommunicationStats",
        bit_budget: int,
        round_budget: int,
    ) -> "EnvelopeMargins":
        """Margins of one completed execution's communication stats."""
        return cls(
            bits_used=stats.honest_bits,
            bit_budget=bit_budget,
            rounds_used=stats.rounds,
            round_budget=round_budget,
        )


class InvariantMonitor:
    """Base class: observes an execution and raises on broken invariants.

    Subclasses override any of the three hooks; ``fail`` raises a
    :class:`ProtocolViolation` tagged with the monitor's name (the
    network attaches the partial trace before propagating).
    """

    def describe(self) -> str:
        return type(self).__name__

    # -- hooks -----------------------------------------------------------
    def on_start(self, network: "SynchronousNetwork") -> None:
        """Called once before the first round."""

    def on_round(
        self, record: RoundRecord, network: "SynchronousNetwork"
    ) -> None:
        """Called after every simulated round with its record."""

    def on_finish(
        self, result: "ExecutionResult", network: "SynchronousNetwork"
    ) -> None:
        """Called once after every honest party terminated."""

    # -- reporting -------------------------------------------------------
    def fail(
        self, message: str, record: RoundRecord | None = None
    ) -> NoReturn:
        """Raise a tagged :class:`ProtocolViolation`."""
        raise ProtocolViolation(
            f"[{self.describe()}] {message}",
            monitor=self.describe(),
            record=record,
        )


class AgreementMonitor(InvariantMonitor):
    """At termination, all honest outputs must be identical."""

    def on_finish(self, result, network) -> None:
        honest = {
            party: result.outputs[party] for party in result.honest_parties
        }
        if not honest:
            self.fail("no honest party produced an output")
        distinct = {repr(v) for v in honest.values()}
        if len(distinct) > 1:
            self.fail(f"honest parties disagree: {honest!r}")


class ConvexValidityMonitor(InvariantMonitor):
    """Honest outputs must lie in the hull of the honest integer inputs.

    The hull is taken over the inputs of the parties that were honest at
    the *start* of the execution: a party corrupted adaptively mid-run
    contributed its input while still honest, so the model only
    guarantees containment in the initially-honest hull (see
    ``tests/test_integration.py::test_late_corruption_of_prior_
    contributor``).  Pass ``honest_inputs`` explicitly to check against
    a tighter (or pre-filtered) set.
    """

    def __init__(self, honest_inputs: Iterable[int] | None = None) -> None:
        self._explicit = (
            None if honest_inputs is None else list(honest_inputs)
        )
        self._captured: list[int] | None = None

    def on_start(self, network) -> None:
        if self._explicit is not None:
            return
        self._captured = [
            value
            for party, value in network.inputs.items()
            if party not in network.corrupted
            and isinstance(value, int)
            and not isinstance(value, bool)
        ]

    def on_finish(self, result, network) -> None:
        honest_inputs = (
            self._explicit if self._explicit is not None else self._captured
        )
        if not honest_inputs:
            return  # nothing to check against (non-integer protocol)
        low, high = min(honest_inputs), max(honest_inputs)
        for party in result.honest_parties:
            value = result.outputs[party]
            if not isinstance(value, int) or isinstance(value, bool):
                self.fail(
                    f"party {party} output non-integer {value!r} for an "
                    "integer CA instance"
                )
            if not low <= value <= high:
                self.fail(
                    f"party {party} output {value} outside the honest "
                    f"hull [{low}, {high}]"
                )


class LockstepMonitor(InvariantMonitor):
    """Running honest parties must share one channel label every round."""

    def on_round(self, record, network) -> None:
        if len(record.honest_channels) > 1:
            self.fail(
                f"honest parties out of lockstep in round "
                f"{record.round_index}: {sorted(record.honest_channels)}",
                record=record,
            )


class CrashBudgetMonitor(InvariantMonitor):
    """Corrupted plus crashed-down parties must never exceed ``t``.

    A down honest party is an omission fault, weaker than a byzantine
    one, so the model's guarantees only hold while the *combined* fault
    count stays within the corruption bound.  The network enforces this
    by clipping; the monitor asserts the enforcement held on every
    recorded round (defense in depth for new fault planes).
    """

    def on_round(self, record, network) -> None:
        combined = len(record.corrupted) + len(record.down_parties)
        if combined > network.t:
            self.fail(
                f"round {record.round_index}: {len(record.corrupted)} "
                f"corrupted + {len(record.down_parties)} down parties "
                f"exceed t={network.t}",
                record=record,
            )


class BitBudgetMonitor(InvariantMonitor):
    """Honest communication must stay inside a bit-budget envelope.

    ``total`` bounds ``stats.honest_bits`` across the execution;
    ``per_channel`` maps channel-label *prefixes* to their own budgets
    (e.g. the vote rounds of ``PI_lBA+`` carry only kappa-bit digests,
    so their budget is ``ell``-independent).
    """

    def __init__(
        self,
        total: int | None = None,
        per_channel: dict[str, int] | None = None,
    ) -> None:
        if total is None and not per_channel:
            raise ValueError("BitBudgetMonitor needs a budget")
        self.total = total
        self.per_channel = dict(per_channel or {})

    def describe(self) -> str:
        return f"BitBudgetMonitor(total={self.total})"

    def on_round(self, record, network) -> None:
        stats = network.stats
        if self.total is not None and stats.honest_bits > self.total:
            self.fail(
                f"honest bits {stats.honest_bits:,} exceeded the budget "
                f"{self.total:,} in round {record.round_index}",
                record=record,
            )
        for prefix, budget in self.per_channel.items():
            spent = stats.bits_for_prefix(prefix)
            if spent > budget:
                self.fail(
                    f"channel prefix {prefix!r} spent {spent:,} bits, "
                    f"budget {budget:,} (round {record.round_index})",
                    record=record,
                )


class LivenessMonitor(InvariantMonitor):
    """Decision within the round envelope, counted from stabilization.

    Under partial synchrony the paper's round bound only holds once the
    network stabilizes (GST passed, partitions healed, churn over): the
    monitor discounts every round completed while the transport's
    global clock was still before its ``stabilization_time`` and
    requires the execution to decide within ``round_envelope`` logical
    rounds after that.  On a transport that never stabilizes (a
    never-healing partition) liveness is not guaranteed -- only the
    supervisor's failover ladder is -- so the monitor stays silent.

    Pass ``transport`` explicitly or let the monitor pick it up from
    the network; with no transport at all (perfect network) the
    envelope counts from round 0, degenerating to a
    :class:`RoundBudgetMonitor`.
    """

    def __init__(self, round_envelope: int, transport=None) -> None:
        if round_envelope <= 0:
            raise ValueError("round envelope must be positive")
        self.limit = round_envelope
        self._transport = transport
        self._pre_stable_rounds = 0

    def describe(self) -> str:
        return f"LivenessMonitor(limit={self.limit})"

    def on_round(self, record, network) -> None:
        transport = self._transport
        if transport is None:
            transport = getattr(network, "transport", None)
        horizon = (
            0 if transport is None else transport.stabilization_time
        )
        if horizon is None:
            return  # network never stabilizes: no liveness guarantee
        if transport is not None and transport.clock < horizon:
            self._pre_stable_rounds = record.round_index + 1
            return
        elapsed = record.round_index + 1 - self._pre_stable_rounds
        if elapsed > self.limit:
            self.fail(
                f"no decision within {self.limit} rounds of "
                f"stabilization (round {record.round_index}, "
                f"{self._pre_stable_rounds} pre-stabilization rounds "
                "discounted)",
                record=record,
            )


class RoundBudgetMonitor(InvariantMonitor):
    """The execution must terminate within a theory-derived round count."""

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("round budget must be positive")
        self.limit = limit

    def describe(self) -> str:
        return f"RoundBudgetMonitor(limit={self.limit})"

    def on_round(self, record, network) -> None:
        if record.round_index + 1 > self.limit:
            self.fail(
                f"round {record.round_index} exceeded the round budget "
                f"{self.limit}",
                record=record,
            )


def default_monitors(
    *,
    bit_budget: int | None = None,
    round_budget: int | None = None,
    per_channel: dict[str, int] | None = None,
) -> list[InvariantMonitor]:
    """The standard monitor stack for integer CA executions.

    The convex-validity hull is captured from the network at start
    (inputs of the initially-honest parties); budgets are optional.
    """
    monitors: list[InvariantMonitor] = [
        LockstepMonitor(),
        AgreementMonitor(),
        ConvexValidityMonitor(),
        CrashBudgetMonitor(),
    ]
    if bit_budget is not None or per_channel:
        monitors.append(BitBudgetMonitor(bit_budget, per_channel))
    if round_budget is not None:
        monitors.append(RoundBudgetMonitor(round_budget))
    return monitors
