"""Composable fault-injection plane for the synchronous simulator.

Hand-writing a full :class:`~repro.sim.adversary.Adversary` subclass is
the wrong granularity for chaos testing: most protocol-breaking
scenarios are a *combination* of an existing strategy (equivocate,
split votes, target the king) with link-level faults (drop, duplicate,
garble, replay).  This module provides:

* :class:`FaultSpec` -- a declarative, JSON-serialisable description of
  link faults on corrupted links, seeded deterministically;
* :class:`FaultInjector` -- the stateful applier of a spec (replay
  buffers, next-round duplicates);
* :class:`ComposedAdversary` -- stacks any number of existing
  strategies and pipes their combined byzantine traffic through a
  fault injector;
* :class:`RecordingAdversary` -- wraps any adversary and records the
  *actually delivered* byzantine messages plus the adaptive-corruption
  schedule, yielding a replayable script;
* :class:`ReplayAdversary` -- a :class:`ScriptedAdversary` built from
  such a script: byte-identical re-execution of a recorded attack,
  independent of the strategies that originally produced it.

Byzantine message faults act only on messages attributed to corrupted
parties: the model's authenticated channels mean the adversary (and
hence the fault plane, which is part of the adversary's power) can never
forge honest traffic.  Two further fault planes ride on the same spec:

* link faults (``link_drop`` / ``link_delay`` / ``link_reorder``) hit
  *honest* links too, but only below the round abstraction -- they are
  realised by a :class:`~repro.sim.lossy.LossyTransport` whose
  synchronizer restores lockstep, so they cost overhead, not safety;
* crash faults (``crashes``) power honest parties off for chosen round
  windows; the parties recover via
  :class:`~repro.sim.recovery.RecoveryManager` WAL replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any

from .adversary import DROP, Adversary, RoundView, ScriptedAdversary

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "ComposedAdversary",
    "RecordingAdversary",
    "ReplayAdversary",
]


def _garble(payload: Any, rng: random.Random, depth: int = 0) -> Any:
    """Structurally mutate a payload (stays within wire-sizable types).

    Recursion is capped: honest-shaped payloads nest a handful of
    levels, so the cap never fires on them (and the RNG stream of every
    pinned-seed campaign is untouched), but a payload-bomb nest fed
    through the garble fault degrades to junk bytes instead of blowing
    the stack.
    """
    if depth >= 8:
        return bytes([rng.getrandbits(8) for _ in range(4)])
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        choice = rng.randrange(3)
        if choice == 0:
            return payload ^ (1 << rng.randrange(max(1, payload.bit_length() + 1)))
        if choice == 1:
            return -payload - 1
        return rng.getrandbits(16)
    if isinstance(payload, bytes):
        if not payload:
            return bytes([rng.getrandbits(8)])
        data = bytearray(payload)
        data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        return bytes(data)
    if isinstance(payload, str):
        return "garbled"
    if isinstance(payload, tuple):
        if not payload:
            return (0,)
        items = list(payload)
        index = rng.randrange(len(items))
        items[index] = _garble(items[index], rng, depth + 1)
        return tuple(items)
    if isinstance(payload, list):
        return [_garble(item, rng, depth + 1) for item in payload]
    if isinstance(payload, dict):
        return {
            key: _garble(value, rng, depth + 1)
            for key, value in payload.items()
        }
    if payload is None:
        return rng.getrandbits(8)
    # unknown structured object (BitString, witnesses, ...): replace with
    # junk bytes of a similar footprint.
    return bytes([rng.getrandbits(8) for _ in range(4)])


@dataclass(frozen=True)
class FaultSpec:
    """Declarative per-link fault probabilities on corrupted links.

    Each field is the per-message probability of the fault firing;
    ``links`` restricts the faulty links (``None`` = every corrupted
    link).  Faults compose in a fixed order -- replay, garble, duplicate,
    drop -- and draw from one deterministic stream seeded by ``seed``,
    so a spec plus a corruption schedule is a reproducible experiment.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    garble: float = 0.0
    replay: float = 0.0
    links: frozenset[tuple[int, int]] | None = None
    seed: int = 0
    #: link-fault plane (honest links, handled by ``LossyTransport``).
    link_drop: float = 0.0
    link_delay: float = 0.0
    link_reorder: float = 0.0
    #: crash plane: ``(party, down_round, up_round)`` windows, realised
    #: through the adversary's ``crash_restarts`` hook (down_round >= 1).
    crashes: tuple[tuple[int, int, int], ...] = ()
    #: partial-synchrony plane (realised by a
    #: :class:`~repro.sim.partial_sync.PartialSyncTransport`).  All
    #: windows are keyed in *global transport slots* -- the monotone
    #: physical clock the synchronizer advances across rounds and
    #: escalation attempts -- never in round indices, because a
    #: partitioned round does not advance its round index while it
    #: waits for the network to heal.
    #:
    #: ``gst``: the Global Stabilization Time; before it the adversary
    #: schedules delays (``pre_gst_drop``), after it only the baseline
    #: ``link_*`` rates apply.  ``None`` disables the GST axis.
    gst: int | None = None
    #: additional drop rate applied to every link before ``gst``.
    pre_gst_drop: float = 0.0
    #: partition windows ``(start_slot, heal_slot, members)``: links
    #: crossing the ``members``-vs-rest boundary are deterministically
    #: severed while ``start_slot <= clock < heal_slot``.  A
    #: ``heal_slot`` of ``-1`` never heals.
    partitions: tuple[tuple[int, int, tuple[int, ...]], ...] = ()
    #: churn windows ``(start_slot, end_slot, extra_drop)``: the link
    #: drop rate is raised to at least ``extra_drop`` inside the window
    #: (link slowdown/flap schedules).
    link_churn: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "drop", "duplicate", "garble", "replay",
            "link_delay", "link_reorder",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        if not 0.0 <= self.link_drop < 1.0:
            raise ValueError(
                f"link_drop rate {self.link_drop} outside [0, 1) -- a "
                "link dropping everything can never be synchronized"
            )
        for event in self.crashes:
            party, down, up = event
            if down < 1:
                raise ValueError(
                    f"crash {event}: down_round must be >= 1 (crashes "
                    "fire at round boundaries via the adaptive hook)"
                )
            if up <= down:
                raise ValueError(
                    f"crash {event}: up_round must exceed down_round"
                )
            if party < 0:
                raise ValueError(f"crash {event}: party must be >= 0")
        if self.gst is not None:
            if isinstance(self.gst, bool) or not isinstance(self.gst, int):
                raise ValueError(
                    f"gst must be an integer slot count, got {self.gst!r}"
                )
            if self.gst < 0:
                raise ValueError(f"gst must be >= 0, got {self.gst}")
        if not 0.0 <= self.pre_gst_drop < 1.0:
            raise ValueError(
                f"pre_gst_drop rate {self.pre_gst_drop} outside [0, 1)"
            )
        if self.pre_gst_drop and self.gst is None:
            raise ValueError(
                "pre_gst_drop needs a gst -- without a stabilization "
                "time the extra loss would never end"
            )
        for window in self.partitions:
            start, heal, members = window
            if start < 0:
                raise ValueError(
                    f"partition {window}: start_slot must be >= 0"
                )
            if heal != -1 and heal <= start:
                raise ValueError(
                    f"partition {window}: heal_slot must exceed "
                    "start_slot (or be -1 for never)"
                )
            if not members:
                raise ValueError(
                    f"partition {window}: members must be non-empty"
                )
            if any(party < 0 for party in members):
                raise ValueError(
                    f"partition {window}: members must be >= 0"
                )
        for window in self.link_churn:
            start, end, extra = window
            if start < 0 or end <= start:
                raise ValueError(
                    f"churn {window}: need 0 <= start_slot < end_slot"
                )
            if not 0.0 <= extra < 1.0:
                raise ValueError(
                    f"churn {window}: extra_drop {extra} outside [0, 1)"
                )

    @property
    def is_noop(self) -> bool:
        """True when no fault (on any plane) can ever fire."""
        return not (
            self.drop or self.duplicate or self.garble or self.replay
            or self.has_link_faults or self.has_crashes
            or self.has_partial_sync
        )

    @property
    def has_message_faults(self) -> bool:
        """True when the byzantine message-fault axes are active."""
        return bool(self.drop or self.duplicate or self.garble or self.replay)

    @property
    def has_link_faults(self) -> bool:
        """True when the spec carries honest-link fault axes."""
        return bool(self.link_drop or self.link_delay or self.link_reorder)

    @property
    def has_crashes(self) -> bool:
        """True when the spec schedules crash/restart windows."""
        return bool(self.crashes)

    @property
    def has_partial_sync(self) -> bool:
        """True when the spec carries partial-synchrony axes."""
        return bool(
            self.gst is not None or self.partitions or self.link_churn
        )

    @property
    def heals(self) -> bool:
        """True when every scheduled partition eventually heals."""
        return all(heal != -1 for _, heal, _ in self.partitions)

    def describe(self) -> str:
        active = [
            f"{name}={getattr(self, name)}"
            for name in (
                "drop", "duplicate", "garble", "replay",
                "link_drop", "link_delay", "link_reorder",
            )
            if getattr(self, name)
        ]
        if self.crashes:
            active.append(f"crashes={len(self.crashes)}")
        if self.gst is not None:
            active.append(f"gst={self.gst}")
            if self.pre_gst_drop:
                active.append(f"pre_gst_drop={self.pre_gst_drop}")
        if self.partitions:
            healing = sum(1 for _, heal, _ in self.partitions if heal != -1)
            active.append(
                f"partitions={len(self.partitions)}"
                f"({healing} healing)"
            )
        if self.link_churn:
            active.append(f"churn={len(self.link_churn)}")
        scope = "all" if self.links is None else f"{len(self.links)} links"
        return f"FaultSpec({', '.join(active) or 'noop'}, links={scope})"

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by repro artifacts)."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "garble": self.garble,
            "replay": self.replay,
            "links": (
                None if self.links is None
                else sorted([s, d] for s, d in self.links)
            ),
            "seed": self.seed,
            "link_drop": self.link_drop,
            "link_delay": self.link_delay,
            "link_reorder": self.link_reorder,
            "crashes": [list(event) for event in self.crashes],
            "gst": self.gst,
            "pre_gst_drop": self.pre_gst_drop,
            "partitions": [
                [start, heal, list(members)]
                for start, heal, members in self.partitions
            ],
            "link_churn": [list(window) for window in self.link_churn],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        links = data.get("links")
        return cls(
            drop=data.get("drop", 0.0),
            duplicate=data.get("duplicate", 0.0),
            garble=data.get("garble", 0.0),
            replay=data.get("replay", 0.0),
            links=(
                None if links is None
                else frozenset((s, d) for s, d in links)
            ),
            seed=data.get("seed", 0),
            link_drop=data.get("link_drop", 0.0),
            link_delay=data.get("link_delay", 0.0),
            link_reorder=data.get("link_reorder", 0.0),
            crashes=tuple(
                tuple(event) for event in data.get("crashes", ())
            ),
            gst=data.get("gst"),
            pre_gst_drop=data.get("pre_gst_drop", 0.0),
            partitions=tuple(
                (start, heal, tuple(members))
                for start, heal, members in data.get("partitions", ())
            ),
            link_churn=tuple(
                (start, end, extra)
                for start, end, extra in data.get("link_churn", ())
            ),
        )

    def reseeded(self, seed: int) -> "FaultSpec":
        """Copy of this spec with a different deterministic seed."""
        return replace(self, seed=seed)


class FaultInjector:
    """Stateful applier of a :class:`FaultSpec` to byzantine traffic."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        #: per-link history of payloads, feeding the replay fault.
        self._history: dict[tuple[int, int], list[Any]] = {}
        #: messages duplicated into the *next* round (an inbox holds one
        #: payload per sender, so a same-round duplicate is a no-op).
        self._carryover: dict[tuple[int, int], Any] = {}

    def _applies(self, link: tuple[int, int]) -> bool:
        return self.spec.links is None or link in self.spec.links

    def apply(
        self, messages: dict[tuple[int, int], Any]
    ) -> dict[tuple[int, int], Any]:
        """Transform one round of byzantine messages in place-order."""
        out: dict[tuple[int, int], Any] = {}
        # deliver last round's duplicates first (a fresh payload on the
        # same link overrides them, mirroring inbox semantics).
        for link, payload in self._carryover.items():
            out[link] = payload
        self._carryover = {}

        spec = self.spec
        rng = self.rng
        for link in sorted(messages):
            payload = messages[link]
            if not self._applies(link):
                out[link] = payload
                continue
            history = self._history.setdefault(link, [])
            if spec.replay and history and rng.random() < spec.replay:
                payload = history[rng.randrange(len(history))]
            if spec.garble and rng.random() < spec.garble:
                payload = _garble(payload, rng)
            if spec.duplicate and rng.random() < spec.duplicate:
                self._carryover[link] = payload
            history.append(payload)
            if len(history) > 16:
                del history[0]
            if spec.drop and rng.random() < spec.drop:
                continue
            out[link] = payload
        return out


class ComposedAdversary(Adversary):
    """Stacks existing strategies and overlays link faults.

    * Corruptions: the union of each part's ``select_corruptions``,
      clipped deterministically (sorted order) to the ``t`` budget, or
      an explicit ``initial`` set.
    * Messages: each part's ``deliver`` runs on the same round view in
      order; later parts override earlier ones per ``(src, dst)`` link.
      The merged traffic then passes through the fault injector.
    * Adaptive corruptions: the union of the parts' ``adapt`` sets
      (the network clips to budget and records any clipping).
    * Crashes: the union of the parts' ``crash_restarts`` requests plus
      the spec's declarative ``crashes`` windows (the network clips to
      the shared ``t`` budget and records any clipping).
    """

    def __init__(
        self,
        parts: list[Adversary],
        faults: FaultSpec | None = None,
        initial: set[int] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if not parts:
            raise ValueError("ComposedAdversary needs at least one part")
        self.parts = list(parts)
        self.faults = faults
        self.initial = None if initial is None else set(initial)
        self._injector = (
            None if faults is None or not faults.has_message_faults
            else FaultInjector(faults)
        )
        self.has_crash_plane = any(
            getattr(part, "has_crash_plane", False) for part in parts
        ) or bool(faults is not None and faults.has_crashes)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        if self.initial is not None:
            return set(self.initial)
        union: set[int] = set()
        for part in self.parts:
            union |= part.select_corruptions(n, t)
        return set(sorted(union)[:t])

    def adapt(self, view: RoundView) -> set[int]:
        requested: set[int] = set()
        for part in self.parts:
            requested |= part.adapt(view)
        return requested

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        merged: dict[tuple[int, int], Any] = {}
        for part in self.parts:
            merged.update(part.deliver(view))
        if self._injector is not None:
            merged = self._injector.apply(merged)
        return merged

    def crash_restarts(self, view: RoundView) -> dict[int, int]:
        due: dict[int, int] = {}
        if self.faults is not None:
            for party, down, up in self.faults.crashes:
                if down == view.round_index + 1:
                    due[party] = up
        for part in self.parts:
            due.update(part.crash_restarts(view))
        return due

    def describe(self) -> str:
        inner = "+".join(part.describe() for part in self.parts)
        if self.faults is not None and not self.faults.is_noop:
            inner += f" % {self.faults.describe()}"
        return f"Composed[{inner}]"


class RecordingAdversary(Adversary):
    """Wraps an adversary and records its observable behaviour.

    After a run, ``script`` holds every delivered byzantine message
    keyed by ``(round, src, dst)``, ``adapt_schedule`` the adaptive
    corruption requests, and ``initial_corruptions`` the starting set --
    together enough to rebuild the execution exactly with
    :class:`ReplayAdversary`, with no reference to the original
    strategies or fault specs.
    """

    def __init__(self, inner: Adversary) -> None:
        super().__init__(getattr(inner, "seed", 0))
        self.inner = inner
        self.script: dict[tuple[int, int, int], Any] = {}
        self.adapt_schedule: list[tuple[int, int]] = []
        self.initial_corruptions: set[int] = set()
        #: ``(party, down_round, up_round)`` crash requests observed.
        self.crash_schedule: list[tuple[int, int, int]] = []
        self.has_crash_plane = getattr(inner, "has_crash_plane", False)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        self.initial_corruptions = set(self.inner.select_corruptions(n, t))
        return set(self.initial_corruptions)

    def adapt(self, view: RoundView) -> set[int]:
        requested = self.inner.adapt(view)
        for party in sorted(requested):
            entry = (view.round_index, party)
            if entry not in self.adapt_schedule:
                self.adapt_schedule.append(entry)
        return requested

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        messages = self.inner.deliver(view)
        for (src, dst), payload in messages.items():
            self.script[(view.round_index, src, dst)] = payload
        return dict(messages)

    def crash_restarts(self, view: RoundView) -> dict[int, int]:
        due = self.inner.crash_restarts(view)
        for party in sorted(due):
            entry = (party, view.round_index + 1, due[party])
            if entry not in self.crash_schedule:
                self.crash_schedule.append(entry)
        return dict(due)

    def describe(self) -> str:
        return f"Recording[{self.inner.describe()}]"


class ReplayAdversary(ScriptedAdversary):
    """Replays a recorded byzantine script byte-for-byte.

    The handler looks up ``(round, src, dst)`` in the script and stays
    silent on misses, so deleting entries from the script (as the
    shrinker does) weakens the adversary monotonically.
    """

    def __init__(
        self,
        script: dict[tuple[int, int, int], Any],
        initial_corruptions: set[int],
        adapt_schedule: list[tuple[int, int]] | None = None,
        seed: int = 0,
        crash_schedule: list[tuple[int, int, int]] | None = None,
    ) -> None:
        self.script = dict(script)
        self.initial_corruptions = set(initial_corruptions)
        self.adapt_schedule = list(adapt_schedule or [])
        self.crash_schedule = list(crash_schedule or [])
        super().__init__(self._lookup, seed=seed)
        self.has_crash_plane = bool(self.crash_schedule)

    def _lookup(self, view: RoundView, src: int, dst: int, spec: Any) -> Any:
        return self.script.get((view.round_index, src, dst), DROP)

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(self.initial_corruptions)

    def adapt(self, view: RoundView) -> set[int]:
        return {
            party
            for round_index, party in self.adapt_schedule
            if round_index == view.round_index
            and party not in view.corrupted
        }

    def crash_restarts(self, view: RoundView) -> dict[int, int]:
        return {
            party: up
            for party, down, up in self.crash_schedule
            if down == view.round_index + 1
        }

    def describe(self) -> str:
        return (
            f"ReplayAdversary({len(self.script)} messages, "
            f"{len(self.adapt_schedule)} adaptive, "
            f"{len(self.crash_schedule)} crashes)"
        )
