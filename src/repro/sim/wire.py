"""Defensive wire codecs and resource guards for hostile payloads.

The paper's adversary "deviates arbitrarily" -- including by sending
payloads that are *not* well-shaped protocol messages: multi-mebibyte
blobs, thousand-deep nested containers, values of types the honest
codec cannot even price.  Communication-optimality claims are only
meaningful if such traffic can neither inflate honest work nor crash
honest code, so honest parties validate every byzantine inbox entry
against size/shape/depth bounds derived from the paper's bit envelopes
and deterministically *discard* (quarantine) anything out of bounds,
attributing it to the sender.

Design constraints, all load-bearing:

* **Bounded work.** :func:`measure_payload` is iterative (explicit
  stack, no recursion) and exits early the moment a bound is crossed.
  A depth-1000 nest costs ``max_depth`` steps; a 64 MiB blob costs
  O(1) (bytes are priced from ``len``); a billion-element list stops
  after ~``max_bits`` visited atoms.  ``sizing.bit_size`` and
  ``repr()`` both recurse and must never be applied to unvalidated
  traffic.
* **Honest-conservative bounds.** :meth:`WireLimits.from_envelopes`
  derives per-message and per-sender/per-round ceilings with a wide
  margin above every honest message shape in the registry, so
  spec-following traffic is never quarantined (the guards-on vs
  guards-off byte-identity suite in ``tests/test_bombs.py`` proves
  this for every registry protocol).
* **Separate accounting.** Quarantined traffic lands on
  ``CommunicationStats.quarantined_messages`` / ``rejected_bits`` and
  the ``guard_*`` perf counters -- never on ``honest_bits``, which
  remains the paper's BITS_l(PI) measure.

The guard is only consulted for byzantine-origin traffic (general-path
delivery in :class:`~repro.sim.network.SynchronousNetwork` and
byzantine injections in :class:`~repro.asynchrony.network.AsyncNetwork`);
the zero-fault fast path never touches it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "QUARANTINE_REASONS",
    "WireGuard",
    "WireLimits",
    "conformance_failures",
    "inbox_digest",
    "measure_payload",
]

# Honest payloads in the registry nest at most ~6 levels (tagged tuples
# holding witness objects holding tuples of hashes); 32 leaves a wide
# margin while still rejecting pathological nesting long before any
# recursive consumer (codec, garbler, repr) could blow the stack.
DEFAULT_MAX_DEPTH = 32

# The closed set of verdicts a guard can return.  "type" = a value the
# wire codec cannot price; "depth" = nesting beyond the cap;
# "oversize" = a single message over the per-message bit bound;
# "ceiling" = a well-formed message that would push its sender over the
# per-round inbound byte ceiling.
QUARANTINE_REASONS = ("type", "depth", "oversize", "ceiling")


@dataclass(frozen=True)
class WireLimits:
    """Size/shape/depth bounds for inbound byzantine traffic.

    Attributes:
        max_message_bits: upper bound on the priced size of a single
            message payload.
        max_depth: upper bound on container nesting depth (top-level
            atoms are depth 0).
        max_round_bits: per-sender, per-round ceiling on total accepted
            inbound bits; ``None`` disables the ceiling.  In the
            lockstep model one sender delivers at most one message per
            destination per round, so the derived default
            (``n * max_message_bits``) is a backstop that binds only in
            models with multiple messages per link (e.g. async
            injections, which share this guard).
    """

    max_message_bits: int
    max_depth: int = DEFAULT_MAX_DEPTH
    max_round_bits: int | None = None

    def __post_init__(self) -> None:
        if self.max_message_bits <= 0:
            raise ValueError("max_message_bits must be positive")
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.max_round_bits is not None and self.max_round_bits <= 0:
            raise ValueError("max_round_bits must be positive when set")

    @classmethod
    def from_envelopes(cls, n: int, t: int, ell: int, kappa: int) -> "WireLimits":
        """Derive bounds from the paper's bit envelopes.

        The largest honest message in the registry is O(ell + kappa *
        log n) bits (a whole value plus a Merkle witness; the
        high-cost baselines send whole ell-bit values); a 64x margin on
        ``ell + kappa * n`` plus a constant floor dominates every
        honest shape at every registry grid point while still sitting
        orders of magnitude below a payload bomb.
        """
        del t  # resilience does not change the per-message envelope
        per_message = 64 * (max(1, ell) + max(1, kappa) * max(2, n)) + 4096
        return cls(
            max_message_bits=per_message,
            max_depth=DEFAULT_MAX_DEPTH,
            max_round_bits=max(2, n) * per_message,
        )


def measure_payload(
    payload: Any, *, max_bits: int, max_depth: int = DEFAULT_MAX_DEPTH
) -> tuple[str | None, int]:
    """Price ``payload`` with bounded work; return ``(verdict, bits)``.

    ``verdict`` is ``None`` when the payload conforms, otherwise one of
    ``QUARANTINE_REASONS[:3]`` (the ceiling verdict is the guard's, not
    the measurer's).  ``bits`` is the priced size at the point the walk
    stopped -- a lower bound when a verdict fired (measurement exits
    early), and compatible with ``sizing.bit_size`` on conforming
    payloads of wire types.

    Unlike ``sizing.bit_size`` this never recurses and never raises on
    unknown types, so it is safe on arbitrary hostile input.
    """
    bits = 0
    stack: list[tuple[Any, int]] = [(payload, 0)]
    while stack:
        value, depth = stack.pop()
        if depth > max_depth:
            return "depth", bits
        if value is None or isinstance(value, bool):
            bits += 1
        elif isinstance(value, int):
            bits += max(1, value.bit_length()) + (1 if value < 0 else 0)
        elif isinstance(value, Fraction):
            stack.append((value.numerator, depth + 1))
            stack.append((value.denominator, depth + 1))
        elif isinstance(value, (bytes, bytearray)):
            bits += 8 * len(value)
        elif isinstance(value, str):
            bits += 8
        elif isinstance(value, (tuple, list, frozenset)):
            next_depth = depth + 1
            for item in value:
                stack.append((item, next_depth))
        elif isinstance(value, dict):
            next_depth = depth + 1
            for key, item in value.items():
                stack.append((key, next_depth))
                stack.append((item, next_depth))
        else:
            wire = getattr(value, "wire_bits", None)
            if wire is None:
                return "type", bits
            try:
                bits += int(wire())
            except Exception:
                # A hostile object whose wire_bits lies or raises is as
                # unpriceable as one without the hook.
                return "type", bits
        if bits > max_bits:
            return "oversize", bits
    return None, bits


class WireGuard:
    """Stateful per-execution guard applying :class:`WireLimits`.

    Tracks accepted inbound bits per sender within the current round so
    the per-round ceiling can be enforced on top of the stateless
    per-message checks.  Rounds are visited in order by both network
    models, so a single "current round" accumulator suffices.
    """

    def __init__(self, limits: WireLimits) -> None:
        self.limits = limits
        self._round: int | None = None
        self._round_bits: dict[int, int] = {}

    def check(self, round_index: int, src: int, payload: Any) -> tuple[str | None, int]:
        """Validate one inbound message from ``src`` in ``round_index``.

        Returns ``(None, bits)`` for conforming traffic (and charges the
        sender's round ceiling), or ``(reason, bits)`` naming the first
        bound violated; ``bits`` is the (possibly truncated) measured
        size either way.
        """
        if round_index != self._round:
            self._round = round_index
            self._round_bits = {}
        reason, bits = measure_payload(
            payload,
            max_bits=self.limits.max_message_bits,
            max_depth=self.limits.max_depth,
        )
        if reason is not None:
            return reason, bits
        ceiling = self.limits.max_round_bits
        if ceiling is not None:
            total = self._round_bits.get(src, 0) + bits
            if total > ceiling:
                return "ceiling", bits
            self._round_bits[src] = total
        return None, bits


def conformance_failures(
    payloads: Iterable[Any], limits: WireLimits
) -> list[tuple[int, str, int]]:
    """Audit helper: non-conforming entries of an honest payload sweep.

    Returns ``(index, reason, bits)`` for every payload a guard with
    ``limits`` would quarantine (ceiling excluded -- this audits shapes,
    not schedules).  Tests use this to prove honest protocol traffic is
    never quarantinable under the derived envelopes.
    """
    failures: list[tuple[int, str, int]] = []
    for index, payload in enumerate(payloads):
        reason, bits = measure_payload(
            payload, max_bits=limits.max_message_bits, max_depth=limits.max_depth
        )
        if reason is not None:
            failures.append((index, reason, bits))
    return failures


def inbox_digest(inbox: Mapping[int, Any]) -> str:
    """Bounded, ``repr``-free digest of an inbox for error attribution.

    Summarises each entry by sender, top-level type name, and a
    work-capped measurement -- never ``repr`` (which recurses and can
    be arbitrarily large on hostile payloads).  Stable across runs for
    identical inboxes, so fuzz reports can be grouped by digest.
    """
    digest = hashlib.sha256()
    for src in sorted(inbox):
        payload = inbox[src]
        reason, bits = measure_payload(payload, max_bits=1 << 24, max_depth=64)
        entry = f"{src}:{type(payload).__name__}:{reason or 'ok'}:{bits};"
        digest.update(entry.encode("utf-8"))
    return digest.hexdigest()[:16]
