"""Crash-recovery for honest parties: write-ahead logs and replay.

The paper's parties never fail-and-return; real processes do.  This
module lets a simulated honest party be powered off at an adversarially
chosen round and later rejoin **with its guarantees intact**:

* every live party appends one :class:`WalEntry` per executed round to
  its :class:`WriteAheadLog` -- the delivered inbox (the only
  nondeterministic input a party ever consumes) plus a digest of the
  outbox it emitted, chained into periodic checkpoints;
* while a party is down, the round synchronizer keeps the messages
  addressed to it parked (senders retransmit until acknowledged), so
  nothing it missed is lost;
* on restart, :meth:`RecoveryManager.recover` rebuilds the party from
  its protocol factory and *replays*: first the WAL (verifying every
  recorded outbox digest and checkpoint -- a divergence means the
  protocol is nondeterministic and recovery would be unsound), then the
  parked inboxes of the rounds it missed.  The party lands exactly at
  the current round boundary, in lockstep, with the state it would have
  had as an omission-faulted-but-listening participant.

A party that is down sends nothing, so to every other party it is
indistinguishable from a fail-stopped one; crashed honest parties
therefore count against the same ``t`` fault budget as byzantine
corruptions for as long as they are down (the network clips over-budget
crash requests exactly like over-budget adaptive corruptions).  The
parked-inbox re-deliveries are accounted as retransmitted bits plus one
ack each on :class:`~repro.sim.metrics.CommunicationStats` -- the
resilience cost of the rejoin, kept out of the paper's ``honest_bits``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ReproError
from .adversary import Adversary, RoundView
from .lossy import ACK_BITS
from .metrics import CommunicationStats
from .party import Context, Outgoing

__all__ = [
    "CrashEvent",
    "CrashRestartAdversary",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryManager",
    "ReplayedParty",
    "WalEntry",
    "WriteAheadLog",
    "outbox_digest",
]


class RecoveryError(ReproError):
    """WAL replay diverged from the recorded execution.

    Recovery is only sound for deterministic parties: the replayed
    generator must emit byte-identical outboxes for every logged round.
    A digest mismatch means the protocol consulted state outside its
    inbox stream (wall clock, global RNG, ...) and cannot be recovered.
    """


def outbox_digest(outgoing: Outgoing | None) -> str:
    """Stable digest of one round's emitted outbox (``None`` = no yield)."""
    hasher = hashlib.sha256()
    if outgoing is not None:
        hasher.update(outgoing.channel.encode())
        for dst in sorted(outgoing.messages):
            hasher.update(f"|{dst}|{outgoing.messages[dst]!r}".encode())
    return hasher.hexdigest()[:32]


@dataclass(frozen=True)
class CrashEvent:
    """One declarative crash: ``party`` is down in rounds [down, up)."""

    party: int
    down: int
    up: int

    def __post_init__(self) -> None:
        if self.down < 0:
            raise ConfigurationError(
                f"crash round {self.down} must be non-negative"
            )
        if self.up <= self.down:
            raise ConfigurationError(
                f"restart round {self.up} must come after crash round "
                f"{self.down}"
            )


@dataclass(frozen=True)
class RecoveryConfig:
    """Durability parameters of the per-party write-ahead logs."""

    #: a chained checkpoint digest is recorded every this many rounds.
    checkpoint_interval: int = 8
    #: verify recorded outbox digests and checkpoints during replay
    #: (cheap; disable only in micro-benchmarks).
    verify_replay: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")


@dataclass(frozen=True)
class WalEntry:
    """One durable round record: the inbox consumed, the outbox emitted."""

    round_index: int
    inbox: dict[int, Any]
    outbox_digest: str


@dataclass
class _Parked:
    """An inbox buffered for a down party, awaiting its restart."""

    round_index: int
    inbox: dict[int, Any]
    #: honest payload bits that will be re-delivered on recovery.
    redelivery_bits: int
    redelivery_messages: int


class WriteAheadLog:
    """Append-only per-party log with chained periodic checkpoints."""

    def __init__(self, checkpoint_interval: int = 8) -> None:
        self.checkpoint_interval = checkpoint_interval
        self.entries: list[WalEntry] = []
        #: ``(round_index, chained_digest)`` snapshots, one per interval.
        self.checkpoints: list[tuple[int, str]] = []
        self._chain = hashlib.sha256(b"repro-wal").hexdigest()[:32]

    def append(
        self, round_index: int, inbox: dict[int, Any], digest: str
    ) -> None:
        """Durably record one executed round (write-ahead: before ack)."""
        self.entries.append(WalEntry(round_index, dict(inbox), digest))
        self._chain = self._extend(self._chain, digest)
        if len(self.entries) % self.checkpoint_interval == 0:
            self.checkpoints.append((round_index, self._chain))

    @staticmethod
    def _extend(chain: str, digest: str) -> str:
        return hashlib.sha256(f"{chain}/{digest}".encode()).hexdigest()[:32]


@dataclass
class ReplayedParty:
    """Outcome of one WAL replay: a party caught up to the present."""

    generator: Any
    started: bool
    finished: bool
    output: Any
    inbox: dict[int, Any]
    rounds_replayed: int


class RecoveryManager:
    """Owns the WALs, the parked inboxes, and the replay machinery."""

    def __init__(
        self,
        protocol_factory: Callable[[Context, Any], Any],
        inputs: dict[int, Any],
        n: int,
        t: int,
        kappa: int,
        config: RecoveryConfig | None = None,
    ) -> None:
        self.protocol_factory = protocol_factory
        self.inputs = dict(inputs)
        self.n = n
        self.t = t
        self.kappa = kappa
        self.config = config or RecoveryConfig()
        self.wals: dict[int, WriteAheadLog] = {
            party: WriteAheadLog(self.config.checkpoint_interval)
            for party in range(n)
        }
        self.parked: dict[int, list[_Parked]] = {}
        self.recoveries = 0

    # -- logging (live parties) ----------------------------------------
    def log_round(
        self,
        party: int,
        round_index: int,
        inbox: dict[int, Any],
        outgoing: Outgoing | None,
    ) -> None:
        """WAL-append one executed round for a live party."""
        self.wals[party].append(round_index, inbox, outbox_digest(outgoing))

    # -- parking (down parties) ----------------------------------------
    def park(
        self,
        party: int,
        round_index: int,
        inbox: dict[int, Any],
        honest_senders: set[int],
    ) -> None:
        """Buffer a down party's round inbox until its restart.

        The senders keep the payloads in their retransmission buffers
        (the party never acked them); ``honest_senders`` determines
        which payloads will be accounted as retransmitted honest bits
        when the party rejoins and the buffered copies finally land.
        """
        from .sizing import bit_size

        bits = sum(
            bit_size(payload)
            for src, payload in inbox.items()
            if src in honest_senders
        )
        messages = sum(1 for src in inbox if src in honest_senders)
        self.parked.setdefault(party, []).append(
            _Parked(round_index, dict(inbox), bits, messages)
        )

    # -- replay ---------------------------------------------------------
    def recover(
        self, party: int, stats: CommunicationStats | None = None
    ) -> ReplayedParty:
        """Rebuild ``party`` from its WAL + parked inboxes; verify it.

        Returns the replayed party positioned exactly at the current
        round boundary: its next resume emits its first live outbox.
        Accounts the parked re-deliveries on ``stats`` as retransmitted
        bits plus one ack frame per buffered message.
        """
        wal = self.wals[party]
        parked = self.parked.pop(party, [])
        if stats is not None:
            for entry in parked:
                for _ in range(entry.redelivery_messages):
                    stats.record_ack(ACK_BITS)
                if entry.redelivery_messages:
                    stats.retrans_bits += entry.redelivery_bits
                    stats.retrans_messages += entry.redelivery_messages
        self.recoveries += 1

        ctx = Context(party_id=party, n=self.n, t=self.t, kappa=self.kappa)
        generator = self.protocol_factory(ctx, self.inputs[party])

        feed: list[tuple[dict[int, Any], str | None]] = [
            (entry.inbox, entry.outbox_digest) for entry in wal.entries
        ]
        feed.extend((entry.inbox, None) for entry in parked)
        if not feed:
            # Nothing was ever executed: the party restarts fresh.
            return ReplayedParty(
                generator=generator,
                started=False,
                finished=False,
                output=None,
                inbox={},
                rounds_replayed=0,
            )

        verify = self.config.verify_replay
        chain = hashlib.sha256(b"repro-wal").hexdigest()[:32]
        checkpoints = dict(wal.checkpoints)
        logged = len(wal.entries)
        finished = False
        output = None
        try:
            for step, (_, expected) in enumerate(feed):
                if step == 0:
                    outgoing = next(generator)
                else:
                    outgoing = generator.send(feed[step - 1][0])
                digest = outbox_digest(outgoing)
                if expected is not None:
                    if verify and digest != expected:
                        raise RecoveryError(
                            f"party {party}: replayed outbox of logged "
                            f"round {step} diverged from the WAL "
                            f"(protocol is nondeterministic?)"
                        )
                    chain = WriteAheadLog._extend(chain, digest)
                    round_index = wal.entries[step].round_index
                    if verify and round_index in checkpoints \
                            and checkpoints[round_index] != chain:
                        raise RecoveryError(
                            f"party {party}: checkpoint at round "
                            f"{round_index} does not match the replayed "
                            "chain"
                        )
                else:
                    # A parked round is durably received the moment it is
                    # replayed: fold it into the WAL so a *second* crash
                    # replays one contiguous history.
                    parked_entry = parked[step - logged]
                    wal.append(
                        parked_entry.round_index, parked_entry.inbox, digest
                    )
        except StopIteration as stop:
            finished = True
            output = stop.value

        return ReplayedParty(
            generator=generator,
            started=True,
            finished=finished,
            output=output,
            inbox=dict(feed[-1][0]),
            rounds_replayed=len(feed),
        )


class CrashRestartAdversary(Adversary):
    """Kills up to ``f`` honest parties at chosen rounds; they recover.

    ``schedule`` entries are ``(party, down_round, up_round)``: the
    party is powered off for rounds ``[down_round, up_round)`` and
    replays its WAL at the start of ``up_round``.  Crash decisions ride
    on the adaptive-adversary hook, so ``down_round >= 1``.  Message
    behaviour (and byzantine corruptions, if any) delegate to ``inner``;
    with no inner strategy the adversary corrupts nobody -- it is a pure
    crash/restart fault plane, composable with any byzantine strategy
    through :class:`~repro.sim.faults.ComposedAdversary`.
    """

    has_crash_plane = True

    def __init__(
        self,
        schedule: Sequence[tuple[int, int, int]] | Sequence[CrashEvent],
        inner: Adversary | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.schedule = [
            event if isinstance(event, CrashEvent) else CrashEvent(*event)
            for event in schedule
        ]
        for event in self.schedule:
            if event.down < 1:
                raise ConfigurationError(
                    "adversarial crashes take effect at the next round "
                    f"boundary: down_round must be >= 1, got {event.down}"
                )
        self.inner = inner

    def select_corruptions(self, n: int, t: int) -> set[int]:
        if self.inner is None:
            return set()
        return self.inner.select_corruptions(n, t)

    def adapt(self, view: RoundView) -> set[int]:
        if self.inner is None:
            return set()
        return self.inner.adapt(view)

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        if self.inner is None:
            return {}
        return self.inner.deliver(view)

    def crash_restarts(self, view: RoundView) -> dict[int, int]:
        due = {
            event.party: event.up
            for event in self.schedule
            if event.down == view.round_index + 1
        }
        if self.inner is not None:
            due.update(self.inner.crash_restarts(view))
        return due

    def describe(self) -> str:
        inner = f", inner={self.inner.describe()}" if self.inner else ""
        return f"CrashRestartAdversary({len(self.schedule)} events{inner})"
