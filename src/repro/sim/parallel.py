"""Process-pool execution engine for sweeps, fuzz campaigns, benchmarks.

Every driver that fans out *independent* protocol executions -- fuzz
cases, benchmark grid points, exhaustive small-n strategy enumerations
-- funnels through :func:`run_many`: a chunked
:class:`~concurrent.futures.ProcessPoolExecutor` dispatcher whose
results are, by construction, **byte-identical to a serial run**:

* **Deterministic seed derivation.**  Case ``i`` of a campaign with
  seed ``s`` is seeded with ``derive_seed(s, i) = H(s, i)`` (SHA-256),
  never with a position in a shared RNG stream.  Any case can therefore
  be recomputed in isolation, on any worker, in any order.
* **Order-independent collection.**  Workers may finish in any order;
  outcomes are reassembled by case index before being returned.
* **Crash + timeout isolation.**  A case that raises is captured as a
  failed :class:`CaseOutcome`; a case that exceeds ``timeout_s`` is
  interrupted (``SIGALRM``) and recorded as a timeout; a worker process
  that dies outright (segfault, ``os._exit``) fails only its chunk --
  the pool is rebuilt and the campaign continues.
* **Worker warm-up.**  Workers pre-build the ``GF(2^8)``/``GF(2^16)``
  exp/log tables on start-up so per-case latencies do not include
  one-off table construction.

The engine deliberately accepts only *module-level* callables and
picklable payloads: that restriction is what makes a case a pure
function of ``(fn, payload)`` and hence reproducible anywhere.

Usage::

    from repro.sim.parallel import run_many

    outcomes = run_many(measure_case, jobs, workers="auto")
    results = [o.value for o in outcomes if o.ok]
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = [
    "CaseOutcome",
    "CaseTimeout",
    "derive_seed",
    "resolve_workers",
    "run_many",
    "warm_worker",
]


def derive_seed(campaign_seed: int, index: int) -> int:
    """Per-case seed ``H(campaign_seed, case_index)`` (63-bit).

    Hash-derived (rather than drawn from a shared RNG stream) so the
    seed of case ``i`` does not depend on how many cases ran before it
    -- the property that makes parallel and serial campaigns sample
    identical cases.
    """
    material = f"repro-case-seed/{campaign_seed}/{index}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_workers(workers: int | str | None) -> int:
    """Normalise a worker-count spec; ``None``/``"auto"``/``0`` -> #cpus."""
    if workers is None or workers == 0 or workers == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return count


def warm_worker(backend: str | None = None) -> None:
    """Pool initializer: pre-build hot tables before the first case.

    Importing :mod:`repro.coding.gf` constructs the ``GF256``/``GF65536``
    exp/log tables at module scope, which is the only expensive one-off
    state the protocol stack needs.  ``backend`` pins the worker's
    kernel backend to the parent's resolved choice, so a campaign run
    under ``repro fuzz --backend ...`` (or a programmatic
    :func:`repro.perf.config.set_backend`) uses the same kernels in
    every process.  Results are byte-identical across backends either
    way -- the pinning keeps *timings* and conformance runs honest.
    """
    import repro.coding.gf  # noqa: F401  (import is the warm-up)

    if backend is not None:
        from repro.perf import config

        config.set_backend(backend)


class CaseTimeout(Exception):
    """Raised inside a worker when a case exceeds its time budget."""


@dataclass(frozen=True)
class CaseOutcome:
    """What happened to one dispatched case."""

    index: int
    value: Any = None
    #: one-line error description; ``None`` on success.
    error: str | None = None
    #: exception class name, ``"CaseTimeout"``, or ``"WorkerCrash"``.
    error_type: str | None = None
    #: wall-clock seconds the case took inside its worker.
    elapsed_s: float = field(default=0.0, compare=False)
    #: in-place retries this case consumed before settling (transient
    #: crash/timeout recovery; excluded from equality because whether a
    #: retry was *needed* is machine-local noise -- the settled value is
    #: deterministic either way).
    retries: int = field(default=0, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def transient(self) -> bool:
        """True when the failure is a candidate for an in-place retry.

        Worker deaths and wall-clock timeouts are environment incidents
        (an OOM kill, a loaded host), not properties of the case: the
        hash-derived per-case seed makes a re-run of the same payload
        deterministic, so retrying is safe and, on success, yields the
        exact outcome an undisturbed run would have produced.
        """
        return self.error_type in ("WorkerCrash", "CaseTimeout")


def _alarm_handler(signum, frame):  # pragma: no cover - signal context
    raise CaseTimeout("case exceeded its time budget")


def _run_one(
    fn: Callable[[Any], Any],
    index: int,
    payload: Any,
    timeout_s: float | None,
) -> CaseOutcome:
    """Execute one case under the timeout guard; never raises."""
    start = time.perf_counter()
    previous = None
    # Signal handlers can only be installed from the main thread;
    # ``run_many(workers=1)`` may legitimately be called from a worker
    # thread (test runners, embedding apps), where the case simply runs
    # without the alarm guard.
    armed = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if armed:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        value = fn(payload)
        return CaseOutcome(
            index=index,
            value=value,
            elapsed_s=time.perf_counter() - start,
        )
    except CaseTimeout:
        return CaseOutcome(
            index=index,
            error=f"case timed out after {timeout_s}s",
            error_type="CaseTimeout",
            elapsed_s=time.perf_counter() - start,
        )
    except Exception as exc:
        tail = traceback.format_exc(limit=4)
        return CaseOutcome(
            index=index,
            error=f"{type(exc).__name__}: {exc}\n{tail}",
            error_type=type(exc).__name__,
            elapsed_s=time.perf_counter() - start,
        )
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: list[tuple[int, Any]],
    timeout_s: float | None,
    multiplex: int = 1,
) -> list[CaseOutcome]:
    """Worker entry point: run one chunk of ``(index, payload)`` cases.

    ``multiplex > 1`` steps the chunk in cooperative batches of that
    size through :mod:`repro.sim.multiplex` -- but only when ``fn``
    declared an opener via ``@multiplexable``; any other case function
    silently keeps the sequential path (which is what a batch of one
    degenerates to anyway).
    """
    if multiplex > 1:
        from .multiplex import opener_of, run_multiplexed

        if opener_of(fn) is not None:
            outcomes: list[CaseOutcome] = []
            for at in range(0, len(chunk), multiplex):
                outcomes.extend(
                    run_multiplexed(
                        fn, chunk[at:at + multiplex], timeout_s
                    )
                )
            return outcomes
    return [_run_one(fn, index, payload, timeout_s) for index, payload in chunk]


def _default_chunksize(cases: int, workers: int) -> int:
    """Chunks small enough to load-balance, large enough to amortise IPC.

    Four chunks per worker keeps the pool busy when case costs are
    skewed (the usual shape: one big grid point dominates) without
    paying per-case pickling overhead on thousands of tiny cases.
    """
    return max(1, -(-cases // (workers * 4)))


def run_many(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int | str | None = 1,
    timeout_s: float | None = None,
    chunksize: int | None = None,
    progress: Callable[[CaseOutcome], None] | None = None,
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    multiplex: int = 1,
) -> list[CaseOutcome]:
    """Run ``fn(payload)`` for every payload; outcomes in payload order.

    Args:
        fn: a **module-level** callable (workers import it by qualified
            name); must be a pure function of its payload for the
            serial/parallel determinism guarantee to hold.
        payloads: picklable case inputs.
        workers: process count; ``1`` (default) runs inline with
            identical semantics, ``"auto"``/``None``/``0`` uses all
            cpus.
        timeout_s: per-case wall-clock budget; an over-budget case is
            recorded as a failed outcome (``error_type="CaseTimeout"``).
        chunksize: cases dispatched per worker task; defaults to
            ``ceil(len(payloads) / (4 * workers))``.
        progress: called with each :class:`CaseOutcome` as it is
            *collected* (always in index order).
        retries: in-place retry passes for *transient* failures
            (``WorkerCrash`` / ``CaseTimeout``).  Each pass re-runs the
            surviving transient cases in a fresh pool with the exact
            same payload (hence the same derived seed), with
            exponential backoff between passes, so a one-off OOM kill
            or a loaded host does not poison a long soak.  A case that
            still fails after every pass keeps its failure, with
            :attr:`CaseOutcome.retries` recording the attempts spent.
        retry_backoff_s: base sleep before the first retry pass; pass
            ``k`` sleeps ``retry_backoff_s * 2**(k-1)``, capped at 30s.
        multiplex: cooperative instances stepped round-by-round in one
            interpreter loop (:mod:`repro.sim.multiplex`).  Only takes
            effect for case functions that declared an opener via
            ``@multiplexable`` (e.g. ``measure_case``); everything else
            keeps the sequential path.  Composes with ``workers``: each
            worker multiplexes its own chunk.  Results are
            byte-identical to ``multiplex=1``.  Retry passes always run
            single-instance, so a cooperative-timeout casualty gets an
            undisturbed per-case alarm budget on retry.

    Returns:
        One :class:`CaseOutcome` per payload, index-aligned.  A case
        that raised, timed out, or lost its worker process is a failed
        outcome -- :func:`run_many` itself only raises on unpicklable
        inputs or misconfiguration.
    """
    worker_count = resolve_workers(workers)
    if multiplex < 1:
        raise ValueError(f"multiplex must be >= 1, got {multiplex!r}")
    cases = list(enumerate(payloads))
    if not cases:
        return []

    if worker_count == 1 or len(cases) == 1:
        outcomes = _run_chunk(fn, cases, timeout_s, multiplex)
    else:
        size = chunksize or _default_chunksize(len(cases), worker_count)
        if multiplex > 1:
            # Round chunks up to whole batches so no worker is handed a
            # fragment that multiplexes below the requested width.
            size = -(-size // multiplex) * multiplex
        chunks = [cases[i:i + size] for i in range(0, len(cases), size)]
        outcomes = _dispatch(fn, chunks, worker_count, timeout_s, multiplex)
    outcomes.sort(key=lambda outcome: outcome.index)
    if retries > 0:
        outcomes = _retry_transients(
            fn, dict(cases), outcomes, worker_count, timeout_s,
            retries, retry_backoff_s,
        )
    if progress is not None:
        for outcome in outcomes:
            progress(outcome)
    return outcomes


def _retry_transients(
    fn: Callable[[Any], Any],
    payloads: dict[int, Any],
    outcomes: list[CaseOutcome],
    workers: int,
    timeout_s: float | None,
    retries: int,
    retry_backoff_s: float,
) -> list[CaseOutcome]:
    """Re-run transient failures in place; outcomes stay index-aligned.

    Only ``WorkerCrash`` / ``CaseTimeout`` outcomes are retried --
    ordinary exceptions are deterministic properties of the case and
    would fail identically.  Each pass dispatches the survivors as
    single-case chunks in a fresh pool (serial when ``workers == 1``),
    so one poisonous case cannot take healthy retries down with it.
    """
    from dataclasses import replace

    by_index = {outcome.index: outcome for outcome in outcomes}
    for attempt in range(1, retries + 1):
        pending = sorted(
            index for index, outcome in by_index.items()
            if outcome.transient
        )
        if not pending:
            break
        if retry_backoff_s > 0:
            time.sleep(min(retry_backoff_s * 2 ** (attempt - 1), 30.0))
        if workers == 1:
            fresh = [
                _run_one(fn, index, payloads[index], timeout_s)
                for index in pending
            ]
        else:
            chunks = [[(index, payloads[index])] for index in pending]
            fresh = _dispatch(fn, chunks, workers, timeout_s)
        for outcome in fresh:
            previous = by_index[outcome.index]
            by_index[outcome.index] = replace(
                outcome, retries=previous.retries + 1
            )
    return [by_index[index] for index in sorted(by_index)]


def _pool_pass(
    fn: Callable[[Any], Any],
    chunks: list[list[tuple[int, Any]]],
    workers: int,
    timeout_s: float | None,
    outcomes: list[CaseOutcome],
    multiplex: int = 1,
) -> list[list[tuple[int, Any]]]:
    """One executor pass; returns the chunks lost to a pool breakage."""
    from ..perf import config

    failed: list[list[tuple[int, Any]]] = []
    executor = ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=warm_worker,
        initargs=(config.backend(),),
    )
    try:
        futures = [
            (
                executor.submit(
                    _run_chunk, fn, chunk, timeout_s, multiplex
                ),
                chunk,
            )
            for chunk in chunks
        ]
        for future, chunk in futures:
            try:
                outcomes.extend(future.result())
            except BrokenProcessPool:
                failed.append(chunk)
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return failed


def _dispatch(
    fn: Callable[[Any], Any],
    chunks: list[list[tuple[int, Any]]],
    workers: int,
    timeout_s: float | None,
    multiplex: int = 1,
) -> list[CaseOutcome]:
    """Fan chunks out over a pool, surviving broken worker processes.

    A hard worker death (segfault, ``os._exit``) breaks the whole pool,
    taking every in-flight chunk with it.  Lost chunks are split into
    single-case chunks and retried in fresh pools until the survivors
    drain; a case that keeps killing its worker is recorded as a
    ``WorkerCrash`` outcome instead of aborting the campaign.  The
    single-case salvage passes drop back to ``multiplex=1`` -- a batch
    of one has no one to share its loop with anyway.
    """
    outcomes: list[CaseOutcome] = []
    lost = _pool_pass(fn, chunks, workers, timeout_s, outcomes, multiplex)
    pending = [[case] for chunk in lost for case in chunk]
    while pending:
        failed = _pool_pass(fn, pending, workers, timeout_s, outcomes)
        if len(failed) == len(pending):
            # No progress: every remaining case reliably kills its worker.
            outcomes.extend(
                CaseOutcome(
                    index=index,
                    error="worker process died while running this case",
                    error_type="WorkerCrash",
                )
                for chunk in failed
                for index, _ in chunk
            )
            break
        pending = failed
    return outcomes
