"""The synchronous network simulator.

Implements the paper's model (Section 2): ``n`` parties in a fully
connected network of authenticated channels, synchronized clocks, and
guaranteed delivery within one round.  Protocol executions proceed in
lockstep rounds:

1. every running party's generator is resumed with last round's inbox and
   yields its outgoing messages,
2. the (rushing) adversary observes all honest traffic and chooses the
   corrupted parties' messages,
3. messages are delivered; honest-sent bits are accounted,
4. online :class:`~repro.sim.invariants.InvariantMonitor`s (if attached)
   observe the round record and may raise
   :class:`~repro.errors.ProtocolViolation`.

Authenticated channels mean the receiver always learns the true sender
identity -- the simulator enforces this by construction (the adversary can
only emit messages attributed to corrupted parties).

Round budgets: when ``max_rounds`` is not given the simulator derives a
budget from the paper's round complexity (``O(n log n)`` with a
``3(t+1)``-round Phase-King ``PI_BA``) via :func:`default_round_budget`
instead of a flat constant, so non-terminating executions are diagnosed
in seconds; the resulting :class:`~repro.errors.SimulationError` carries
the partial trace, stats, and any outputs produced so far.

Resilience planes (both optional, zero-cost when absent):

* ``transport`` -- a :class:`~repro.sim.lossy.LossyTransport` simulates
  drop/delay/reorder on honest links plus the ack/retransmit round
  synchronizer that restores lockstep; its overhead lands in the
  ``retrans_*``/``ack_*`` stats fields, never in ``honest_bits``.
* crash/recovery -- a declarative ``crashes`` schedule and/or an
  adversary with a crash plane powers honest parties off for chosen
  round windows; a :class:`~repro.sim.recovery.RecoveryManager` logs
  every delivered inbox to per-party write-ahead logs, parks traffic
  addressed to down parties, and deterministically replays a restarting
  party back to the current round.  Down parties count against the same
  ``t`` budget as byzantine corruptions while down.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import (
    ConfigurationError,
    HonestPartyError,
    ProtocolViolation,
    ReproError,
    SimulationError,
)
from ..perf import counters
from .adversary import Adversary, PassiveAdversary, RoundView
from .invariants import InvariantMonitor
from .lossy import LossyTransport, TransportTimeout
from .metrics import CommunicationStats
from .party import Context, Outgoing, Proto
from .recovery import CrashEvent, RecoveryConfig, RecoveryManager
from .sizing import bit_size
from .trace import RoundRecord
from .wire import WireGuard, WireLimits, inbox_digest

__all__ = [
    "ExecutionResult",
    "SynchronousNetwork",
    "ProtocolFactory",
    "default_round_budget",
]

#: Builds one party's protocol generator from its context and input.
ProtocolFactory = Callable[[Context, Any], Proto[Any]]

#: Quarantine ledger entries kept per execution; the stats fields keep
#: exact totals, the ledger keeps the first offenders for attribution.
_QUARANTINE_LOG_CAP = 256

#: Sentinel for the fast path's payload-sizing memo: distinct from every
#: real payload (including ``None``, the protocols' bottom symbol).
_NO_PAYLOAD = object()


def default_round_budget(n: int, t: int) -> int:
    """Round budget derived from the theoretical round complexities.

    The CA stack terminates in ``O(n log n)`` rounds (Corollary 2) and
    every other protocol in this repository (Phase-King: ``3(t+1)``,
    ``HighCostCA``: ``2 + 4(t+1)``, Dolev-Strong: ``t+1``, synchronous
    AA: ``O(log(range/eps))``) is far below the envelope used here --
    a generous multiple of ``(t + 1) * log^2 n`` with a flat floor that
    also covers range-dependent loops such as Approximate Agreement.
    """
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    return max(10_000, 512 * (t + 1) * (log_n * log_n + 8))


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution."""

    n: int
    t: int
    outputs: dict[int, Any]
    corrupted: frozenset[int]
    stats: CommunicationStats
    channel_trace: list[str] = field(default_factory=list)
    trace: list[RoundRecord] | None = None
    #: ``(round_index, party)`` adaptive corruptions requested by the
    #: adversary but clipped by the ``t`` budget (over-powered config).
    clipped_corruptions: list[tuple[int, int]] = field(default_factory=list)
    #: crash-plane event log: ``("down" | "up", round_index, party)`` in
    #: the order the events took effect.
    crash_log: list[tuple[str, int, int]] = field(default_factory=list)
    #: ``(round_index, party)`` crash requests clipped by the shared
    #: ``t`` budget (corrupted + down parties never exceed ``t``).
    clipped_crashes: list[tuple[int, int]] = field(default_factory=list)
    #: number of WAL replays performed by the recovery manager.
    recoveries: int = 0
    #: set by the degradation supervisor when this result was produced
    #: by the HighCostCA fallback path (a
    #: :class:`~repro.sim.supervisor.FallbackRecord`); ``None`` on the
    #: primary path.
    fallback: Any = None
    #: quarantine ledger (wire guards): ``(round_index, src, dst,
    #: reason)`` for byzantine messages discarded by the inbound guard,
    #: capped at the first 256 entries (totals live on
    #: ``stats.quarantined_messages`` / ``stats.rejected_bits``).
    quarantine_log: list[tuple[int, int, int, str]] = field(
        default_factory=list
    )

    @property
    def honest_parties(self) -> list[int]:
        """Ids of the parties that stayed honest."""
        return [p for p in range(self.n) if p not in self.corrupted]

    def common_output(self) -> Any:
        """Return the agreed output, asserting the Agreement property."""
        values = {party: self.outputs[party] for party in self.honest_parties}
        if not values:
            raise SimulationError("no honest parties produced an output")
        iterator = iter(values.values())
        first = next(iterator)
        if any(value != first for value in iterator):
            raise SimulationError(f"honest parties disagree: {values!r}")
        return first

    def assert_convex_valid(
        self, honest_inputs: dict[int, Any] | Sequence[Any]
    ) -> Any:
        """Assert Agreement + Convex Validity; return the common output.

        ``honest_inputs`` may be the full per-party input assignment
        (list indexed by party id, or dict) -- corrupted parties'
        entries are ignored -- or an already-filtered collection of
        honest values (when no index matches a party id in
        ``corrupted``, all values count).
        """
        value = self.common_output()
        if isinstance(honest_inputs, dict):
            items = honest_inputs.items()
        else:
            items = enumerate(honest_inputs)
        honest = [v for p, v in items if p not in self.corrupted]
        if not honest:
            raise SimulationError("no honest inputs to validate against")
        low, high = min(honest), max(honest)
        if not low <= value <= high:
            raise ProtocolViolation(
                f"output {value} outside honest hull [{low}, {high}]",
                monitor="assert_convex_valid",
            )
        return value


@dataclass(slots=True)
class _PartyState:
    generator: Proto[Any]
    finished: bool = False
    output: Any = None
    inbox: dict[int, Any] = field(default_factory=dict)
    started: bool = False


class SynchronousNetwork:
    """Drives one protocol execution under a byzantine adversary."""

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        inputs: dict[int, Any] | list[Any],
        n: int,
        t: int,
        kappa: int = 128,
        adversary: Adversary | None = None,
        max_rounds: int | None = None,
        trace: bool = False,
        monitors: Sequence[InvariantMonitor] = (),
        transport: LossyTransport | None = None,
        crashes: Sequence[CrashEvent | tuple[int, int, int]] | None = None,
        recovery: RecoveryConfig | bool | None = None,
        guards: WireLimits | bool | None = None,
    ) -> None:
        if isinstance(inputs, list):
            inputs = dict(enumerate(inputs))
        if set(inputs) != set(range(n)):
            raise ConfigurationError(
                f"inputs must cover parties 0..{n - 1}, got {sorted(inputs)}"
            )
        self.n = n
        self.t = t
        self.kappa = kappa
        self.inputs = dict(inputs)
        self.adversary = adversary or PassiveAdversary()
        self.protocol_factory = protocol_factory
        self.max_rounds = (
            default_round_budget(n, t) if max_rounds is None else max_rounds
        )
        self.monitors = list(monitors)

        self.corrupted: set[int] = set(
            self.adversary.select_corruptions(n, t)
        )
        if len(self.corrupted) > t:
            raise ConfigurationError(
                f"adversary selected {len(self.corrupted)} > t={t} corruptions"
            )
        if any(not 0 <= p < n for p in self.corrupted):
            raise ConfigurationError("corruption set out of range")

        self.transport = transport
        declared = [
            event if isinstance(event, CrashEvent) else CrashEvent(*event)
            for event in (crashes or ())
        ]
        for event in declared:
            if not 0 <= event.party < n:
                raise ConfigurationError(
                    f"crash schedule names party {event.party}, "
                    f"outside 0..{n - 1}"
                )
        #: declarative crash windows keyed by their down round.
        self._declared_crashes: dict[int, dict[int, int]] = {}
        for event in declared:
            self._declared_crashes.setdefault(event.down, {})[
                event.party
            ] = event.up
        wants_recovery = bool(
            recovery
            or declared
            or getattr(self.adversary, "has_crash_plane", False)
        )
        self._recovery = (
            RecoveryManager(
                protocol_factory,
                self.inputs,
                n,
                t,
                kappa,
                recovery if isinstance(recovery, RecoveryConfig) else None,
            )
            if wants_recovery
            else None
        )
        #: Fast-path eligibility: with no lossy transport, no crash or
        #: recovery plane, and the exact PassiveAdversary (which relays
        #: corrupted parties' spec messages verbatim, never adapts, and
        #: never crashes anyone), round delivery is a pure function of
        #: the yielded Outgoing bundles and can skip the per-link dict
        #: churn and the RoundView.  Byte-identical by construction; see
        #: :meth:`_finish_round_fast`.
        self._fast_path = (
            transport is None
            and self._recovery is None
            and type(self.adversary) is PassiveAdversary
        )
        #: Inbound wire guard (hostile-payload plane).  ``True`` derives
        #: limits from the bit envelopes at a default payload length;
        #: pass an explicit :class:`WireLimits` (e.g. from
        #: ``WireLimits.from_envelopes(n, t, ell, kappa)``) for
        #: protocol-accurate bounds.  Only byzantine-origin traffic on
        #: the general delivery path is ever checked -- honest sends and
        #: the zero-fault fast path are untouched, so arming guards
        #: cannot perturb honest accounting.
        if guards is True:
            guards = WireLimits.from_envelopes(n, t, ell=4096, kappa=kappa)
        elif guards is False:
            guards = None
        self._guard = WireGuard(guards) if guards is not None else None
        self.quarantine_log: list[tuple[int, int, int, str]] = []
        #: honest parties currently powered off (crash plane).
        self.down: set[int] = set()
        #: restart round -> parties whose WAL replays at its start.
        self._restart_at: dict[int, set[int]] = {}
        self.crash_log: list[tuple[str, int, int]] = []
        self.clipped_crashes: list[tuple[int, int]] = []

        self.stats = CommunicationStats()
        self.channel_trace: list[str] = []
        self.trace: list[RoundRecord] | None = [] if trace else None
        self.clipped_corruptions: list[tuple[int, int]] = []
        self._states: dict[int, _PartyState] = {}
        for party in range(n):
            ctx = Context(party_id=party, n=n, t=t, kappa=kappa)
            gen = protocol_factory(ctx, self.inputs[party])
            self._states[party] = _PartyState(generator=gen)
        #: next round the scheduler will attempt (stepping API state).
        self._next_round = 0
        #: "plain run": fast path with no trace and no monitors armed --
        #: the per-round hook dispatch and RoundRecord assembly are
        #: skipped entirely and inbox dicts come from the arena.
        self._plain = False
        #: two alternating banks of per-party inbox dicts (plain runs
        #: only).  The dicts delivered in round ``r`` are reused in
        #: round ``r + 2``: every protocol consumes its inbox between
        #: consecutive yields, so the bank being refilled is always two
        #: rounds stale and never aliased by a live generator.
        self._arena: tuple[dict[int, dict[int, Any]], ...] | None = None

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute until every honest party has terminated."""
        started = time.perf_counter()
        try:
            self.begin()
            while self.step():
                pass
            return self.finish()
        finally:
            # Wall time rides on the stats object so every exit path --
            # normal completion, SimulationError with partial state,
            # monitor violations -- carries its timing.
            self.stats.wall_s = time.perf_counter() - started

    # -- stepping API ---------------------------------------------------
    # ``run()`` is ``begin(); while step(): pass; finish()``.  The
    # decomposition exists so :class:`repro.sim.multiplex
    # .MultiplexScheduler` can interleave many executions round-by-round
    # in one interpreter loop; both drivers produce byte-identical
    # executions because each network's evolution is a pure function of
    # its own state.

    def begin(self) -> None:
        """Arm one execution: monitors, plain-run flag, inbox arena."""
        self._next_round = 0
        self._plain = (
            self._fast_path and self.trace is None and not self.monitors
        )
        if self._plain:
            states = self._states
            self._arena = (
                {party: {} for party in states},
                {party: {} for party in states},
            )
        counters.bump("sched_instances")
        for monitor in self.monitors:
            monitor.on_start(self)

    def step(self) -> bool:
        """Run one scheduler iteration; ``False`` once execution is done.

        Replicates the classic ``for round_index in range(max_rounds)``
        loop exactly: the round budget is checked before the
        finished-check, so an execution that exhausts its budget raises
        the same :class:`SimulationError` the serial loop raised.
        """
        round_index = self._next_round
        if round_index >= self.max_rounds:
            raise SimulationError(
                f"protocol did not terminate within {self.max_rounds} "
                "rounds",
                trace=self.trace,
                stats=self.stats,
                outputs=self._partial_outputs(),
            )
        if self._all_honest_finished():
            return False
        self._run_round(round_index)
        self._next_round = round_index + 1
        counters.bump("sched_rounds")
        return True

    def finish(self) -> ExecutionResult:
        """Assemble the result once :meth:`step` has returned ``False``."""
        outputs = {
            party: state.output
            for party, state in self._states.items()
            if state.finished and party not in self.corrupted
        }
        result = ExecutionResult(
            n=self.n,
            t=self.t,
            outputs=outputs,
            corrupted=frozenset(self.corrupted),
            stats=self.stats,
            channel_trace=self.channel_trace,
            trace=self.trace,
            clipped_corruptions=list(self.clipped_corruptions),
            crash_log=list(self.crash_log),
            clipped_crashes=list(self.clipped_crashes),
            recoveries=self._recovery.recoveries if self._recovery else 0,
            quarantine_log=list(self.quarantine_log),
        )
        for monitor in self.monitors:
            self._monitored(monitor.on_finish, result, self)
        return result

    # ------------------------------------------------------------------
    def _partial_outputs(self) -> dict[int, Any]:
        return {
            party: state.output
            for party, state in self._states.items()
            if state.finished and party not in self.corrupted
        }

    def _monitored(self, hook, *args) -> None:
        """Run a monitor hook, attaching the partial trace on violation."""
        try:
            hook(*args)
        except ProtocolViolation as violation:
            if violation.trace is None:
                violation.trace = self.trace
            raise

    def _all_honest_finished(self) -> bool:
        return all(
            state.finished
            for party, state in self._states.items()
            if party not in self.corrupted
        )

    def _resume(
        self, party: int, state: _PartyState, round_index: int
    ) -> Outgoing | None:
        """Advance one party's generator by one round; None if finished."""
        if state.finished:
            return None
        try:
            if not state.started:
                state.started = True
                outgoing = next(state.generator)
            else:
                outgoing = state.generator.send(state.inbox)
        except StopIteration as stop:
            state.finished = True
            state.output = stop.value
            return None
        except ReproError:
            # The repo's own taxonomy (ConfigurationError, monitor
            # violations, ...) is deliberate signalling, not a party
            # crashed by hostile input -- let it propagate untouched.
            raise
        except Exception as error:
            if party in self.corrupted:
                # A corrupted party's spec code may crash on adversarial
                # inboxes; the adversary simply loses its spec hint.
                state.finished = True
                return None
            # The model forbids byzantine input from crashing honest
            # code: attribute the exception to the party, the round,
            # and a bounded digest of the inbox it was consuming, so
            # fuzz reports separate input-validation bugs from harness
            # bugs and budget errors.  repr()-free on purpose -- the
            # offending payload may be arbitrarily hostile.
            digest = inbox_digest(state.inbox)
            summary = str(error)
            if len(summary) > 200:
                summary = summary[:200] + "..."
            raise HonestPartyError(
                f"honest party {party} raised "
                f"{type(error).__name__} in round {round_index}: "
                f"{summary} (inbox digest {digest})",
                party=party,
                round_index=round_index,
                inbox_digest=digest,
            ) from error
        if not isinstance(outgoing, Outgoing):
            raise SimulationError(
                f"party {party} yielded {type(outgoing).__name__}, "
                "expected Outgoing",
                trace=self.trace,
                stats=self.stats,
                outputs=self._partial_outputs(),
            )
        return outgoing

    # -- crash plane ---------------------------------------------------
    def _process_restarts(self, round_index: int) -> frozenset[int]:
        """Replay the WAL of every party whose restart round arrived."""
        due = sorted(self._restart_at.pop(round_index, ()))
        for party in due:
            replayed = self._recovery.recover(party, self.stats)
            state = self._states[party]
            state.generator = replayed.generator
            state.started = replayed.started
            state.finished = replayed.finished
            state.output = replayed.output
            state.inbox = replayed.inbox
            self.down.discard(party)
            self.crash_log.append(("up", round_index, party))
        return frozenset(due)

    def _accept_crashes(
        self,
        requests: dict[int, int],
        down_round: int,
        pending_corruptions: int = 0,
    ) -> tuple[set[int], set[int]]:
        """Clip crash requests to the shared ``t`` budget and apply them.

        ``requests`` maps party -> restart round; invalid targets
        (corrupted, already down, finished, out of range) are silently
        ignored, over-budget ones are clipped with a warning, exactly
        like over-budget adaptive corruptions.
        """
        valid = {
            party: up
            for party, up in requests.items()
            if 0 <= party < self.n
            and party not in self.corrupted
            and party not in self.down
            and not self._states[party].finished
            and up > down_round
        }
        allowed = max(
            0,
            self.t
            - len(self.corrupted)
            - pending_corruptions
            - len(self.down),
        )
        accepted = set(sorted(valid)[:allowed])
        clipped = set(valid) - accepted
        if clipped:
            self.clipped_crashes.extend(
                (down_round, party) for party in sorted(clipped)
            )
            warnings.warn(
                f"crash budget exhausted at round {down_round}: clipped "
                f"parties {sorted(clipped)} (t={self.t}, corrupted "
                f"{len(self.corrupted)}, down {len(self.down)}) -- the "
                "crash schedule is over-powered and was weakened",
                RuntimeWarning,
                stacklevel=2,
            )
        for party in sorted(accepted):
            self.down.add(party)
            self._restart_at.setdefault(valid[party], set()).add(party)
            self.crash_log.append(("down", down_round, party))
        return accepted, clipped

    def _finish_round_fast(
        self,
        round_index: int,
        outgoings: dict[int, Outgoing],
        honest_channels: set[str],
    ) -> None:
        """Deliver one round with no fault plane armed.

        Valid only under :attr:`_fast_path` conditions, where the
        general path degenerates to "deliver every yielded message
        verbatim": honest messages first in party order, then corrupted
        parties' spec messages -- exactly the inbox insertion order the
        general path produces, so ``distribute``'s first-valid-tuple
        scan sees identical dicts.  Stats, counters, channel trace, and
        (when requested) the :class:`RoundRecord` are byte-identical;
        only the per-link dict churn and the RoundView are skipped.

        On a plain run the inbox dicts come from the two-bank arena
        (cleared and refilled instead of freshly allocated); with a
        trace or monitors armed every round gets fresh dicts, since a
        tracing consumer may legitimately retain them.
        """
        n = self.n
        stats = self.stats
        corrupted = self.corrupted
        states = self._states
        if self._plain:
            # Bank r%2 was delivered in round r-2 and has been consumed
            # (every protocol reads its inbox before its next yield).
            inboxes = self._arena[round_index & 1]
            for inbox in inboxes.values():
                inbox.clear()
        else:
            inboxes = {party: {} for party in states}
        # List-indexed view of the inbox dicts: party ids are dense
        # 0..n-1, and a C-level list index beats a dict hash on the
        # innermost (per-message) loop.
        inbox_rows = [inboxes[party] for party in range(n)]
        round_bits = 0
        round_messages = 0
        byz_count = 0
        sender_bits: list[tuple[int, int]] = []
        for party, out in outgoings.items():
            if corrupted and party in corrupted:
                continue
            # A broadcast reuses one payload object for every
            # destination; sizing it once per object is exact (bit_size
            # is pure) and skips the dominant per-message cost.  The
            # one-object memo covers the broadcast shape; bundles with
            # several distinct payloads (e.g. ``distribute``) price
            # each object as before.  Seeded with a private sentinel:
            # ``None`` is a real payload (the protocols' bottom symbol,
            # priced at 1 bit) and must not match an empty memo.
            memo_obj = _NO_PAYLOAD
            memo_bits = 0
            party_sent = 0
            party_messages = 0
            for dst, payload in out.messages.items():
                if not 0 <= dst < n:
                    continue
                inbox_rows[dst][party] = payload
                if dst != party:
                    if payload is memo_obj:
                        bits = memo_bits
                    else:
                        bits = bit_size(payload)
                        memo_obj = payload
                        memo_bits = bits
                    party_sent += bits
                    party_messages += 1
            if party_messages:
                sender_bits.append((party, party_sent))
                round_bits += party_sent
                round_messages += party_messages
        if corrupted:
            for party, out in outgoings.items():
                if party not in corrupted:
                    continue
                for dst, payload in out.messages.items():
                    if 0 <= dst < n:
                        inboxes[dst][party] = payload
                        byz_count += 1
        for party, state in states.items():
            state.inbox = inboxes[party]
        if sender_bits:
            # Post lockstep check every honest sender shares one
            # channel, so the whole round batches into one update.
            stats.record_round_sends(
                next(iter(honest_channels)),
                sender_bits,
                round_messages,
                round_bits,
            )
        stats.record_round()
        counters.bump("net_rounds")
        counters.bump("net_messages", round_messages + byz_count)

        if self._plain or (self.trace is None and not self.monitors):
            return
        record = RoundRecord(
            round_index=round_index,
            channel=(
                next(iter(honest_channels)) if honest_channels else ""
            ),
            honest_messages=round_messages,
            honest_bits=round_bits,
            byzantine_messages=byz_count,
            corrupted=frozenset(corrupted),
            finished_parties=frozenset(
                p for p, s in self._states.items() if s.finished
            ),
            honest_channels=tuple(sorted(honest_channels)),
            new_corruptions=frozenset(),
            clipped_corruptions=frozenset(),
            down_parties=frozenset(),
            restarted_parties=frozenset(),
            new_crashes=frozenset(),
            clipped_crashes=frozenset(),
        )
        if self.trace is not None:
            self.trace.append(record)
        for monitor in self.monitors:
            self._monitored(monitor.on_round, record, self)

    def _run_round(self, round_index: int) -> None:
        # 0. Crash plane: restarts due now, then declarative crashes
        # whose down round is now (both before any generator resumes).
        restarted: frozenset[int] = frozenset()
        if self._recovery is not None:
            restarted = self._process_restarts(round_index)
            declared = self._declared_crashes.pop(round_index, None)
            if declared:
                self._accept_crashes(declared, round_index)

        # 1. Resume every running generator (down parties stay frozen).
        # The finished/down guards are hoisted out of ``_resume`` so a
        # long-finished party costs one attribute read, not a call, and
        # the resume count lands in ``sched_resumes`` as one batched
        # bump per round (actual generator touches only).
        outgoings: dict[int, Outgoing] = {}
        down = self.down
        resumes = 0
        for party, state in self._states.items():
            if state.finished or (down and party in down):
                continue
            resumes += 1
            outgoing = self._resume(party, state, round_index)
            if outgoing is not None:
                outgoings[party] = outgoing
        if resumes:
            counters.bump("sched_resumes", resumes)
        if not outgoings:
            # Every generator terminated while consuming last round's
            # inbox -- no network round takes place.
            return

        # Lockstep sanity check: running honest parties share one channel.
        honest_channels = {
            out.channel
            for party, out in outgoings.items()
            if party not in self.corrupted
        }
        if len(honest_channels) > 1:
            record = RoundRecord(
                round_index=round_index,
                channel="",
                honest_messages=0,
                honest_bits=0,
                byzantine_messages=0,
                corrupted=frozenset(self.corrupted),
                finished_parties=frozenset(
                    p for p, s in self._states.items() if s.finished
                ),
                honest_channels=tuple(sorted(honest_channels)),
                down_parties=frozenset(self.down),
                restarted_parties=restarted,
            )
            if self.trace is not None:
                self.trace.append(record)
            for monitor in self.monitors:
                self._monitored(monitor.on_round, record, self)
            raise SimulationError(
                f"honest parties out of lockstep in round {round_index}: "
                f"{sorted(honest_channels)}",
                trace=self.trace,
                stats=self.stats,
                outputs=self._partial_outputs(),
            )
        if honest_channels:
            self.channel_trace.append(next(iter(honest_channels)))

        if self._fast_path:
            self._finish_round_fast(round_index, outgoings, honest_channels)
            return

        honest_outgoing: dict[tuple[int, int], Any] = {}
        spec_outgoing: dict[tuple[int, int], Any] = {}
        channels: dict[int, str] = {}
        for party, out in outgoings.items():
            channels[party] = out.channel
            bucket = (
                spec_outgoing if party in self.corrupted else honest_outgoing
            )
            for dst, payload in out.messages.items():
                if 0 <= dst < self.n:
                    bucket[(party, dst)] = payload

        # 2. The rushing adversary acts on the full round view.
        view = RoundView(
            round_index=round_index,
            n=self.n,
            t=self.t,
            kappa=self.kappa,
            corrupted=frozenset(self.corrupted),
            channels=channels,
            honest_outgoing=dict(honest_outgoing),
            spec_outgoing=dict(spec_outgoing),
            corrupted_inputs={
                p: self.inputs[p] for p in self.corrupted
            },
            down=frozenset(self.down),
        )
        byz_messages = self.adversary.deliver(view)

        # 3. Synchronize the wire: on a lossy transport every honest
        # payload to a live destination is retransmitted until acked,
        # restoring the lockstep abstraction (overhead lands in the
        # retrans_*/ack_* stats, never in honest_bits).
        if self.transport is not None:
            live_traffic = {
                link: payload
                for link, payload in honest_outgoing.items()
                if link[1] not in self.down
            }
            try:
                self.transport.synchronize(
                    round_index, live_traffic, self.stats
                )
            except TransportTimeout as timeout:
                raise SimulationError(
                    str(timeout),
                    trace=self.trace,
                    stats=self.stats,
                    outputs=self._partial_outputs(),
                ) from timeout

        # 4. Deliver inboxes and account honest bits.  Down parties'
        # inboxes are parked (senders keep retransmitting) instead of
        # delivered; live parties' executed rounds go to their WALs.
        inboxes: dict[int, dict[int, Any]] = {
            party: {} for party in self._states
        }
        round_bits = 0
        round_messages = 0
        byz_count = 0
        for (src, dst), payload in honest_outgoing.items():
            inboxes[dst][src] = payload
            if dst != src:
                bits = bit_size(payload)
                self.stats.record_send(src, channels[src], bits)
                round_bits += bits
                round_messages += 1
        guard = self._guard
        for (src, dst), payload in byz_messages.items():
            if src in self.corrupted and 0 <= dst < self.n:
                if guard is not None and dst not in self.corrupted:
                    # Honest parties validate byzantine-origin traffic
                    # before it enters their inbox; out-of-bounds
                    # payloads are quarantined (discarded + attributed),
                    # never raised on.  Corrupted destinations do not
                    # validate -- that is the adversary's own code.
                    counters.bump("guard_checks")
                    reason, bits = guard.check(round_index, src, payload)
                    if reason is not None:
                        counters.bump("guard_quarantined")
                        self.stats.record_quarantine(bits)
                        if len(self.quarantine_log) < _QUARANTINE_LOG_CAP:
                            self.quarantine_log.append(
                                (round_index, src, dst, reason)
                            )
                        continue
                inboxes[dst][src] = payload
                byz_count += 1
        for party, state in self._states.items():
            if party not in self.down:
                state.inbox = inboxes[party]
        if self._recovery is not None:
            honest_senders = {
                p for p in range(self.n) if p not in self.corrupted
            }
            for party in sorted(self.down):
                self._recovery.park(
                    party, round_index, inboxes[party], honest_senders
                )
            for party, out in outgoings.items():
                if party not in self.corrupted:
                    self._recovery.log_round(
                        party, round_index, inboxes[party], out
                    )
        self.stats.record_round()
        counters.bump("net_rounds")
        counters.bump("net_messages", round_messages + byz_count)

        # 5. Adaptive corruptions (effective next round).  An over-budget
        # ``adapt()`` is clipped deterministically; the clipped parties
        # are recorded and warned about rather than silently dropped.
        # Down parties share the same ``t`` budget and cannot be
        # corrupted while powered off.
        requested = {
            party
            for party in self.adversary.adapt(view)
            if 0 <= party < self.n
            and party not in self.corrupted
            and party not in self.down
        }
        allowed = max(0, self.t - len(self.corrupted) - len(self.down))
        accepted = set(sorted(requested)[:allowed])
        clipped = requested - accepted
        if clipped:
            self.clipped_corruptions.extend(
                (round_index, party) for party in sorted(clipped)
            )
            warnings.warn(
                f"adaptive corruption budget exhausted in round "
                f"{round_index}: clipped parties {sorted(clipped)} "
                f"(t={self.t}, already corrupted "
                f"{len(self.corrupted)}) -- the adversary configuration "
                "is over-powered and was silently weakened",
                RuntimeWarning,
                stacklevel=2,
            )

        # 6. Adversarial crashes (effective next round), clipped against
        # the combined corruption + down budget.
        down_before = frozenset(self.down)
        crash_accepted: set[int] = set()
        crash_clipped: set[int] = set()
        if self._recovery is not None and getattr(
            self.adversary, "has_crash_plane", False
        ):
            crash_requests = self.adversary.crash_restarts(view)
            crash_accepted, crash_clipped = self._accept_crashes(
                {
                    party: up
                    for party, up in crash_requests.items()
                    if party not in accepted
                },
                round_index + 1,
                pending_corruptions=len(accepted),
            )

        record = RoundRecord(
            round_index=round_index,
            channel=(
                next(iter(honest_channels)) if honest_channels else ""
            ),
            honest_messages=round_messages,
            honest_bits=round_bits,
            byzantine_messages=byz_count,
            corrupted=frozenset(self.corrupted),
            finished_parties=frozenset(
                p for p, s in self._states.items() if s.finished
            ),
            honest_channels=tuple(sorted(honest_channels)),
            new_corruptions=frozenset(accepted),
            clipped_corruptions=frozenset(clipped),
            down_parties=down_before,
            restarted_parties=restarted,
            new_crashes=frozenset(crash_accepted),
            clipped_crashes=frozenset(crash_clipped),
        )
        if self.trace is not None:
            self.trace.append(record)
        for monitor in self.monitors:
            self._monitored(monitor.on_round, record, self)

        self.corrupted.update(accepted)
