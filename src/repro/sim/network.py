"""The synchronous network simulator.

Implements the paper's model (Section 2): ``n`` parties in a fully
connected network of authenticated channels, synchronized clocks, and
guaranteed delivery within one round.  Protocol executions proceed in
lockstep rounds:

1. every running party's generator is resumed with last round's inbox and
   yields its outgoing messages,
2. the (rushing) adversary observes all honest traffic and chooses the
   corrupted parties' messages,
3. messages are delivered; honest-sent bits are accounted.

Authenticated channels mean the receiver always learns the true sender
identity -- the simulator enforces this by construction (the adversary can
only emit messages attributed to corrupted parties).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ConfigurationError, SimulationError
from .adversary import Adversary, PassiveAdversary, RoundView
from .metrics import CommunicationStats
from .party import Context, Outgoing, Proto
from .sizing import bit_size
from .trace import RoundRecord

__all__ = ["ExecutionResult", "SynchronousNetwork", "ProtocolFactory"]

#: Builds one party's protocol generator from its context and input.
ProtocolFactory = Callable[[Context, Any], Proto[Any]]

_DEFAULT_MAX_ROUNDS = 100_000


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution."""

    n: int
    t: int
    outputs: dict[int, Any]
    corrupted: frozenset[int]
    stats: CommunicationStats
    channel_trace: list[str] = field(default_factory=list)
    trace: list[RoundRecord] | None = None

    @property
    def honest_parties(self) -> list[int]:
        """Ids of the parties that stayed honest."""
        return [p for p in range(self.n) if p not in self.corrupted]

    def common_output(self) -> Any:
        """Return the agreed output, asserting the Agreement property."""
        values = {party: self.outputs[party] for party in self.honest_parties}
        if not values:
            raise SimulationError("no honest parties produced an output")
        iterator = iter(values.values())
        first = next(iterator)
        if any(value != first for value in iterator):
            raise SimulationError(f"honest parties disagree: {values!r}")
        return first


@dataclass
class _PartyState:
    generator: Proto[Any]
    finished: bool = False
    output: Any = None
    inbox: dict[int, Any] = field(default_factory=dict)
    started: bool = False


class SynchronousNetwork:
    """Drives one protocol execution under a byzantine adversary."""

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        inputs: dict[int, Any] | list[Any],
        n: int,
        t: int,
        kappa: int = 128,
        adversary: Adversary | None = None,
        max_rounds: int = _DEFAULT_MAX_ROUNDS,
        trace: bool = False,
    ) -> None:
        if isinstance(inputs, list):
            inputs = dict(enumerate(inputs))
        if set(inputs) != set(range(n)):
            raise ConfigurationError(
                f"inputs must cover parties 0..{n - 1}, got {sorted(inputs)}"
            )
        self.n = n
        self.t = t
        self.kappa = kappa
        self.inputs = dict(inputs)
        self.adversary = adversary or PassiveAdversary()
        self.protocol_factory = protocol_factory
        self.max_rounds = max_rounds

        self.corrupted: set[int] = set(
            self.adversary.select_corruptions(n, t)
        )
        if len(self.corrupted) > t:
            raise ConfigurationError(
                f"adversary selected {len(self.corrupted)} > t={t} corruptions"
            )
        if any(not 0 <= p < n for p in self.corrupted):
            raise ConfigurationError("corruption set out of range")

        self.stats = CommunicationStats()
        self.channel_trace: list[str] = []
        self.trace: list[RoundRecord] | None = [] if trace else None
        self._states: dict[int, _PartyState] = {}
        for party in range(n):
            ctx = Context(party_id=party, n=n, t=t, kappa=kappa)
            gen = protocol_factory(ctx, self.inputs[party])
            self._states[party] = _PartyState(generator=gen)

    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute until every honest party has terminated."""
        for round_index in range(self.max_rounds):
            if self._all_honest_finished():
                break
            self._run_round(round_index)
        else:
            raise SimulationError(
                f"protocol did not terminate within {self.max_rounds} rounds"
            )
        outputs = {
            party: state.output
            for party, state in self._states.items()
            if state.finished and party not in self.corrupted
        }
        return ExecutionResult(
            n=self.n,
            t=self.t,
            outputs=outputs,
            corrupted=frozenset(self.corrupted),
            stats=self.stats,
            channel_trace=self.channel_trace,
            trace=self.trace,
        )

    # ------------------------------------------------------------------
    def _all_honest_finished(self) -> bool:
        return all(
            state.finished
            for party, state in self._states.items()
            if party not in self.corrupted
        )

    def _resume(self, party: int, state: _PartyState) -> Outgoing | None:
        """Advance one party's generator by one round; None if finished."""
        if state.finished:
            return None
        try:
            if not state.started:
                state.started = True
                outgoing = next(state.generator)
            else:
                outgoing = state.generator.send(state.inbox)
        except StopIteration as stop:
            state.finished = True
            state.output = stop.value
            return None
        except Exception:
            if party in self.corrupted:
                # A corrupted party's spec code may crash on adversarial
                # inboxes; the adversary simply loses its spec hint.
                state.finished = True
                return None
            raise
        if not isinstance(outgoing, Outgoing):
            raise SimulationError(
                f"party {party} yielded {type(outgoing).__name__}, "
                "expected Outgoing"
            )
        return outgoing

    def _run_round(self, round_index: int) -> None:
        # 1. Resume every running generator.
        outgoings: dict[int, Outgoing] = {}
        for party, state in self._states.items():
            outgoing = self._resume(party, state)
            if outgoing is not None:
                outgoings[party] = outgoing
        if not outgoings:
            # Every generator terminated while consuming last round's
            # inbox -- no network round takes place.
            return

        # Lockstep sanity check: running honest parties share one channel.
        honest_channels = {
            out.channel
            for party, out in outgoings.items()
            if party not in self.corrupted
        }
        if len(honest_channels) > 1:
            raise SimulationError(
                f"honest parties out of lockstep in round {round_index}: "
                f"{sorted(honest_channels)}"
            )
        if honest_channels:
            self.channel_trace.append(next(iter(honest_channels)))

        honest_outgoing: dict[tuple[int, int], Any] = {}
        spec_outgoing: dict[tuple[int, int], Any] = {}
        channels: dict[int, str] = {}
        for party, out in outgoings.items():
            channels[party] = out.channel
            bucket = (
                spec_outgoing if party in self.corrupted else honest_outgoing
            )
            for dst, payload in out.messages.items():
                if 0 <= dst < self.n:
                    bucket[(party, dst)] = payload

        # 2. The rushing adversary acts on the full round view.
        view = RoundView(
            round_index=round_index,
            n=self.n,
            t=self.t,
            kappa=self.kappa,
            corrupted=frozenset(self.corrupted),
            channels=channels,
            honest_outgoing=dict(honest_outgoing),
            spec_outgoing=dict(spec_outgoing),
            corrupted_inputs={
                p: self.inputs[p] for p in self.corrupted
            },
        )
        byz_messages = self.adversary.deliver(view)

        # 3. Deliver inboxes and account honest bits.
        inboxes: dict[int, dict[int, Any]] = {
            party: {} for party in self._states
        }
        round_bits = 0
        round_messages = 0
        byz_count = 0
        for (src, dst), payload in honest_outgoing.items():
            inboxes[dst][src] = payload
            if dst != src:
                bits = bit_size(payload)
                self.stats.record_send(src, channels[src], bits)
                round_bits += bits
                round_messages += 1
        for (src, dst), payload in byz_messages.items():
            if src in self.corrupted and 0 <= dst < self.n:
                inboxes[dst][src] = payload
                byz_count += 1
        for party, state in self._states.items():
            state.inbox = inboxes[party]
        self.stats.record_round()
        if self.trace is not None:
            self.trace.append(
                RoundRecord(
                    round_index=round_index,
                    channel=(
                        next(iter(honest_channels)) if honest_channels else ""
                    ),
                    honest_messages=round_messages,
                    honest_bits=round_bits,
                    byzantine_messages=byz_count,
                    corrupted=frozenset(self.corrupted),
                    finished_parties=frozenset(
                        p for p, s in self._states.items() if s.finished
                    ),
                )
            )

        # 4. Adaptive corruptions take effect next round.
        new_corruptions = self.adversary.adapt(view)
        if new_corruptions:
            allowed = self.t - len(self.corrupted)
            for party in sorted(new_corruptions)[:allowed]:
                if 0 <= party < self.n:
                    self.corrupted.add(party)
