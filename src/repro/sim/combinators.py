"""Protocol combinators: parallel composition of sub-protocols.

The paper's round complexities implicitly allow independent sub-protocol
instances to run *in parallel* (e.g. the classic broadcast-based CA runs
its ``n`` broadcast instances concurrently, paying the round bill once).
The lockstep simulator requires all honest parties on one channel per
round, so naive interleaving of generators is not possible; this module
provides the standard fix -- a multiplexer:

:func:`run_parallel` drives ``k`` sub-protocol generators inside one
party.  Each simulated round it advances every unfinished branch,
merges their outgoing messages into one envelope per destination
(``{branch_index: payload}``), and demultiplexes the received envelopes
back to the branches.  Branches may finish in different rounds; the
combinator returns the list of their outputs once all are done.

Wire cost: envelopes price as the sum of their branch payloads plus the
branch indices (a real implementation would tag messages similarly), so
parallel composition never hides communication -- it only compresses
rounds.  Round cost: ``max`` over branches instead of ``sum``.
"""

from __future__ import annotations

from typing import Any

from ..errors import SimulationError
from .party import Outgoing, Proto

__all__ = ["run_parallel"]


def run_parallel(
    channel: str, branches: list[Proto[Any]]
) -> Proto[list[Any]]:
    """Run sub-protocol generators concurrently; return their outputs.

    Args:
        channel: label for the merged rounds (sub-channels are not
            preserved in accounting -- the envelope is one message).
        branches: freshly created protocol generators.  All honest
            parties must pass the same number of branches in the same
            order (as with any lockstep protocol).

    Returns:
        The branches' return values, in input order.
    """
    active: dict[int, Proto[Any]] = dict(enumerate(branches))
    outputs: dict[int, Any] = {}
    inboxes: dict[int, dict[int, Any]] = {index: {} for index in active}
    started = False

    while active:
        # 1. advance every unfinished branch by one round.
        outgoing_by_branch: dict[int, Outgoing] = {}
        for index in sorted(active):
            generator = active[index]
            try:
                if not started:
                    out = next(generator)
                else:
                    out = generator.send(inboxes.get(index, {}))
            except StopIteration as stop:
                outputs[index] = stop.value
                del active[index]
                continue
            if not isinstance(out, Outgoing):
                raise SimulationError(
                    f"parallel branch {index} yielded "
                    f"{type(out).__name__}, expected Outgoing"
                )
            outgoing_by_branch[index] = out
        started = True
        if not active:
            break

        # 2. merge outgoing messages into per-destination envelopes.
        merged: dict[int, dict[int, Any]] = {}
        for index, out in outgoing_by_branch.items():
            for dst, payload in out.messages.items():
                merged.setdefault(dst, {})[index] = payload

        inbox = yield Outgoing(channel=channel, messages=merged)

        # 3. demultiplex envelopes back to branches (byzantine-proof:
        # anything that is not a {small-int: payload} dict is dropped).
        inboxes = {index: {} for index in active}
        for src, envelope in inbox.items():
            if not isinstance(envelope, dict):
                continue
            for index, payload in envelope.items():
                if isinstance(index, int) and index in inboxes:
                    inboxes[index][src] = payload

    return [outputs[index] for index in sorted(outputs)]
