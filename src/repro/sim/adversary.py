"""Adversary framework for the synchronous byzantine model.

The paper assumes an adaptive, rushing adversary that can corrupt up to
``t < n/3`` parties and make them deviate arbitrarily.  The simulator gives
the adversary exactly that power:

* **Rushing** -- each round the adversary observes *all* honest outgoing
  messages (including those addressed to honest parties) before choosing
  the corrupted parties' messages.
* **Arbitrary deviation** -- the adversary returns any payloads on behalf
  of corrupted parties; the simulator imposes no structure on them.
* **Full knowledge of corrupted state** -- the simulator keeps driving a
  corrupted party's honest code ("the spec"), and exposes what that party
  *would* have sent honestly.  Strategies can drop, mutate, equivocate,
  or replace that traffic, which makes targeted protocol attacks easy to
  script.
* **Adaptive corruption** -- at any round boundary the adversary may
  corrupt additional (so far honest) parties, up to ``t`` in total.

Concrete strategies used throughout the test suite and the adversarial
benchmarks live at the bottom of this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "DROP",
    "RoundView",
    "Adversary",
    "PassiveAdversary",
    "CrashAdversary",
    "RandomGarbageAdversary",
    "EquivocatingAdversary",
    "OutlierAdversary",
    "SplitVoteAdversary",
    "ScriptedAdversary",
    "AdaptiveCorruptionAdversary",
    "KingTargetingAdversary",
    "PrefixPoisonAdversary",
    "WitnessSuppressionAdversary",
    "STANDARD_ADVERSARIES",
    "standard_adversary_suite",
]


class _Drop:
    """Sentinel: scripted handlers return this to suppress a message."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "DROP"


DROP = _Drop()


@dataclass
class RoundView:
    """Everything the (rushing) adversary sees before sending in a round."""

    round_index: int
    n: int
    t: int
    kappa: int
    corrupted: frozenset[int]
    #: channel label of each still-running party this round (honest parties
    #: are in lockstep, so honest labels coincide; corrupted parties' spec
    #: code may have diverged).
    channels: dict[int, str]
    #: ``(src, dst) -> payload`` for every honest message of this round.
    honest_outgoing: dict[tuple[int, int], Any]
    #: ``(src, dst) -> payload`` the corrupted parties' spec code would send.
    spec_outgoing: dict[tuple[int, int], Any]
    #: protocol inputs originally assigned to each corrupted party.
    corrupted_inputs: dict[int, Any]
    #: honest parties currently powered off by the crash plane (they send
    #: and receive nothing until their scheduled restart + WAL replay).
    down: frozenset[int] = frozenset()

    @property
    def channel(self) -> str:
        """The honest parties' current channel label (lockstep)."""
        for party, label in self.channels.items():
            if party not in self.corrupted:
                return label
        return next(iter(self.channels.values()), "")


class Adversary:
    """Base adversary: corrupts the last ``t`` parties and follows the spec.

    Subclasses override :meth:`deliver` (whole-round control) or the finer
    :meth:`mutate` hook (per-message control relative to the honest spec).
    """

    #: True when the strategy may crash/restart honest parties -- the
    #: network only builds the write-ahead-log recovery plane (and pays
    #: its logging overhead) when an execution can actually need it.
    has_crash_plane: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    # -- corruption ------------------------------------------------------
    def select_corruptions(self, n: int, t: int) -> set[int]:
        """Initial corruption set; defaults to the ``t`` highest indices.

        (Party 0 is then honest, so the first phase-king of king-based
        subprotocols is honest by default; strategies that want to corrupt
        kings override this or use :class:`AdaptiveCorruptionAdversary`.)
        """
        return set(range(n - t, n))

    def adapt(self, view: RoundView) -> set[int]:
        """Extra parties to corrupt starting next round (adaptive)."""
        return set()

    # -- crash plane ------------------------------------------------------
    def crash_restarts(self, view: RoundView) -> dict[int, int]:
        """Honest parties to power off starting next round.

        Returns ``{party: restart_round}``: each party is down from
        ``view.round_index + 1`` until the start of ``restart_round``,
        at which point it deterministically replays its write-ahead log
        (:mod:`repro.sim.recovery`) and rejoins in lockstep.  Crashed
        honest parties count against the same ``t`` fault budget as
        byzantine corruptions while they are down; over-budget requests
        are clipped deterministically and recorded.
        """
        return {}

    # -- message control --------------------------------------------------
    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        """Return the corrupted parties' messages for this round."""
        out: dict[tuple[int, int], Any] = {}
        for (src, dst), payload in view.spec_outgoing.items():
            mutated = self.mutate(view, src, dst, payload)
            if mutated is not DROP:
                out[(src, dst)] = mutated
        extra = self.inject(view)
        out.update(extra)
        return out

    def mutate(
        self, view: RoundView, src: int, dst: int, payload: Any
    ) -> Any:
        """Transform one spec message; return ``DROP`` to suppress it."""
        return payload

    def inject(self, view: RoundView) -> dict[tuple[int, int], Any]:
        """Messages to add beyond (mutated) spec traffic."""
        return {}

    def describe(self) -> str:
        return type(self).__name__


class PassiveAdversary(Adversary):
    """Corrupted parties follow the protocol exactly (sanity baseline)."""


class CrashAdversary(Adversary):
    """Corrupted parties fail-stop: silent from ``crash_round`` onwards."""

    def __init__(self, crash_round: int = 0, seed: int = 0) -> None:
        super().__init__(seed)
        self.crash_round = crash_round

    def mutate(self, view, src, dst, payload):
        if view.round_index >= self.crash_round:
            return DROP
        return payload

    def describe(self) -> str:
        return f"CrashAdversary(round>={self.crash_round})"


def _deep_garbage(rng: random.Random) -> Any:
    """A 1-tuple chain nested past any honest schema (built iteratively)."""
    value: Any = rng.getrandbits(8)
    for _ in range(40 + rng.randrange(64)):
        value = (value,)
    return value


class RandomGarbageAdversary(Adversary):
    """Sends structurally random payloads to every party every round.

    Exercises the honest parties' input validation: nothing an honest party
    does may crash or mis-account because of malformed byzantine bytes.

    Two seed-stable profiles select the payload generators:

    * ``"classic"`` (default) -- the original small, well-shaped makers.
      The maker tuple and its length are frozen: ``rng.choice`` consumes
      a length-dependent number of RNG draws, so any change here would
      silently reseed every pinned-seed test and campaign.
    * ``"bomb"`` -- the classic makers plus large blobs (1-128 KiB) and
      deep 1-tuple nests, for executions armed with wire guards.
    """

    _GARBAGE_MAKERS: tuple[Callable[[random.Random], Any], ...] = (
        lambda rng: rng.getrandbits(64),
        lambda rng: -rng.getrandbits(16),
        lambda rng: bytes(rng.getrandbits(8) for _ in range(rng.randrange(9))),
        lambda rng: ("VOTE", rng.getrandbits(8)),
        lambda rng: ("PROPOSE", None, ("nested", [1, 2])),
        lambda rng: None,
        lambda rng: "junk",
        lambda rng: [rng.getrandbits(4) for _ in range(rng.randrange(4))],
        lambda rng: {"k": rng.getrandbits(4)},
    )

    _BOMB_MAKERS: tuple[Callable[[random.Random], Any], ...] = (
        _GARBAGE_MAKERS
        + (
            lambda rng: bytes([rng.getrandbits(8)])
            * (1 << (10 + rng.randrange(8))),
            _deep_garbage,
        )
    )

    _PROFILES = {"classic": "_GARBAGE_MAKERS", "bomb": "_BOMB_MAKERS"}

    def __init__(self, seed: int = 0, profile: str = "classic") -> None:
        super().__init__(seed)
        if profile not in self._PROFILES:
            raise ValueError(
                f"unknown garbage profile {profile!r}, "
                f"expected one of {sorted(self._PROFILES)}"
            )
        self.profile = profile
        self._makers = getattr(self, self._PROFILES[profile])

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for src in view.corrupted:
            for dst in range(view.n):
                maker = self.rng.choice(self._makers)
                out[(src, dst)] = maker(self.rng)
        return out

    def describe(self) -> str:
        if self.profile == "classic":
            return "RandomGarbageAdversary"
        return f"RandomGarbageAdversary(profile={self.profile})"


class EquivocatingAdversary(Adversary):
    """Sends destination-dependent variants of the spec messages.

    Integers are shifted by a destination-dependent offset; everything else
    alternates between the spec payload and ``None``.  Targets every vote
    counting / quorum step at once.
    """

    def mutate(self, view, src, dst, payload):
        if isinstance(payload, bool):
            return payload if dst % 2 == 0 else (not payload)
        if isinstance(payload, int):
            return payload + (dst % 3) - 1
        if dst % 2 == 1:
            return None
        return payload


class OutlierAdversary(Adversary):
    """Replaces every integer the spec would send with an extreme value.

    The canonical convex-validity attack from the paper's introduction: the
    sensors read about -10 degrees and the byzantine sensors shout +100.
    Honest outputs must stay inside the honest range regardless.
    """

    def __init__(
        self, low: int = 0, high: int = 2**64, seed: int = 0
    ) -> None:
        super().__init__(seed)
        self.low = low
        self.high = high

    def mutate(self, view, src, dst, payload):
        if isinstance(payload, bool):
            return True
        if isinstance(payload, int):
            return self.high if (src + dst) % 2 == 0 else self.low
        return payload

    def describe(self) -> str:
        return f"OutlierAdversary(low={self.low}, high={self.high})"


class SplitVoteAdversary(Adversary):
    """Tells the low half of the parties one thing and the high half another.

    Designed against threshold steps (``PI_BA+`` votes, phase-king counts,
    ``GetOutput``'s majority bit): the adversary consistently pushes two
    different candidate values to two halves of the honest parties.
    """

    def __init__(self, alt_value: Any = 0, seed: int = 0) -> None:
        super().__init__(seed)
        self.alt_value = alt_value

    def mutate(self, view, src, dst, payload):
        if dst < view.n // 2:
            return payload
        if isinstance(payload, bool):
            return not payload
        if isinstance(payload, int):
            return self.alt_value
        if isinstance(payload, tuple) and payload and payload[0] == "VOTE":
            return ("VOTE", self.alt_value)
        return self.alt_value

    def describe(self) -> str:
        return f"SplitVoteAdversary(alt={self.alt_value!r})"


class ScriptedAdversary(Adversary):
    """Fully scriptable adversary for targeted attacks in tests.

    ``handler(view, src, dst, spec_payload)`` is called for every corrupted
    (src, dst) pair each round -- including pairs the spec would not send
    on (``spec_payload=None`` then) -- and returns the payload to deliver,
    or ``DROP`` to send nothing.
    """

    def __init__(
        self,
        handler: Callable[[RoundView, int, int, Any], Any],
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.handler = handler

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for src in view.corrupted:
            for dst in range(view.n):
                spec = view.spec_outgoing.get((src, dst))
                payload = self.handler(view, src, dst, spec)
                if payload is not DROP:
                    out[(src, dst)] = payload
        return out


@dataclass
class _CorruptionPlan:
    round_index: int
    party: int


class AdaptiveCorruptionAdversary(Adversary):
    """Corrupts a scheduled sequence of parties at round boundaries.

    Wraps an inner adversary that decides message behaviour; this class only
    adds the adaptive-corruption schedule (e.g. "corrupt the phase king just
    before its phase").
    """

    def __init__(
        self,
        schedule: list[tuple[int, int]],
        inner: Adversary | None = None,
        initial: set[int] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.schedule = [_CorruptionPlan(r, p) for r, p in schedule]
        self.inner = inner or CrashAdversary()
        self.initial = set(initial or ())

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(self.initial)

    def adapt(self, view: RoundView) -> set[int]:
        due = {
            plan.party
            for plan in self.schedule
            if plan.round_index <= view.round_index
            and plan.party not in view.corrupted
        }
        budget = view.t - len(view.corrupted)
        return set(sorted(due)[:budget])

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        return self.inner.deliver(view)

    def describe(self) -> str:
        return f"AdaptiveCorruptionAdversary({len(self.schedule)} planned)"


class KingTargetingAdversary(Adversary):
    """Corrupts the kings of the first ``t`` phases and makes them lie.

    King-based subprotocols (Phase-King ``PI_BA``, ``HighCostCA``) only
    need ONE honest king phase; this strategy burns the entire
    corruption budget on early kings, sending destination-dependent
    king values -- the strongest structural attack on that family.
    """

    def __init__(self, lie: Any = 2**40, seed: int = 0) -> None:
        super().__init__(seed)
        self.lie = lie

    def select_corruptions(self, n: int, t: int) -> set[int]:
        return set(range(t))

    def mutate(self, view: RoundView, src: int, dst: int, payload: Any):
        if view.channel.endswith("/king"):
            # equivocate: half the parties get the lie, half get spec
            return self.lie if dst % 2 == 0 else payload
        return payload

    def describe(self) -> str:
        return f"KingTargetingAdversary(lie={self.lie!r})"


class PrefixPoisonAdversary(Adversary):
    """Targets ``FindPrefix``: pushes fabricated segments and votes into
    every ``PI_lBA+`` iteration, trying to smuggle a non-honest prefix
    past Intrusion Tolerance (it must fail) or force spurious bottoms
    past Bounded Pre-Agreement (also must fail)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        channel = view.channel
        fake = bytes([self.rng.getrandbits(8)]) * (view.kappa // 8)
        for src in view.corrupted:
            for dst in range(view.n):
                if channel.endswith("/input"):
                    out[(src, dst)] = fake
                elif channel.endswith("/vote"):
                    out[(src, dst)] = ("VOTE", fake)
                elif "/dist/" in channel:
                    out[(src, dst)] = (dst, fake, None)
                else:
                    spec = view.spec_outgoing.get((src, dst))
                    if spec is not None:
                        out[(src, dst)] = spec
        return out


class WitnessSuppressionAdversary(Adversary):
    """Targets ``GetOutput``: stays silent in announcement rounds and
    floods the opposite bit, trying to flip the witnesses' majority."""

    def __init__(self, flood_bit: int = 1, seed: int = 0) -> None:
        super().__init__(seed)
        self.flood_bit = flood_bit

    def deliver(self, view: RoundView) -> dict[tuple[int, int], Any]:
        out: dict[tuple[int, int], Any] = {}
        for src in view.corrupted:
            for dst in range(view.n):
                if view.channel.endswith("/announce"):
                    out[(src, dst)] = self.flood_bit
                else:
                    spec = view.spec_outgoing.get((src, dst))
                    if spec is not None:
                        out[(src, dst)] = spec
        return out

    def describe(self) -> str:
        return f"WitnessSuppressionAdversary(bit={self.flood_bit})"


def standard_adversary_suite(seed: int = 0) -> list[Adversary]:
    """The adversary battery used by integration tests and benchmarks."""
    return [
        PassiveAdversary(seed),
        CrashAdversary(0, seed),
        CrashAdversary(3, seed),
        RandomGarbageAdversary(seed),
        EquivocatingAdversary(seed),
        OutlierAdversary(seed=seed),
        SplitVoteAdversary(alt_value=1, seed=seed),
        KingTargetingAdversary(seed=seed),
        PrefixPoisonAdversary(seed=seed),
        WitnessSuppressionAdversary(seed=seed),
    ]


#: Names for parametrised tests.
STANDARD_ADVERSARIES = [adv.describe() for adv in standard_adversary_suite()]
