"""Convenience entry point for running a protocol to completion."""

from __future__ import annotations

from typing import Any, Sequence

from .adversary import Adversary
from .invariants import InvariantMonitor
from .lossy import LossyTransport
from .network import ExecutionResult, ProtocolFactory, SynchronousNetwork
from .recovery import CrashEvent, RecoveryConfig
from .wire import WireLimits

__all__ = ["run_protocol"]


def run_protocol(
    protocol_factory: ProtocolFactory,
    inputs: dict[int, Any] | list[Any],
    n: int,
    t: int,
    kappa: int = 128,
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
    trace: bool = False,
    monitors: Sequence[InvariantMonitor] = (),
    transport: LossyTransport | None = None,
    crashes: Sequence[CrashEvent | tuple[int, int, int]] | None = None,
    recovery: RecoveryConfig | bool | None = None,
    guards: WireLimits | bool | None = None,
) -> ExecutionResult:
    """Simulate one execution of ``protocol_factory`` and return the result.

    Args:
        protocol_factory: ``(ctx, input) -> generator`` building each
            party's protocol instance.
        inputs: per-party protocol inputs (list indexed by party id, or a
            dict covering every party; corrupted parties' inputs are handed
            to the adversary as its "spec" inputs).
        n: number of parties.
        t: corruption bound, ``t < n/3``.
        kappa: security parameter in bits.
        adversary: byzantine strategy; defaults to spec-following corrupted
            parties.
        max_rounds: safety cap on the number of simulated rounds; defaults
            to a budget derived from the theoretical round complexity
            (:func:`~repro.sim.network.default_round_budget`).
        trace: collect a per-round :class:`~repro.sim.trace.RoundRecord`
            trace on the result.
        monitors: online invariant monitors
            (:mod:`repro.sim.invariants`) evaluated during the run.
        transport: optional lossy transport; protocols run unmodified on
            top of its ack/retransmit round synchronizer.
        crashes: declarative honest crash windows
            (``(party, down_round, up_round)``), replayed via per-party
            write-ahead logs at the restart round.
        recovery: enable (or configure) the crash-recovery plane even
            without a declarative schedule.
        guards: wire limits for byzantine-origin traffic
            (:class:`~repro.sim.wire.WireLimits`, or ``True`` for
            envelope-derived defaults); quarantined payloads are
            accounted on the stats instead of delivered.

    Returns:
        The :class:`~repro.sim.network.ExecutionResult` with per-party
        outputs and communication statistics.
    """
    network = SynchronousNetwork(
        protocol_factory=protocol_factory,
        inputs=inputs,
        n=n,
        t=t,
        kappa=kappa,
        adversary=adversary,
        max_rounds=max_rounds,
        trace=trace,
        monitors=monitors,
        transport=transport,
        crashes=crashes,
        recovery=recovery,
        guards=guards,
    )
    return network.run()
