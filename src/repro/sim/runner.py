"""Convenience entry point for running a protocol to completion."""

from __future__ import annotations

from typing import Any

from .adversary import Adversary
from .network import ExecutionResult, ProtocolFactory, SynchronousNetwork

__all__ = ["run_protocol"]


def run_protocol(
    protocol_factory: ProtocolFactory,
    inputs: dict[int, Any] | list[Any],
    n: int,
    t: int,
    kappa: int = 128,
    adversary: Adversary | None = None,
    max_rounds: int = 100_000,
    trace: bool = False,
) -> ExecutionResult:
    """Simulate one execution of ``protocol_factory`` and return the result.

    Args:
        protocol_factory: ``(ctx, input) -> generator`` building each
            party's protocol instance.
        inputs: per-party protocol inputs (list indexed by party id, or a
            dict covering every party; corrupted parties' inputs are handed
            to the adversary as its "spec" inputs).
        n: number of parties.
        t: corruption bound, ``t < n/3``.
        kappa: security parameter in bits.
        adversary: byzantine strategy; defaults to spec-following corrupted
            parties.
        max_rounds: safety cap on the number of simulated rounds.

    Returns:
        The :class:`~repro.sim.network.ExecutionResult` with per-party
        outputs and communication statistics.
    """
    network = SynchronousNetwork(
        protocol_factory=protocol_factory,
        inputs=inputs,
        n=n,
        t=t,
        kappa=kappa,
        adversary=adversary,
        max_rounds=max_rounds,
        trace=trace,
    )
    return network.run()
