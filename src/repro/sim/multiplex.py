"""Cooperative multiplexing of independent protocol executions.

The throughput-bound shape of this repository's workloads is *many
small executions*, not one big one: benchmark grids, fuzz campaigns and
exhaustive small-``n`` enumerations dispatch thousands of instances
whose individual runtimes are dominated by per-call overhead (network
construction, pool IPC, result assembly).  Process pools amortise none
of that -- they only overlap it.

This module adds the orthogonal axis: a :class:`MultiplexScheduler`
steps ``K`` independent :class:`~repro.sim.network.SynchronousNetwork`
executions *round-by-round in one interpreter loop*, using the
network's ``begin()``/``step()``/``finish()`` stepping API.  Because
each network's evolution is a pure function of its own state, the
round-robin interleaving is invisible to the executions themselves:
per-instance results, stats, traces and counters are byte-identical to
a serial ``run()`` per instance (the determinism suite in
``tests/test_multiplex.py`` proves it).

Integration is via :func:`repro.sim.parallel.run_many`'s ``multiplex``
parameter.  A case function opts in by declaring an *opener* with the
:func:`multiplexable` decorator::

    def open_measurement(params):
        network = SynchronousNetwork(...)     # build, do not run
        def finalize(result):
            return Measurement(...)           # what fn(params) returns
        return network, finalize

    @multiplexable(open_measurement)
    def measure_case(params):
        ...

The contract: ``finalize(network.run())`` must equal ``fn(payload)``
for every payload.  Functions without an opener (e.g. fuzz campaign
workers, whose cases each manage several executions internally) fall
back to batch-sequential execution, which is trivially identical to
the non-multiplexed path.

Scheduling accounting rides on the deterministic counters
(``sched_instances`` / ``sched_rounds`` / ``sched_resumes``, see
:mod:`repro.perf.counters`); they are bumped by the network itself, so
serial and multiplexed drivers produce identical totals.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .network import SynchronousNetwork
from .parallel import CaseOutcome

__all__ = [
    "Opener",
    "MultiplexScheduler",
    "multiplexable",
    "opener_of",
    "run_multiplexed",
]

#: Builds one instance from a case payload: returns the *unstarted*
#: network plus the finalizer mapping its ``ExecutionResult`` to the
#: value the case function would have returned.
Opener = Callable[[Any], tuple[SynchronousNetwork, Callable[[Any], Any]]]


def multiplexable(opener: Opener) -> Callable:
    """Attach ``opener`` to a case function, making it multiplexable.

    The opener must be module-level (the decorated function still
    pickles by qualified name -- the attribute travels with it), and
    must satisfy ``finalize(network.run()) == fn(payload)``.
    """

    def decorate(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        fn._multiplex_opener = opener
        return fn

    return decorate


def opener_of(fn: Callable[[Any], Any]) -> Opener | None:
    """The opener declared via :func:`multiplexable`, or ``None``."""
    return getattr(fn, "_multiplex_opener", None)


@dataclass(slots=True)
class _Instance:
    """One live execution inside a multiplexed batch."""

    index: int
    network: SynchronousNetwork
    finalize: Callable[[Any], Any]
    start: float


def _failure(index: int, exc: Exception, start: float) -> CaseOutcome:
    """A failed outcome formatted exactly like ``parallel._run_one``'s."""
    tail = traceback.format_exc(limit=4)
    return CaseOutcome(
        index=index,
        error=f"{type(exc).__name__}: {exc}\n{tail}",
        error_type=type(exc).__name__,
        elapsed_s=time.perf_counter() - start,
    )


class MultiplexScheduler:
    """Round-robin scheduler over a batch of independent executions.

    Each sweep resumes every live instance for exactly one scheduler
    step (in case-index order, so the interleaving itself is
    deterministic); an instance whose ``step()`` reports completion is
    finalized immediately and leaves the rotation.  An instance that
    raises -- protocol exception, round-budget
    :class:`~repro.errors.SimulationError`, honest-party crash -- is
    captured as a failed :class:`~repro.sim.parallel.CaseOutcome`
    without disturbing its batch-mates.

    Timeouts are cooperative: the batch shares a budget of
    ``timeout_s * len(batch)`` seconds, checked between sweeps, and
    instances still live at the deadline are recorded as
    ``CaseTimeout`` outcomes.  Those are *transient* in the
    :func:`~repro.sim.parallel.run_many` sense, so the engine's retry
    passes re-run them singly under the precise per-case alarm guard.
    """

    def __init__(
        self,
        opener: Opener,
        cases: Sequence[tuple[int, Any]],
        timeout_s: float | None = None,
    ) -> None:
        self.opener = opener
        self.cases = list(cases)
        self.timeout_s = timeout_s

    def run(self) -> list[CaseOutcome]:
        """Execute the batch; one outcome per case, in index order."""
        deadline = None
        if self.timeout_s is not None:
            deadline = (
                time.perf_counter()
                + self.timeout_s * max(1, len(self.cases))
            )
        done: list[CaseOutcome] = []
        live: list[_Instance] = []
        for index, payload in self.cases:
            start = time.perf_counter()
            try:
                network, finalize = self.opener(payload)
                network.begin()
            except Exception as exc:
                done.append(_failure(index, exc, start))
                continue
            live.append(_Instance(index, network, finalize, start))

        while live:
            survivors: list[_Instance] = []
            for instance in live:
                network = instance.network
                try:
                    if network.step():
                        survivors.append(instance)
                        continue
                    result = network.finish()
                    # Same contract as ``run()``: wall time rides on the
                    # stats object on every exit path.  Multiplexed wall
                    # time spans the shared loop, which is why wall_s is
                    # excluded from every determinism comparison.
                    network.stats.wall_s = (
                        time.perf_counter() - instance.start
                    )
                    value = instance.finalize(result)
                    done.append(
                        CaseOutcome(
                            index=instance.index,
                            value=value,
                            elapsed_s=(
                                time.perf_counter() - instance.start
                            ),
                        )
                    )
                except Exception as exc:
                    network.stats.wall_s = (
                        time.perf_counter() - instance.start
                    )
                    done.append(
                        _failure(instance.index, exc, instance.start)
                    )
            live = survivors
            if deadline is not None and live:
                if time.perf_counter() > deadline:
                    now = time.perf_counter()
                    for instance in live:
                        done.append(
                            CaseOutcome(
                                index=instance.index,
                                error=(
                                    "case timed out after "
                                    f"{self.timeout_s}s"
                                ),
                                error_type="CaseTimeout",
                                elapsed_s=now - instance.start,
                            )
                        )
                    live = []
        done.sort(key=lambda outcome: outcome.index)
        return done


def run_multiplexed(
    fn: Callable[[Any], Any],
    cases: Sequence[tuple[int, Any]],
    timeout_s: float | None = None,
) -> list[CaseOutcome]:
    """Run ``(index, payload)`` cases of a multiplexable ``fn`` as one batch.

    Raises :class:`ValueError` when ``fn`` declared no opener -- the
    caller (:func:`repro.sim.parallel.run_many`) is expected to fall
    back to sequential execution instead of reaching this point.
    """
    opener = opener_of(fn)
    if opener is None:
        raise ValueError(
            f"{getattr(fn, '__name__', fn)!r} is not multiplexable: "
            "no opener declared via @multiplexable"
        )
    return MultiplexScheduler(opener, cases, timeout_s=timeout_s).run()
