"""Lossy links and the round synchronizer that hides them.

The paper's model (Section 2) assumes guaranteed delivery within one
round.  Real links drop, delay, and reorder.  This module closes the
gap with the classic construction: a :class:`LossyTransport` subjects
every honest point-to-point message to a *seeded* drop/delay/reorder
schedule, and a round synchronizer restores the lockstep abstraction on
top of it --

* every payload carries an implicit ``(round, sender)`` sequence tag and
  is acknowledged by the receiver (acks traverse the same lossy link);
* unacknowledged copies are retransmitted with exponential backoff
  (attempt ``k`` waits ``min(2^k, max_backoff)`` slots, with the
  exponent capped *before* exponentiation so retransmit storms can
  never build huge intermediate integers);
* a per-round slot budget bounds how long the synchronizer waits; an
  exhausted budget raises :class:`TransportTimeout`, which the network
  surfaces as a :class:`~repro.errors.SimulationError` with partial
  state.

With a :class:`TimeoutEscalation` policy attached, an exhausted budget
does not immediately die: the parties of the round exchange
*round-resync beacons* (tiny frames announcing "I am still in round r,
re-arm your timers"), the slot budget grows exponentially (PBFT-style
timeout escalation), and the round is re-attempted -- up to
``max_attempts`` times before :class:`TransportTimeout` finally fires.
Beacon frames and retry attempts are accounted in the ``beacon_*`` /
``resync_attempts`` / ``escalated_rounds`` fields of
:class:`~repro.sim.metrics.CommunicationStats`, never in
``honest_bits``.

Protocols run **unmodified** on top: the synchronizer guarantees that
the logical inbox of every round is exactly what a perfect network
would have delivered, so executions over a lossy transport are
*byte-identical* to perfect-network executions in their outputs and
protocol-level communication stats.  The price of the resilience shows
up separately -- retransmitted copies, ack frames, and physical slots
are accounted in the ``retrans_*`` / ``ack_*`` / ``transport_slots``
fields of :class:`~repro.sim.metrics.CommunicationStats`, never in the
paper's ``honest_bits``.

Determinism: all coins come from one :class:`random.Random` per round
attempt, seeded by ``H(seed, round)`` (``H(seed, round, attempt)`` for
escalated retries), consumed in sorted link order -- the same schedule
replays on any worker, which is what keeps lossy executions inside the
engine's serial/parallel conformance contract.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError, ReproError
from ..perf import counters
from .metrics import CommunicationStats
from .sizing import bit_size

__all__ = [
    "ACK_BITS",
    "BEACON_BITS",
    "LossyTransport",
    "TimeoutEscalation",
    "TransportTimeout",
]

#: Size of one acknowledgement frame: a (round, sender) sequence tag
#: plus a few flag bits -- deliberately tiny, like a TCP pure-ACK.
ACK_BITS = 40

#: Size of one round-resync beacon frame: a round tag, the attempt
#: counter, and the re-armed budget -- the PBFT view-change analogue.
BEACON_BITS = 48


class TransportTimeout(ReproError):
    """The synchronizer exhausted its slot budget for one round."""


@dataclass(frozen=True)
class TimeoutEscalation:
    """PBFT-style timeout escalation policy for the round synchronizer.

    On an exhausted slot budget the synchronizer does not die
    immediately: the round's parties exchange resync beacons, the
    budget is multiplied by ``growth`` (capped at ``budget_cap``), and
    the round is re-attempted -- up to ``max_attempts`` total attempts.
    A budget that is exhausted on the last attempt raises
    :class:`TransportTimeout` exactly like the non-escalating path.
    """

    max_attempts: int = 6
    growth: int = 2
    budget_cap: int = 1 << 15
    #: simulated slots one beacon exchange takes (accounted on
    #: ``transport_slots`` and the partial-sync clock).
    beacon_slots: int = 1

    def __post_init__(self) -> None:
        for name in ("max_attempts", "growth", "budget_cap", "beacon_slots"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"TimeoutEscalation.{name} must be an integer, "
                    f"got {value!r}"
                )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be positive")
        if self.growth < 2:
            raise ConfigurationError(
                "growth must be >= 2 -- a non-growing budget cannot "
                "outwait a slow network"
            )
        if self.budget_cap < 1:
            raise ConfigurationError("budget_cap must be positive")
        if self.beacon_slots < 0:
            raise ConfigurationError("beacon_slots must be >= 0")

    def next_budget(self, budget: int) -> int:
        """The re-armed slot budget after one exhausted attempt."""
        return min(budget * self.growth, max(budget, self.budget_cap))


class _Flight:
    """One in-flight payload on one link, until acknowledged."""

    __slots__ = ("payload", "bits", "attempts", "due")

    def __init__(self, payload: Any, bits: int) -> None:
        self.payload = payload
        self.bits = bits
        self.attempts = 0
        self.due = 0


class LossyTransport:
    """Seeded lossy link schedules + ack/retransmit round synchronizer.

    Args:
        drop: per-copy probability a transmitted frame (payload *or*
            ack) is lost; must be ``< 1`` or no round could ever
            complete.
        delay: per-copy probability a surviving payload arrives one
            slot late instead of in its transmission slot.
        reorder: given a delayed copy, probability it is delayed by
            extra jitter slots as well -- copies of different messages
            can then arrive in an order unrelated to their send order.
        seed: deterministic schedule seed.
        slot_budget: maximum physical slots simulated per logical
            round (per attempt when escalation is armed) before the
            synchronizer gives up on the attempt.
        max_backoff: cap on the exponential retransmission backoff.
        links: restrict faults to these ``(src, dst)`` links
            (``None`` = every link); non-listed links still pay ack
            accounting but never drop or delay.
        escalation: optional :class:`TimeoutEscalation`; ``None`` keeps
            the classic single-attempt behaviour (an exhausted budget
            raises :class:`TransportTimeout` immediately).
    """

    def __init__(
        self,
        drop: float = 0.0,
        delay: float = 0.0,
        reorder: float = 0.0,
        seed: int = 0,
        slot_budget: int = 256,
        max_backoff: int = 16,
        links: frozenset[tuple[int, int]] | None = None,
        escalation: TimeoutEscalation | None = None,
    ) -> None:
        for name, rate in (("delay", delay), ("reorder", reorder)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} rate {rate} outside [0, 1]"
                )
        if not 0.0 <= drop < 1.0:
            raise ConfigurationError(
                f"drop rate {drop} outside [0, 1) -- a link that drops "
                "everything can never be synchronized"
            )
        for name, value in (
            ("slot_budget", slot_budget),
            ("max_backoff", max_backoff),
        ):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"{name} must be an integer number of slots, "
                    f"got {value!r} ({type(value).__name__})"
                )
            if value < 1:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )
        if escalation is not None and not isinstance(
            escalation, TimeoutEscalation
        ):
            raise ConfigurationError(
                f"escalation must be a TimeoutEscalation or None, "
                f"got {escalation!r}"
            )
        self.drop = drop
        self.delay = delay
        self.reorder = reorder
        self.seed = seed
        self.slot_budget = slot_budget
        self.max_backoff = max_backoff
        self.links = links
        self.escalation = escalation
        #: exponent cap: once ``2^attempts`` provably reaches
        #: ``max_backoff`` the power is never computed again.
        self._backoff_exp_cap = max(1, max_backoff.bit_length())
        #: global physical time in slots (monotone across rounds);
        #: partial-synchrony subclasses key GST/partition windows on it.
        self._clock = 0
        #: escalated retries performed over the transport's lifetime.
        self.total_resyncs = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Any) -> "LossyTransport | None":
        """Build a transport from a :class:`~repro.sim.faults.FaultSpec`.

        Returns ``None`` when the spec carries no link-fault axes; a
        :class:`~repro.sim.partial_sync.PartialSyncTransport` when the
        spec carries partial-synchrony axes (GST, partitions, churn).
        The transport seed is derived from (not equal to) the spec seed
        so the link schedule never correlates with the byzantine fault
        injector's stream.
        """
        if getattr(spec, "has_partial_sync", False):
            from .partial_sync import PartialSyncTransport

            return PartialSyncTransport.from_spec(spec)
        if not getattr(spec, "has_link_faults", False):
            return None
        return cls(
            drop=spec.link_drop,
            delay=spec.link_delay,
            reorder=spec.link_reorder,
            seed=_derive("lossy-from-spec", spec.seed),
            links=spec.links,
        )

    def describe(self) -> str:
        active = [
            f"{name}={value}"
            for name, value in (
                ("drop", self.drop),
                ("delay", self.delay),
                ("reorder", self.reorder),
            )
            if value
        ]
        return f"LossyTransport({', '.join(active) or 'perfect'})"

    # -- hooks for partial-synchrony subclasses ------------------------
    @property
    def clock(self) -> int:
        """Global physical slots elapsed on this transport."""
        return self._clock

    @property
    def stabilization_time(self) -> int | None:
        """First global slot with bounded delivery (``None`` = never).

        A plain lossy transport is probabilistically bounded from slot
        0; partial-synchrony subclasses override this with the latest
        of GST, partition heals, and churn ends.
        """
        return 0

    def _lossy(self, link: tuple[int, int]) -> bool:
        return self.links is None or link in self.links

    def _cut(self, link: tuple[int, int], at: int) -> bool:
        """Is ``link`` deterministically severed at global slot ``at``?"""
        return False

    def _drop_rate(self, link: tuple[int, int], at: int) -> float:
        """Per-copy loss probability of ``link`` at global slot ``at``."""
        return self.drop

    def _delay_rate(self, link: tuple[int, int], at: int) -> float:
        """Per-copy one-slot-late probability at global slot ``at``."""
        return self.delay

    def _backoff(self, attempts: int) -> int:
        # Cap the exponent *before* exponentiation: at attempt 300 the
        # old min(2**300, cap) built a 90-digit integer per retransmit.
        if attempts >= self._backoff_exp_cap:
            return self.max_backoff
        return min(2 ** attempts, self.max_backoff)

    def _attempt_seed(self, round_index: int, attempt: int) -> int:
        """Schedule seed for one synchronization attempt.

        Attempt 0 keeps the historical ``H(seed, round)`` derivation so
        escalation-free executions replay pre-escalation schedules
        byte-identically; retries draw fresh independent schedules.
        """
        if attempt == 0:
            return _derive("lossy-round", self.seed, round_index)
        return _derive("lossy-resync", self.seed, round_index, attempt)

    # ------------------------------------------------------------------
    def synchronize(
        self,
        round_index: int,
        messages: dict[tuple[int, int], Any],
        stats: CommunicationStats,
    ) -> int:
        """Simulate one logical round's slots until every payload is acked.

        ``messages`` is the honest traffic of the round keyed by
        ``(src, dst)``; loopback links (``src == dst``) never touch the
        wire.  Returns the number of physical slots simulated and
        accounts every retransmitted copy, ack frame, and (under
        escalation) resync beacon on ``stats``.

        Raises:
            TransportTimeout: the slot budget (including every escalated
                retry, when an escalation policy is armed) ran out with
                payloads still unacknowledged.
        """
        pending: dict[tuple[int, int], _Flight] = {}
        parties: set[int] = set()
        for link in sorted(messages):
            src, dst = link
            parties.add(src)
            parties.add(dst)
            if src == dst:
                continue
            pending[link] = _Flight(messages[link], bit_size(messages[link]))
        if not pending:
            return 0

        attempts = (
            1 if self.escalation is None else self.escalation.max_attempts
        )
        budget = self.slot_budget
        total_slots = 0
        for attempt in range(attempts):
            slots = self._attempt_round(
                round_index, attempt, pending, stats, budget
            )
            total_slots += slots
            stats.record_slots(slots)
            self._clock += slots
            if not pending:
                return total_slots
            if attempt + 1 >= attempts:
                break
            self._resync(round_index, attempt, parties, stats)
            total_slots += self.escalation.beacon_slots
            budget = self.escalation.next_budget(budget)

        raise TransportTimeout(
            f"round {round_index}: {len(pending)} payload(s) still "
            f"unacknowledged after {total_slots} slots across "
            f"{attempts} attempt(s) "
            f"(drop={self.drop}, delay={self.delay}, "
            f"transport={self.describe()})"
        )

    def _resync(
        self,
        round_index: int,
        attempt: int,
        parties: set[int],
        stats: CommunicationStats,
    ) -> None:
        """Exchange round-resync beacons and re-arm the synchronizer.

        Every party of the round broadcasts one beacon to each peer --
        the all-to-all "I am still in round r" exchange that lets the
        retry start from a common slot origin.  Overhead lands on the
        beacon fields of ``stats``; the simulated exchange itself costs
        ``beacon_slots`` physical slots.
        """
        frames = len(parties) * max(0, len(parties) - 1)
        stats.record_beacons(frames, BEACON_BITS)
        stats.record_resync(escalated_round=(attempt == 0))
        stats.record_slots(self.escalation.beacon_slots)
        self._clock += self.escalation.beacon_slots
        self.total_resyncs += 1
        counters.bump("transport_resyncs")
        counters.bump("transport_beacons", frames)

    def _attempt_round(
        self,
        round_index: int,
        attempt: int,
        pending: dict[tuple[int, int], _Flight],
        stats: CommunicationStats,
        budget: int,
    ) -> int:
        """One bounded synchronization attempt; prunes acked flights.

        Returns the slots simulated; flights still in ``pending``
        afterwards were not acknowledged within ``budget`` slots.
        """
        rng = random.Random(self._attempt_seed(round_index, attempt))
        base_time = self._clock
        for flight in pending.values():
            flight.due = 0
        #: slot -> links whose payload copy arrives then (ack pending).
        arrivals: dict[int, list[tuple[int, int]]] = {}
        slots_used = 0
        for slot in range(budget):
            if not pending:
                break
            slots_used = slot + 1
            at = base_time + slot

            # 1. transmissions due this slot (first copies and backoffs).
            for link in sorted(pending):
                flight = pending[link]
                if flight.due != slot:
                    continue
                flight.attempts += 1
                if flight.attempts > 1:
                    stats.record_retransmit(flight.bits)
                if self._cut(link, at):
                    # severed by a partition: no coin consumed, the
                    # copy is deterministically lost.
                    flight.due = slot + self._backoff(flight.attempts)
                    continue
                if self._lossy(link) and rng.random() < self._drop_rate(
                    link, at
                ):
                    flight.due = slot + self._backoff(flight.attempts)
                    continue
                arrival = slot
                if (
                    self._lossy(link)
                    and self.delay
                    and rng.random() < self._delay_rate(link, at)
                ):
                    arrival += 1
                    if self.reorder and rng.random() < self.reorder:
                        arrival += rng.randrange(1, 4)
                arrivals.setdefault(arrival, []).append(link)

            # 2. arrivals: receiver acks; a lost ack keeps the flight
            # pending, so the sender backs off and retransmits.
            for link in sorted(arrivals.pop(slot, ())):
                flight = pending.get(link)
                if flight is None:
                    continue  # duplicate copy of an already-acked payload
                stats.record_ack(ACK_BITS)
                if self._cut(link, at):
                    flight.due = slot + self._backoff(flight.attempts)
                    continue
                if self._lossy(link) and rng.random() < self._drop_rate(
                    link, at
                ):
                    flight.due = slot + self._backoff(flight.attempts)
                    continue
                del pending[link]
        return slots_used


def _derive(label: str, *parts: int) -> int:
    """Deterministic 63-bit sub-seed from a label and integer parts."""
    material = "/".join([label, *map(str, parts)]).encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big") >> 1
